"""Setup shim.

Kept alongside pyproject.toml so `pip install -e .` works on environments
whose setuptools predates bundled bdist_wheel support (legacy editable path).
"""

from setuptools import setup

setup()
