"""Bench the bandwidth-mechanism plug-ins: wall time and control-round rate.

Runs one fixed contended scenario (the ``quickstart`` science-vs-hog mix)
under **every** registered mechanism and emits ``BENCH_mechanisms.json``
(to the invocation directory, or ``$BENCH_JSON_DIR``): per-mechanism wall
time, simulated duration, control rounds and rounds/second — the
machine-readable perf-trajectory data points for the mechanism axis.  New
mechanisms join the bench the moment they register, so a regressing or
pathologically slow contender shows up here before it skews a shootout.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.cluster.builder import build
from repro.cluster.experiment import execute
from repro.core.mechanism import MECHANISMS
from repro.scenarios import REGISTRY

_RESULTS = {}

#: One fixed workload for every mechanism: identical jobs, topology, seed.
_SCENARIO = ("quickstart", {"file_mib": 64.0, "procs": 4})


def _fixed_spec(mechanism: str):
    name, params = _SCENARIO
    return REGISTRY.build(name, **params).with_policy(mechanism=mechanism)


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write BENCH_mechanisms.json after the module's benches finish."""
    yield
    out = Path(os.environ.get("BENCH_JSON_DIR", ".")) / "BENCH_mechanisms.json"
    out.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("mechanism", MECHANISMS.names())
def test_mechanism_wall_and_round_rate(mechanism, benchmark, print_report):
    def _run():
        cluster = build(_fixed_spec(mechanism))
        result = execute(cluster)
        return cluster, result

    start = time.perf_counter()
    cluster, result = benchmark.pedantic(_run, rounds=1, iterations=1)
    wall_s = time.perf_counter() - start

    rounds = sum(handle.rounds_run for handle in cluster.handles)
    # Decentralization-tax columns: only centralized handles report a
    # non-trivial lag/overshoot, and only reservation-based ones a util.
    utils = [
        h.reservation_util
        for h in cluster.handles
        if h.reservation_util is not None
    ]
    _RESULTS[mechanism] = {
        "scenario": _SCENARIO[0],
        "params": dict(_SCENARIO[1]),
        "wall_s": wall_s,
        "simulated_s": result.duration_s,
        "aggregate_mib_s": result.summary.aggregate_mib_s,
        "control_rounds": rounds,
        "rounds_per_wall_s": rounds / wall_s if wall_s > 0 else 0.0,
        "rules_created": sum(h.rules_created for h in cluster.handles),
        "rate_changes": sum(h.rate_changes for h in cluster.handles),
        "rule_lag_s": max(h.rule_lag_s for h in cluster.handles),
        "overshoot_bytes": sum(h.overshoot_bytes for h in cluster.handles),
        "reservation_util": sum(utils) / len(utils) if utils else None,
    }

    assert result.clients_finished
    assert result.summary.aggregate_mib_s > 0
    # Adaptive mechanisms must actually run their control loop.
    if mechanism not in ("none", "static"):
        assert rounds > 0
    print_report(
        f"{mechanism}: {result.summary.aggregate_mib_s:.1f} MiB/s over "
        f"{result.duration_s:.2f}s simulated, {rounds} control rounds in "
        f"{wall_s:.2f}s wall ({_RESULTS[mechanism]['rounds_per_wall_s']:.0f} "
        "rounds/s)"
    )
