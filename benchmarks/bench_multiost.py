"""Decentralization bench (paper §II-B) — our extension experiment E7.

Scales the number of OSTs (one independent AdapTBF controller each, files
placed round-robin) under a priority-skewed two-job contention workload and
verifies the paper's §II-B claim quantitatively: per-OST local fairness
composes into a global bandwidth split that tracks the priority ratio, with
no coordination and no loss of aggregate throughput.
"""

from repro.cluster.builder import ClusterConfig
from repro.cluster.experiment import run_experiment
from repro.metrics.tables import format_table
from repro.workloads.patterns import SequentialWritePattern
from repro.workloads.spec import JobSpec, ProcessSpec

MIB = 1 << 20
PRIORITY_RATIO = 3  # job "big" has 3x the nodes of job "small"


def make_jobs(n_procs=8, volume=400 * MIB):
    return [
        JobSpec(
            job_id="big",
            nodes=PRIORITY_RATIO,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(volume)) for _ in range(n_procs)
            ),
        ),
        JobSpec(
            job_id="small",
            nodes=1,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(volume)) for _ in range(n_procs)
            ),
        ),
    ]


def run_sweep(ost_counts=(1, 2, 4, 8)):
    results = {}
    for n_osts in ost_counts:
        config = ClusterConfig(
            mechanism="adaptbf",
            n_osts=n_osts,
            capacity_mib_s=1024.0 / n_osts,  # constant total capacity
        )
        results[n_osts] = run_experiment(config, make_jobs(), duration_s=2.0)
    return results


def test_decentralized_scaling(benchmark, print_report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for n_osts, result in results.items():
        big = result.summary.job("big")
        small = result.summary.job("small")
        rows.append(
            [
                n_osts,
                result.summary.aggregate_mib_s,
                big,
                small,
                big / small if small else float("inf"),
                result.ost_utilization,
            ]
        )
    print_report(
        format_table(
            [
                "OSTs",
                "aggregate MiB/s",
                "big MiB/s",
                "small MiB/s",
                "ratio",
                "mean util",
            ],
            rows,
            title=(
                "E7 (ours): decentralized AdapTBF over N OSTs, constant "
                "total capacity, priority ratio 3"
            ),
        )
    )

    aggregates = [r.summary.aggregate_mib_s for r in results.values()]
    for n_osts, result in results.items():
        big, small = result.summary.job("big"), result.summary.job("small")
        # Global split tracks priority on every cluster size ...
        assert 2.0 < big / small < 4.5, (n_osts, big / small)
    # ... and decentralization costs no aggregate throughput (within 15%).
    assert min(aggregates) > 0.85 * max(aggregates)
