"""Bench E3 — regenerates paper Fig. 7 (records/demand) and Fig. 8.

Four equal-priority jobs; jobs 1-3 lend early (their continuous streams are
delayed by scaled 20/50/80 s) while job 4 borrows from t=0.  Prints the
record trajectories (the Fig. 7 arcs), the Fig. 8 bandwidth and gain tables;
asserts lending/borrowing/re-compensation shapes.
"""

from repro.experiments import fig7_fig8


def test_fig7_fig8_token_recompensation(benchmark, print_report):
    comparison = benchmark.pedantic(fig7_fig8.run, rounds=1, iterations=1)
    print_report(fig7_fig8.report(comparison))
    for check in fig7_fig8.check_shapes(comparison):
        assert check.passed, f"{check.claim}: {check.detail}"
