"""Ablation bench — quantifies each AdapTBF design element (§III-C).

Runs the §IV-E redistribution scenario under the full algorithm and the
three ablated variants (:mod:`repro.core.ablation`), printing aggregate
throughput, hog bandwidth and burst-job bandwidth per variant.

Expected ordering (asserted):

* ``priority_only`` (no borrowing) under-utilizes the OST whenever the
  bursty jobs are *active but not saturating their shares* — note it is
  still far better than Static BW because the initial allocation adapts to
  the active set (an idle bursty job cedes its entire share), so the gap
  to the full algorithm isolates the *redistribution* step specifically;
* the full algorithm work-conserves: the hog borrows surplus tokens
  whenever any active job under-uses its share, so hog and aggregate
  bandwidth are strictly higher;
* ``no_recompensation`` matches the full algorithm on throughput here
  (re-compensation is about long-term fairness, not instantaneous rate) —
  its cost shows in the records, which drift without bound.
"""

from repro.cluster.builder import ClusterConfig
from repro.cluster.experiment import run_scenario
from repro.experiments.common import bench_scale
from repro.metrics.tables import format_table
from repro.workloads.scenarios import scenario_redistribution

VARIANT_NAMES = ("full", "priority_only", "no_recompensation", "priority_blind_df")


def run_ablation():
    cfg = bench_scale()
    results = {}
    for variant in VARIANT_NAMES:
        scenario = scenario_redistribution(cfg)
        config = ClusterConfig(mechanism="adaptbf", variant=variant)
        results[variant] = run_scenario(scenario, config)
    return results


def test_ablation_variants(benchmark, print_report):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for variant, result in results.items():
        summary = result.summary
        burst_bw = sum(summary.job(f"job{i}") for i in (1, 2, 3))
        final_records = result.history[-1].records if result.history else {}
        rows.append(
            [
                variant,
                summary.aggregate_mib_s,
                summary.job("job4"),
                burst_bw,
                final_records.get("job4", 0),
            ]
        )
    print_report(
        format_table(
            ["variant", "aggregate MiB/s", "hog MiB/s", "bursty MiB/s", "hog record"],
            rows,
            title="Ablation: §IV-E workload under AdapTBF variants",
        )
    )

    full = results["full"].summary
    prio_only = results["priority_only"].summary
    # Redistribution is what work-conserves: without it the hog only gets
    # the whole budget when it is the *sole* active job, never a share of
    # other active jobs' surplus.
    assert prio_only.job("job4") < 0.8 * full.job("job4")
    assert prio_only.aggregate_mib_s < full.aggregate_mib_s

    # Without re-compensation the ledger drifts: the hog's debt keeps
    # growing instead of being reclaimed.
    full_debt = results["full"].history[-1].records.get("job4", 0)
    norec_debt = results["no_recompensation"].history[-1].records.get("job4", 0)
    assert norec_debt < full_debt <= 0
