"""Bench the campaign engine: cells/second, serial vs multi-process.

Runs a small ``scale-osts`` grid through :func:`repro.campaigns.run_campaign`
with one and with two workers, and emits ``BENCH_campaign.json`` (to the
invocation directory, or ``$BENCH_JSON_DIR``): per-bench wall time and
cells/second — the machine-readable perf-trajectory data points for the
engine.  Parallel and serial runs of the same campaign must also agree on
every aggregated row, so the bench doubles as a determinism check.

The store benches run the same grid through each durable backend and
record the cells/second ratio against the in-memory null store — the
persistence layer's lease/commit bookkeeping must stay noise-level
relative to simulation time (acceptance: within 10%).
"""

import json
import os
import tempfile
from pathlib import Path

import pytest

from repro.campaigns import CAMPAIGNS, JsonlStore, SqliteStore, run_campaign
from repro.metrics.report import format_campaign_report

_RESULTS = {}


def _tiny_campaign():
    return CAMPAIGNS.build(
        "scale-osts",
        osts="1,2",
        capacities="128,256",
        file_mib=16.0,
        procs=2,
        duration=1.0,
    )


def _record(name, result):
    _RESULTS[name] = {
        "campaign": result.campaign.name,
        "spec_hash": result.campaign.spec_hash(),
        "cells": len(result.outcomes),
        "jobs": result.jobs,
        "wall_s": result.wall_s,
        "cells_per_s": result.cells_per_s,
        "cell_wall_s": [outcome.wall_s for outcome in result.outcomes],
    }


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write BENCH_campaign.json after the module's benches finish."""
    yield
    out = Path(os.environ.get("BENCH_JSON_DIR", ".")) / "BENCH_campaign.json"
    out.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def test_campaign_engine_serial(benchmark, print_report):
    campaign = _tiny_campaign()
    result = benchmark.pedantic(
        run_campaign, args=(campaign,), kwargs={"jobs": 1}, rounds=1, iterations=1
    )
    _record("serial_jobs1", result)
    assert len(result.outcomes) == campaign.n_cells
    assert all(o.row.aggregate_mib_s > 0 for o in result.outcomes)
    print_report(format_campaign_report(result))


def test_campaign_engine_parallel(benchmark, print_report):
    campaign = _tiny_campaign()
    result = benchmark.pedantic(
        run_campaign, args=(campaign,), kwargs={"jobs": 2}, rounds=1, iterations=1
    )
    _record("parallel_jobs2", result)
    assert len(result.outcomes) == campaign.n_cells
    # Fan-out must not change the science: rows match a serial run exactly.
    serial = run_campaign(campaign, jobs=1)
    assert [o.row for o in result.outcomes] == [o.row for o in serial.outcomes]
    print_report(format_campaign_report(result))


def _run_with_store(campaign, make_store):
    """One serial campaign through a fresh store in a scratch directory."""
    with tempfile.TemporaryDirectory() as scratch:
        store = make_store(Path(scratch))
        try:
            return run_campaign(campaign, jobs=1, store=store)
        finally:
            if store is not None:
                store.close()


_STORE_BACKENDS = {
    "null": lambda scratch: None,  # run_campaign's in-memory default
    "jsonl": lambda scratch: JsonlStore(scratch / "store"),
    "sqlite": lambda scratch: SqliteStore(scratch / "store.db"),
}


@pytest.mark.parametrize("backend", sorted(_STORE_BACKENDS))
def test_campaign_store_overhead(benchmark, print_report, backend):
    campaign = _tiny_campaign()
    result = benchmark.pedantic(
        _run_with_store,
        args=(campaign, _STORE_BACKENDS[backend]),
        rounds=1,
        iterations=1,
    )
    _record(f"store_{backend}_jobs1", result)
    assert result.complete
    print_report(
        f"store={backend}: {result.cells_per_s:.2f} cells/s "
        f"({result.wall_s:.2f}s wall)"
    )


@pytest.fixture(scope="module", autouse=True)
def emit_store_overhead(emit_bench_json):
    """Derive the durable-store overhead ratios once all benches ran."""
    yield
    null = _RESULTS.get("store_null_jobs1")
    if not null:
        return
    overhead = {}
    for backend in ("jsonl", "sqlite"):
        entry = _RESULTS.get(f"store_{backend}_jobs1")
        if entry and entry["cells_per_s"]:
            overhead[backend] = {
                "cells_per_s_ratio_vs_null": entry["cells_per_s"]
                / null["cells_per_s"],
            }
    _RESULTS["store_overhead"] = overhead
