"""Bench E5 — §IV-G framework overhead.

Times one allocation round of the actual algorithm at several active-job
populations (pytest-benchmark microbenchmarks), prints the µs/job table the
paper reports, and asserts O(n) scaling.
"""

import pytest

from repro.core.allocation import TokenAllocationAlgorithm
from repro.experiments import overhead
from repro.experiments.overhead import _synthetic_inputs


@pytest.mark.parametrize("n_jobs", [4, 64, 1000])
def test_allocation_round_scaling(benchmark, n_jobs):
    """Microbenchmark: one full three-step allocation round for n jobs."""
    inputs = _synthetic_inputs(n_jobs, rounds=2)
    algo = TokenAllocationAlgorithm()
    algo.allocate(inputs[0])  # establish history so all steps engage

    benchmark(algo.allocate, inputs[1])


def test_overhead_table(benchmark, print_report):
    """The §IV-G table: ms/round and µs/job across populations."""
    result = benchmark.pedantic(
        overhead.run, kwargs=dict(rounds=10), rounds=1, iterations=1
    )
    print_report(overhead.report(result))
    for check in overhead.check_shapes(result):
        assert check.passed, f"{check.claim}: {check.detail}"
