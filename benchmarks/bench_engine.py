"""Bench the simulation kernel: events/sec and simulated-sec per wall-sec.

The pytest face of the engine benchmark harness.  Every workload comes from
:mod:`engine_workloads` (shared with ``regression.py``, the standalone
regression gate), so the numbers here and in CI's ``BENCH_engine.json`` are
directly comparable:

* micro benches — pure-engine event loops (timer churn, event handoffs,
  condition fan-in);
* scenario benches — the ``quickstart`` paper workload plus ``client-swarm``
  grid cells at (OST × client) scale points.

Each workload runs once per registered **kernel backend** (heap and, with
the seam in place, array — see docs/performance.md, "Kernel backends"), so
``BENCH_engine.json`` carries one measurement per backend per workload:
``{"micro": {"timer-wheel": {"heap": {...}, "array": {...}}, ...}}``.

The events/sec numerator is *scheduled* events (``Environment.scheduled``):
the determinism invariant fixes the schedule for a given workload — on
every backend — so the count is engine-version- and backend-independent
and ratios equal wall-clock ratios.

Emits ``BENCH_engine.json`` (to the invocation directory or
``$BENCH_JSON_DIR``).  For the baseline-gated variant, run
``python benchmarks/regression.py`` instead; to refresh the committed
baselines after a deliberate speedup, ``regression.py --update-baseline``.
"""

import json
import os
from pathlib import Path

import pytest

from engine_workloads import (
    BENCH_BACKENDS,
    GRID_QUICK,
    MICRO_BENCHES,
    SCENARIO_BENCHES,
    calibrate,
    run_cell,
    run_micro,
    run_scenario_bench,
)

_RESULTS = {
    "schema": 2,
    "backends": list(BENCH_BACKENDS),
    "micro": {},
    "scenarios": {},
    "cells": {},
}


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write BENCH_engine.json after the module's benches finish."""
    yield
    _RESULTS["calibration_ops_per_s"] = calibrate()
    out = Path(os.environ.get("BENCH_JSON_DIR", ".")) / "BENCH_engine.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("backend", BENCH_BACKENDS)
@pytest.mark.parametrize("name", sorted(MICRO_BENCHES))
def test_micro_bench(name, backend, benchmark, print_report):
    result = benchmark.pedantic(
        run_micro,
        args=(name,),
        kwargs={"repeats": 3, "backend": backend},
        rounds=1,
        iterations=1,
    )
    _RESULTS["micro"].setdefault(name, {})[backend] = result
    assert result["events"] > 0
    assert result["events_per_s"] > 0
    print_report(
        f"micro/{name}[{backend}]: {result['events_per_s']:,.0f} events/s "
        f"({result['events']:,.0f} events in {result['wall_s']:.3f}s)"
    )


@pytest.mark.parametrize("backend", BENCH_BACKENDS)
@pytest.mark.parametrize("name", sorted(SCENARIO_BENCHES))
def test_scenario_bench(name, backend, benchmark, print_report):
    result = benchmark.pedantic(
        run_scenario_bench,
        args=(name,),
        kwargs={"backend": backend},
        rounds=1,
        iterations=1,
    )
    _RESULTS["scenarios"].setdefault(name, {})[backend] = result
    assert result["events"] > 0
    assert result["simsec_per_wallsec"] > 0
    print_report(
        f"scenario/{name}[{backend}]: {result['events_per_s']:,.0f} events/s, "
        f"{result['simsec_per_wallsec']:.2f} sim-s/wall-s"
    )


@pytest.mark.parametrize("backend", BENCH_BACKENDS)
@pytest.mark.parametrize("cell", GRID_QUICK, ids=lambda c: f"{c[0]}x{c[1]}")
def test_grid_cell(cell, backend, benchmark, print_report):
    n_osts, n_clients = cell
    result = benchmark.pedantic(
        run_cell,
        args=(n_osts, n_clients),
        kwargs={"backend": backend},
        rounds=1,
        iterations=1,
    )
    _RESULTS["cells"].setdefault(f"{n_osts}x{n_clients}", {})[backend] = result
    assert result["events"] > 0
    # The cell must actually simulate the configured horizon.
    assert result["sim_s"] == pytest.approx(0.5)
    print_report(
        f"cell/{n_osts}x{n_clients}[{backend}]: "
        f"{result['events_per_s']:,.0f} events/s, "
        f"{result['simsec_per_wallsec']:.2f} sim-s/wall-s"
    )


def test_event_counts_are_deterministic():
    """The events/sec numerator is workload-intrinsic: two runs of the same
    workload must schedule exactly the same number of events — on every
    backend (the numerator is also what makes cross-backend events/sec
    directly comparable)."""
    counts = {
        backend: run_micro("timer-wheel", repeats=1, backend=backend)["events"]
        for backend in BENCH_BACKENDS
    }
    assert len(set(counts.values())) == 1, counts
    cell_counts = {
        backend: run_cell(10, 100, repeats=1, backend=backend)["events"]
        for backend in BENCH_BACKENDS
    }
    assert len(set(cell_counts.values())) == 1, cell_counts
