"""Shared workload definitions for the engine benchmark harness.

Both :mod:`bench_engine` (the pytest-visible benches) and
:mod:`regression` (the standalone regression gate CI runs) measure the
exact same workloads from this module, so a number in ``BENCH_engine.json``
always means the same thing regardless of which entry point produced it.

**The events/sec metric.**  Every bench reports *scheduled events per
wall-second*: the engine's total heap pushes (``Environment.scheduled``)
divided by the wall time of the run.  Scheduling order — and therefore the
scheduled-event *count* — is the engine's determinism invariant (same
``(time, priority, seq)`` total order for a given workload across engine
versions), so the numerator is a property of the workload alone and the
events/sec ratio between two engine versions equals their wall-clock
ratio.  Counting *dispatched* events instead would let an optimization
that skips work (lazy-cancelled wakeups) look like a slowdown.

Three workload families:

* **Micro benches** — pure-engine event loops (timers, event handoffs,
  condition fan-in) with no Lustre models attached.  These isolate the
  dispatch loop, the Timeout free list and the condition-event machinery.
* **Scenario benches** — full AdapTBF scenario runs (the ``quickstart``
  paper workload, plus ``client-swarm`` grid cells at OST×client scale
  points).  Only :func:`~repro.cluster.experiment.execute` is timed — the
  cluster build is identical work under any engine and would dilute the
  signal.  Cells also report **simulated-seconds per wall-second**.
* **Shootout** — wall-clock of the ``workload-shootout`` campaign, the
  end-to-end ≥1.5× target of the performance overhaul.

A **calibration loop** (fixed heap+dict work, no engine) measures the host's
raw Python speed.  The regression gate compares *normalized* scores —
``events_per_s / calibration_ops_per_s`` — so a slower CI machine does not
read as an engine regression; see docs/performance.md.
"""

from __future__ import annotations

import sys
import time
from heapq import heappop, heappush
from pathlib import Path
from typing import Callable, Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:  # allow `python benchmarks/regression.py` without env
    sys.path.insert(0, SRC)

from repro.sim.engine import Environment  # noqa: E402

__all__ = [
    "BENCH_BACKENDS",
    "MICRO_BENCHES",
    "SCENARIO_BENCHES",
    "GRID_QUICK",
    "GRID_FULL",
    "calibrate",
    "run_micro",
    "run_scenario_bench",
    "run_cell",
    "run_shootout",
]


def _scheduled(env: Environment) -> int:
    """Scheduled-event count; tolerant of pre-overhaul engines (no property)."""
    return getattr(env, "scheduled", None) or env._eid


def _make_env(backend: str) -> Environment:
    """Environment with ``backend`` selected; tolerant of pre-seam engines."""
    if backend == "heap":
        return Environment()  # works on engines without the backend kwarg
    return Environment(backend=backend)


def _bench_backends() -> Tuple[str, ...]:
    """Every registered kernel backend; heap-only on pre-seam engines."""
    try:
        from repro.sim.backends import available_backends
    except ImportError:
        return ("heap",)
    return tuple(available_backends())


#: Kernel backends the harness measures per workload (default first).
BENCH_BACKENDS: Tuple[str, ...] = _bench_backends()


# -- calibration ------------------------------------------------------------

def calibrate(ops: int = 400_000) -> float:
    """Raw host speed in calibration-ops/second (fixed heap+dict loop).

    The loop mirrors the engine's dominant primitive mix (heap push/pop and
    dict traffic) without touching the engine, so its throughput moves with
    the interpreter and the machine — exactly the variance the regression
    gate wants to divide away.
    """
    heap: List[Tuple[int, int]] = []
    table: Dict[int, int] = {}
    start = time.perf_counter()
    for i in range(ops):
        heappush(heap, ((i * 2654435761) & 0xFFFF, i))
        table[i & 1023] = i
        if i & 1:
            heappop(heap)
    elapsed = time.perf_counter() - start
    return ops / elapsed


# -- micro benches -----------------------------------------------------------

def _timer_wheel(env: Environment, scale: float) -> None:
    """Pure timeout churn: the free-list + dispatch-loop fast path."""
    n_procs = max(1, int(200 * scale))
    ticks = 60

    def ticker(i: int):
        delay = 0.001 + (i % 7) * 0.0005
        for _ in range(ticks):
            yield env.timeout(delay)

    for i in range(n_procs):
        env.process(ticker(i))


def _producer_consumer(env: Environment, scale: float) -> None:
    """Event handoffs between process pairs: succeed → resume chains."""
    n_pairs = max(1, int(150 * scale))
    items = 60

    def producer(mailbox):
        for k in range(items):
            yield env.timeout(0.002)
            mailbox.pop().succeed(k)

    def consumer(mailbox):
        for _ in range(items):
            box = env.event()
            mailbox.append(box)
            yield box

    for _ in range(n_pairs):
        mailbox: list = []
        env.process(consumer(mailbox))
        env.process(producer(mailbox))


def _fanin(env: Environment, scale: float) -> None:
    """Condition pressure: AnyOf/AllOf over timeout fans."""
    n_waiters = max(1, int(80 * scale))
    width, rounds = 8, 30

    def waiter(i: int):
        for _ in range(rounds):
            events = [
                env.timeout(0.001 + (j % 3) * 0.0007) for j in range(width)
            ]
            yield env.any_of(events)
            yield env.all_of(events)

    for i in range(n_waiters):
        env.process(waiter(i))


#: name → setup(env, scale); scale stretches the process population.
MICRO_BENCHES: Dict[str, Callable[[Environment, float], None]] = {
    "timer-wheel": _timer_wheel,
    "producer-consumer": _producer_consumer,
    "fanin": _fanin,
}


def run_micro(
    name: str, scale: float = 1.0, repeats: int = 5, backend: str = "heap"
) -> Dict[str, float]:
    """Run micro bench ``name``; best-of-``repeats`` events/second.

    Best-of is the right statistic for a regression gate: scheduling noise
    only ever makes a run *slower*, so the fastest observation is the
    closest to the code's true cost.
    """
    best_rate = 0.0
    events = sim_s = wall_best = 0.0
    setup = MICRO_BENCHES[name]
    for _ in range(repeats):
        env = _make_env(backend)
        setup(env, scale)
        start = time.perf_counter()
        env.run()
        wall = time.perf_counter() - start
        rate = _scheduled(env) / wall
        if rate > best_rate:
            best_rate = rate
            events, sim_s, wall_best = _scheduled(env), env.now, wall
    return {
        "events": events,
        "wall_s": wall_best,
        "events_per_s": best_rate,
        "sim_s": sim_s,
    }


# -- scenario benches --------------------------------------------------------

#: Registered scenarios benched end-to-end: name → build params.
SCENARIO_BENCHES: Dict[str, Dict] = {
    "quickstart": {},
}


def run_scenario_bench(
    name: str, repeats: int = 3, backend: str = "heap"
) -> Dict[str, float]:
    """Bench one registered scenario; only ``execute`` is timed."""
    from repro.cluster.builder import build
    from repro.cluster.experiment import execute
    from repro.scenarios import REGISTRY

    params = SCENARIO_BENCHES[name]
    best_rate = 0.0
    events = sim_s = wall_best = 0.0
    for _ in range(repeats):
        cluster = build(REGISTRY.build(name, **params), env=_make_env(backend))
        start = time.perf_counter()
        execute(cluster)
        wall = time.perf_counter() - start
        env = cluster.env
        rate = _scheduled(env) / wall
        if rate > best_rate:
            best_rate = rate
            events, sim_s, wall_best = _scheduled(env), env.now, wall
    return {
        "events": events,
        "wall_s": wall_best,
        "events_per_s": best_rate,
        "sim_s": sim_s,
        "simsec_per_wallsec": sim_s / wall_best,
    }


#: (n_osts, n_clients) grid — full sweep (≈ a minute on a laptop).
GRID_FULL: List[Tuple[int, int]] = [
    (10, 100),
    (10, 1000),
    (10, 10000),
    (100, 100),
    (100, 1000),
    (100, 10000),
    (500, 100),
    (500, 1000),
    (500, 10000),
]

#: Quick subset for CI and pre-commit runs.
GRID_QUICK: List[Tuple[int, int]] = [(10, 100), (10, 1000), (100, 1000)]


def run_cell(
    n_osts: int,
    n_clients: int,
    duration_s: float = 0.5,
    repeats: int = 3,
    backend: str = "heap",
) -> Dict[str, float]:
    """One scenario grid cell: ``n_clients`` swarm clients on ``n_osts`` OSTs.

    Uses the ``client-swarm`` registration (which scales both axes); wide
    cells exercise the same machinery ``scale-500ost`` registers for
    interactive use.  Returns events/sec and simulated-sec per wall-sec.
    """
    from repro.cluster.builder import build
    from repro.cluster.experiment import execute
    from repro.scenarios import REGISTRY

    best_rate = 0.0
    events = sim_s = wall_best = 0.0
    for _ in range(repeats):
        spec = REGISTRY.build(
            "client-swarm",
            n_clients=n_clients,
            n_jobs=min(8, n_clients),
            n_osts=n_osts,
            io_threads=4 if n_osts >= 100 else 16,
            duration=duration_s,
        )
        cluster = build(spec, env=_make_env(backend))
        start = time.perf_counter()
        execute(cluster)
        wall = time.perf_counter() - start
        env = cluster.env
        rate = _scheduled(env) / wall
        if rate > best_rate:
            best_rate = rate
            events, sim_s, wall_best = _scheduled(env), env.now, wall
    return {
        "n_osts": n_osts,
        "n_clients": n_clients,
        "events": events,
        "wall_s": wall_best,
        "events_per_s": best_rate,
        "sim_s": sim_s,
        "simsec_per_wallsec": sim_s / wall_best,
    }


# -- end-to-end wall-clock reference ----------------------------------------

def run_shootout(jobs: int = 1) -> Dict[str, float]:
    """Wall-clock the ``workload-shootout`` campaign (the ISSUE's ≥1.5× end-
    to-end target); heavier than the grid cells, used by ``--full`` runs."""
    from repro.campaigns import CAMPAIGNS, run_campaign

    campaign = CAMPAIGNS.build("workload-shootout")
    start = time.perf_counter()
    result = run_campaign(campaign, jobs=jobs)
    wall = time.perf_counter() - start
    return {
        "cells": float(len(result.outcomes)),
        "wall_s": wall,
        "cells_per_s": len(result.outcomes) / wall,
    }
