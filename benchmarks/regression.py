#!/usr/bin/env python3
"""Benchmark-regression runner: measure the engine, gate against baselines.

Runs the workloads defined in :mod:`engine_workloads` under **every kernel
backend** (``--backends`` narrows the set), emits a unified
``BENCH_engine.json`` (events/sec for the micro benches, events/sec +
simulated-sec/wall-sec for the scenario grid cells, one entry per backend),
and compares the results against the committed
``benchmarks/baselines.json``:

* each measurement is **normalized by a calibration loop** (raw host
  Python speed), so a slower CI machine is divided away before comparison;
* a normalized score more than ``--tolerance`` (default: the baseline
  file's ``tolerance``, 0.15) below its baseline **fails the run** with a
  non-zero exit code — that is the CI regression gate.  Each backend is
  gated against *its own* baseline (a schema-1 flat baseline file is read
  as heap-only, so the array backend is simply ungated until the
  baselines are re-recorded);
* speedups against the recorded *pre-overhaul* engine are reported for
  the perf trajectory, and each non-default backend is reported as a
  ratio over the heap kernel on the same workload.

Usage::

    python benchmarks/regression.py --quick          # CI gate (~15 s)
    python benchmarks/regression.py --full           # full grid + shootout
    python benchmarks/regression.py --update-baseline  # after a speedup lands

See docs/performance.md for how to read the output and when to update the
baselines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional

from engine_workloads import (
    BENCH_BACKENDS,
    GRID_FULL,
    GRID_QUICK,
    MICRO_BENCHES,
    SCENARIO_BENCHES,
    calibrate,
    run_cell,
    run_micro,
    run_scenario_bench,
    run_shootout,
)

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_BASELINES = BENCH_DIR / "baselines.json"

#: Gated baselines are recorded at this fraction of the measured best, so
#: the regression gate trips on real slowdowns rather than host jitter.
NOISE_FLOOR = 0.80


def cell_key(n_osts: int, n_clients: int) -> str:
    return f"{n_osts}x{n_clients}"


def collect(
    mode: str,
    repeats: int = 5,
    backends: Optional[List[str]] = None,
) -> Dict:
    """Measure every workload of ``mode`` ("quick" or "full").

    Every section entry maps ``workload name -> {backend -> measurement}``;
    backends are interleaved per workload (heap then array on the same
    bench back-to-back) so host-load drift hits both kernels alike.
    """
    grid = GRID_FULL if mode == "full" else GRID_QUICK
    backends = list(backends) if backends else list(BENCH_BACKENDS)
    results: Dict = {
        "schema": 2,
        "mode": mode,
        "backends": backends,
        "calibration_ops_per_s": calibrate(),
        "micro": {},
        "scenarios": {},
        "cells": {},
    }
    for name in MICRO_BENCHES:
        results["micro"][name] = {
            backend: run_micro(name, repeats=repeats, backend=backend)
            for backend in backends
        }
    scenario_repeats = max(3, repeats // 2 + 1)
    for name in SCENARIO_BENCHES:
        results["scenarios"][name] = {
            backend: run_scenario_bench(
                name, repeats=scenario_repeats, backend=backend
            )
            for backend in backends
        }
    for n_osts, n_clients in grid:
        results["cells"][cell_key(n_osts, n_clients)] = {
            backend: run_cell(
                n_osts, n_clients, repeats=scenario_repeats, backend=backend
            )
            for backend in backends
        }
    if mode == "full":
        results["shootout"] = run_shootout(jobs=1)
    return results


def _baseline_for(section: Dict, name: str, backend: str) -> Optional[Dict]:
    """Baseline entry for one (workload, backend), schema-1 or schema-2.

    Schema-1 baseline files are flat ``name -> entry`` recorded on the
    (only) heap kernel; under them every other backend is ungated.
    """
    entry = (section or {}).get(name)
    if not entry:
        return None
    if "events_per_s" in entry:  # schema-1 flat entry
        return entry if backend == "heap" else None
    return entry.get(backend)


def apply_baseline(results: Dict, baselines: Optional[Dict], tolerance: Optional[float]) -> Dict:
    """Annotate ``results`` with baseline ratios and evaluate the gate."""
    gate: Dict = {"passed": True, "failures": [], "checked": 0}
    results["gate"] = gate
    if not baselines:
        gate["note"] = "no baselines available; gate skipped"
        return results

    tol = tolerance if tolerance is not None else baselines.get("tolerance", 0.15)
    gate["tolerance"] = tol
    base_cal = baselines.get("calibration_ops_per_s") or 0.0
    cal = results["calibration_ops_per_s"]
    # >1 means this host runs raw Python faster than the baseline host did.
    machine_factor = (cal / base_cal) if base_cal else 1.0
    results["machine_factor"] = machine_factor

    def check(section: str, name: str, measured: Dict, base: Dict) -> None:
        base_rate = base.get("events_per_s")
        if not base_rate:
            return
        ratio = measured["events_per_s"] / (base_rate * machine_factor)
        measured["baseline_events_per_s"] = base_rate
        measured["ratio_vs_baseline"] = ratio
        pre = base.get("pre_overhaul_events_per_s")
        if pre:
            measured["speedup_vs_pre_overhaul"] = measured["events_per_s"] / (
                pre * machine_factor
            )
        gate["checked"] += 1
        if ratio < 1.0 - tol:
            gate["passed"] = False
            gate["failures"].append(
                f"{section}:{name} regressed to {ratio:.2f}x of baseline "
                f"({measured['events_per_s']:,.0f} vs {base_rate:,.0f} ev/s, "
                f"machine factor {machine_factor:.2f})"
            )

    for section in ("micro", "scenarios", "cells"):
        for name, by_backend in results[section].items():
            for backend, measured in by_backend.items():
                base = _baseline_for(baselines.get(section, {}), name, backend)
                if base:
                    check(section, f"{name}[{backend}]", measured, base)
    return results


def to_baseline(results: Dict, previous: Optional[Dict]) -> Dict:
    """Distill a run into a committable baselines.json payload.

    Pre-overhaul reference numbers (the perf-trajectory anchor) are carried
    over from the previous baseline file — a new recording never silently
    drops them.  A schema-1 (flat, heap-only) previous file feeds its
    pre-overhaul anchors into the new heap entries.
    """

    def carried_pre(section: str, name: str, backend: str) -> Optional[float]:
        prev = _baseline_for((previous or {}).get(section, {}), name, backend)
        return (prev or {}).get("pre_overhaul_events_per_s")

    baseline: Dict = {
        "schema": 2,
        "tolerance": (previous or {}).get("tolerance", 0.15),
        "calibration_ops_per_s": results["calibration_ops_per_s"],
        "micro": {},
        "scenarios": {},
        "cells": {},
    }
    for section in ("micro", "scenarios", "cells"):
        for name, by_backend in results[section].items():
            recorded = baseline[section][name] = {}
            for backend, measured in by_backend.items():
                entry = {
                    "events_per_s": measured["events_per_s"] * NOISE_FLOOR,
                    "session_best_events_per_s": measured["events_per_s"],
                }
                if "simsec_per_wallsec" in measured:
                    entry["simsec_per_wallsec"] = measured["simsec_per_wallsec"]
                pre = carried_pre(section, name, backend)
                if pre:
                    entry["pre_overhaul_events_per_s"] = pre
                recorded[backend] = entry
    if "note" in (previous or {}):
        baseline["note"] = previous["note"]
    return baseline


def report(results: Dict) -> str:
    lines = [
        f"engine benchmark ({results['mode']}, backends "
        f"{'/'.join(results.get('backends', ['heap']))}): "
        f"calibration {results['calibration_ops_per_s']:,.0f} ops/s"
    ]

    def annotate(m: Dict, by_backend: Dict, backend: str) -> str:
        extra = ""
        if "speedup_vs_pre_overhaul" in m:
            extra = f"  [{m['speedup_vs_pre_overhaul']:.2f}x vs pre-overhaul]"
        if "ratio_vs_baseline" in m:
            extra += f"  ({m['ratio_vs_baseline']:.2f}x of baseline)"
        heap = by_backend.get("heap")
        if backend != "heap" and heap:
            extra += (
                f"  {m['events_per_s'] / heap['events_per_s']:.2f}x of heap"
            )
        return extra

    for section, prefix in (
        ("micro", "micro"),
        ("scenarios", "scenario"),
        ("cells", "cell"),
    ):
        for name, by_backend in results[section].items():
            for backend, m in by_backend.items():
                label = f"{prefix}/{name}[{backend}]"
                sim = (
                    f"  {m['simsec_per_wallsec']:>7.2f} sim-s/wall-s"
                    if "simsec_per_wallsec" in m
                    else ""
                )
                lines.append(
                    f"  {label:<30} {m['events_per_s']:>12,.0f} ev/s"
                    f"{sim}{annotate(m, by_backend, backend)}"
                )
    if "shootout" in results:
        s = results["shootout"]
        lines.append(
            f"  shootout (jobs=1)      {s['wall_s']:.2f} s wall, "
            f"{s['cells_per_s']:.2f} cells/s"
        )
    gate = results["gate"]
    if gate.get("note"):
        lines.append(f"gate: {gate['note']}")
    elif gate["passed"]:
        lines.append(
            f"gate: PASS ({gate['checked']} metrics within "
            f"{gate['tolerance']:.0%} of baseline)"
        )
    else:
        lines.append("gate: FAIL")
        for failure in gate["failures"]:
            lines.append(f"  - {failure}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true", help="micro benches + small grid (CI)"
    )
    mode.add_argument(
        "--full", action="store_true", help="full grid + campaign shootout"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINES,
        help="baseline file to gate against (default: benchmarks/baselines.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional regression (default: baseline file's, 0.15)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for BENCH_engine.json (default: $BENCH_JSON_DIR or .)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="best-of repeats per micro bench"
    )
    parser.add_argument(
        "--backends",
        default=None,
        metavar="A,B",
        help="comma-separated kernel backends to measure "
        f"(default: all registered — {','.join(BENCH_BACKENDS)})",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from this run instead of gating",
    )
    args = parser.parse_args(argv)

    run_mode = "full" if args.full else "quick"
    backends = None
    if args.backends:
        backends = [b.strip() for b in args.backends.split(",") if b.strip()]
        unknown = sorted(set(backends) - set(BENCH_BACKENDS))
        if unknown:
            parser.error(
                f"unknown backend(s) {unknown}; registered: "
                f"{', '.join(BENCH_BACKENDS)}"
            )
    previous = None
    if args.baseline.exists():
        previous = json.loads(args.baseline.read_text())

    results = collect(run_mode, repeats=args.repeats, backends=backends)
    apply_baseline(results, None if args.update_baseline else previous, args.tolerance)

    out_dir = args.out or Path(os.environ.get("BENCH_JSON_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / "BENCH_engine.json"
    out_path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")

    print(report(results))
    print(f"\nBENCH_engine.json written to {out_path}")

    if args.update_baseline:
        payload = to_baseline(results, previous)
        args.baseline.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {args.baseline}")
        return 0

    return 0 if results["gate"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
