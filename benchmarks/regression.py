#!/usr/bin/env python3
"""Benchmark-regression runner: measure the engine, gate against baselines.

Runs the workloads defined in :mod:`engine_workloads`, emits a unified
``BENCH_engine.json`` (events/sec for the micro benches, events/sec +
simulated-sec/wall-sec for the scenario grid cells), and compares the
results against the committed ``benchmarks/baselines.json``:

* each measurement is **normalized by a calibration loop** (raw host
  Python speed), so a slower CI machine is divided away before comparison;
* a normalized score more than ``--tolerance`` (default: the baseline
  file's ``tolerance``, 0.15) below its baseline **fails the run** with a
  non-zero exit code — that is the CI regression gate;
* speedups against the recorded *pre-overhaul* engine are reported for
  the perf trajectory.

Usage::

    python benchmarks/regression.py --quick          # CI gate (~15 s)
    python benchmarks/regression.py --full           # full grid + shootout
    python benchmarks/regression.py --update-baseline  # after a speedup lands

See docs/performance.md for how to read the output and when to update the
baselines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional

from engine_workloads import (
    GRID_FULL,
    GRID_QUICK,
    MICRO_BENCHES,
    SCENARIO_BENCHES,
    calibrate,
    run_cell,
    run_micro,
    run_scenario_bench,
    run_shootout,
)

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_BASELINES = BENCH_DIR / "baselines.json"

#: Gated baselines are recorded at this fraction of the measured best, so
#: the regression gate trips on real slowdowns rather than host jitter.
NOISE_FLOOR = 0.80


def cell_key(n_osts: int, n_clients: int) -> str:
    return f"{n_osts}x{n_clients}"


def collect(mode: str, repeats: int = 5) -> Dict:
    """Measure every workload of ``mode`` ("quick" or "full")."""
    grid = GRID_FULL if mode == "full" else GRID_QUICK
    results: Dict = {
        "schema": 1,
        "mode": mode,
        "calibration_ops_per_s": calibrate(),
        "micro": {},
        "scenarios": {},
        "cells": {},
    }
    for name in MICRO_BENCHES:
        results["micro"][name] = run_micro(name, repeats=repeats)
    scenario_repeats = max(3, repeats // 2 + 1)
    for name in SCENARIO_BENCHES:
        results["scenarios"][name] = run_scenario_bench(
            name, repeats=scenario_repeats
        )
    for n_osts, n_clients in grid:
        results["cells"][cell_key(n_osts, n_clients)] = run_cell(
            n_osts, n_clients, repeats=scenario_repeats
        )
    if mode == "full":
        results["shootout"] = run_shootout(jobs=1)
    return results


def apply_baseline(results: Dict, baselines: Optional[Dict], tolerance: Optional[float]) -> Dict:
    """Annotate ``results`` with baseline ratios and evaluate the gate."""
    gate: Dict = {"passed": True, "failures": [], "checked": 0}
    results["gate"] = gate
    if not baselines:
        gate["note"] = "no baselines available; gate skipped"
        return results

    tol = tolerance if tolerance is not None else baselines.get("tolerance", 0.15)
    gate["tolerance"] = tol
    base_cal = baselines.get("calibration_ops_per_s") or 0.0
    cal = results["calibration_ops_per_s"]
    # >1 means this host runs raw Python faster than the baseline host did.
    machine_factor = (cal / base_cal) if base_cal else 1.0
    results["machine_factor"] = machine_factor

    def check(section: str, name: str, measured: Dict, base: Dict) -> None:
        base_rate = base.get("events_per_s")
        if not base_rate:
            return
        ratio = measured["events_per_s"] / (base_rate * machine_factor)
        measured["baseline_events_per_s"] = base_rate
        measured["ratio_vs_baseline"] = ratio
        pre = base.get("pre_overhaul_events_per_s")
        if pre:
            measured["speedup_vs_pre_overhaul"] = measured["events_per_s"] / (
                pre * machine_factor
            )
        gate["checked"] += 1
        if ratio < 1.0 - tol:
            gate["passed"] = False
            gate["failures"].append(
                f"{section}:{name} regressed to {ratio:.2f}x of baseline "
                f"({measured['events_per_s']:,.0f} vs {base_rate:,.0f} ev/s, "
                f"machine factor {machine_factor:.2f})"
            )

    for name, measured in results["micro"].items():
        base = baselines.get("micro", {}).get(name)
        if base:
            check("micro", name, measured, base)
    for name, measured in results["scenarios"].items():
        base = baselines.get("scenarios", {}).get(name)
        if base:
            check("scenarios", name, measured, base)
    for key, measured in results["cells"].items():
        base = baselines.get("cells", {}).get(key)
        if base:
            check("cells", key, measured, base)
    return results


def to_baseline(results: Dict, previous: Optional[Dict]) -> Dict:
    """Distill a run into a committable baselines.json payload.

    Pre-overhaul reference numbers (the perf-trajectory anchor) are carried
    over from the previous baseline file — a new recording never silently
    drops them.
    """
    prev_micro = (previous or {}).get("micro", {})
    prev_scenarios = (previous or {}).get("scenarios", {})
    prev_cells = (previous or {}).get("cells", {})
    baseline: Dict = {
        "schema": 1,
        "tolerance": (previous or {}).get("tolerance", 0.15),
        "calibration_ops_per_s": results["calibration_ops_per_s"],
        "micro": {},
        "scenarios": {},
        "cells": {},
    }
    for name, measured in results["micro"].items():
        entry = {
            "events_per_s": measured["events_per_s"] * NOISE_FLOOR,
            "session_best_events_per_s": measured["events_per_s"],
        }
        pre = prev_micro.get(name, {}).get("pre_overhaul_events_per_s")
        if pre:
            entry["pre_overhaul_events_per_s"] = pre
        baseline["micro"][name] = entry
    for name, measured in results["scenarios"].items():
        entry = {
            "events_per_s": measured["events_per_s"] * NOISE_FLOOR,
            "session_best_events_per_s": measured["events_per_s"],
            "simsec_per_wallsec": measured["simsec_per_wallsec"],
        }
        pre = prev_scenarios.get(name, {}).get("pre_overhaul_events_per_s")
        if pre:
            entry["pre_overhaul_events_per_s"] = pre
        baseline["scenarios"][name] = entry
    for key, measured in results["cells"].items():
        entry = {
            "events_per_s": measured["events_per_s"] * NOISE_FLOOR,
            "session_best_events_per_s": measured["events_per_s"],
            "simsec_per_wallsec": measured["simsec_per_wallsec"],
        }
        pre = prev_cells.get(key, {}).get("pre_overhaul_events_per_s")
        if pre:
            entry["pre_overhaul_events_per_s"] = pre
        baseline["cells"][key] = entry
    if "note" in (previous or {}):
        baseline["note"] = previous["note"]
    return baseline


def report(results: Dict) -> str:
    lines = [
        f"engine benchmark ({results['mode']}): "
        f"calibration {results['calibration_ops_per_s']:,.0f} ops/s"
    ]
    for name, m in results["micro"].items():
        extra = ""
        if "speedup_vs_pre_overhaul" in m:
            extra = f"  [{m['speedup_vs_pre_overhaul']:.2f}x vs pre-overhaul]"
        if "ratio_vs_baseline" in m:
            extra += f"  ({m['ratio_vs_baseline']:.2f}x of baseline)"
        lines.append(f"  micro/{name:<18} {m['events_per_s']:>12,.0f} ev/s{extra}")
    for name, m in results["scenarios"].items():
        extra = ""
        if "speedup_vs_pre_overhaul" in m:
            extra = f"  [{m['speedup_vs_pre_overhaul']:.2f}x vs pre-overhaul]"
        if "ratio_vs_baseline" in m:
            extra += f"  ({m['ratio_vs_baseline']:.2f}x of baseline)"
        lines.append(
            f"  scenario/{name:<15} {m['events_per_s']:>12,.0f} ev/s  "
            f"{m['simsec_per_wallsec']:>7.2f} sim-s/wall-s{extra}"
        )
    for key, m in results["cells"].items():
        extra = ""
        if "ratio_vs_baseline" in m:
            extra = f"  ({m['ratio_vs_baseline']:.2f}x of baseline)"
        lines.append(
            f"  cell/{key:<19} {m['events_per_s']:>12,.0f} ev/s  "
            f"{m['simsec_per_wallsec']:>7.2f} sim-s/wall-s{extra}"
        )
    if "shootout" in results:
        s = results["shootout"]
        lines.append(
            f"  shootout (jobs=1)      {s['wall_s']:.2f} s wall, "
            f"{s['cells_per_s']:.2f} cells/s"
        )
    gate = results["gate"]
    if gate.get("note"):
        lines.append(f"gate: {gate['note']}")
    elif gate["passed"]:
        lines.append(
            f"gate: PASS ({gate['checked']} metrics within "
            f"{gate['tolerance']:.0%} of baseline)"
        )
    else:
        lines.append("gate: FAIL")
        for failure in gate["failures"]:
            lines.append(f"  - {failure}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true", help="micro benches + small grid (CI)"
    )
    mode.add_argument(
        "--full", action="store_true", help="full grid + campaign shootout"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINES,
        help="baseline file to gate against (default: benchmarks/baselines.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional regression (default: baseline file's, 0.15)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for BENCH_engine.json (default: $BENCH_JSON_DIR or .)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="best-of repeats per micro bench"
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from this run instead of gating",
    )
    args = parser.parse_args(argv)

    run_mode = "full" if args.full else "quick"
    previous = None
    if args.baseline.exists():
        previous = json.loads(args.baseline.read_text())

    results = collect(run_mode, repeats=args.repeats)
    apply_baseline(results, None if args.update_baseline else previous, args.tolerance)

    out_dir = args.out or Path(os.environ.get("BENCH_JSON_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / "BENCH_engine.json"
    out_path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")

    print(report(results))
    print(f"\nBENCH_engine.json written to {out_path}")

    if args.update_baseline:
        payload = to_baseline(results, previous)
        args.baseline.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {args.baseline}")
        return 0

    return 0 if results["gate"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
