"""Bench the fault axis: chaos-shootout wall time and injection overhead.

Runs the ``chaos-shootout`` built-in (three mechanisms under an OST crash)
through :func:`repro.campaigns.run_campaign` and a single faulted scenario
against its fault-free twin, and emits ``BENCH_chaos.json`` (to the
invocation directory, or ``$BENCH_JSON_DIR``): per-mechanism recovery
time, fairness-under-failure and drop/retry counts, plus the relative
wall-time cost of having an injector in the event loop — the injector
drivers are ordinary simulation processes, so that cost must stay
noise-level.
"""

import json
import os
from pathlib import Path

import pytest

from repro.campaigns import CAMPAIGNS, run_campaign
from repro.cluster.builder import build
from repro.cluster.experiment import execute
from repro.metrics.report import format_chaos_table
from repro.scenarios import REGISTRY

_RESULTS = {}


def _small_spec(fault=None):
    spec = REGISTRY.build(
        "quickstart", file_mib=64.0, procs=4, capacity_mib_s=512.0
    )
    if fault is not None:
        spec = spec.with_fault(fault, {"start_s": 0.2, "duration_s": 0.2})
    return spec


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write BENCH_chaos.json after the module's benches finish."""
    yield
    out = Path(os.environ.get("BENCH_JSON_DIR", ".")) / "BENCH_chaos.json"
    out.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def test_chaos_shootout(benchmark, print_report):
    # static's rigid 20% hog share needs ~5.4 simulated seconds; lift the
    # duration cap so every mechanism's clients finish.
    campaign = CAMPAIGNS.build(
        "chaos-shootout", mechanisms="adaptbf,none,static", duration_s=8.0
    )
    result = benchmark.pedantic(
        run_campaign, args=(campaign,), kwargs={"jobs": 1}, rounds=1, iterations=1
    )
    assert len(result.outcomes) == campaign.n_cells
    _RESULTS["chaos_shootout"] = {
        "campaign": result.campaign.name,
        "spec_hash": result.campaign.spec_hash(),
        "fault": result.campaign.base_params["fault"],
        "cells": len(result.outcomes),
        "wall_s": result.wall_s,
        "cells_per_s": result.cells_per_s,
        "rows": {
            row.mechanism: {
                "recovery_s": row.recovery_s,
                "fairness_during": row.fairness_during,
                "fairness_after": row.fairness_after,
                "rpcs_dropped": row.rpcs_dropped,
                "rpcs_retried": row.rpcs_retried,
                "aggregate_mib_s": row.aggregate_mib_s,
            }
            for row in result.rows
        },
    }
    for row in result.rows:
        assert row.clients_finished
        assert row.rpcs_dropped > 0
    print_report(format_chaos_table(result))


def test_fault_injection_overhead(benchmark):
    """A crash window's wall-time cost over the fault-free twin run."""
    import time

    def run_once(fault):
        cluster = build(_small_spec(fault))
        start = time.perf_counter()
        result = execute(cluster)
        return time.perf_counter() - start, cluster, result

    # Warm-up + baseline outside the benchmarked call.
    baseline_s, _, baseline = run_once(None)
    assert baseline.clients_finished

    wall_s, cluster, result = benchmark.pedantic(
        run_once, args=("ost-crash",), rounds=1, iterations=1
    )
    assert result.clients_finished
    assert cluster.rpcs_dropped > 0
    _RESULTS["injection_overhead"] = {
        "baseline_wall_s": baseline_s,
        "faulted_wall_s": wall_s,
        "rpcs_dropped": cluster.rpcs_dropped,
        "rpcs_retried": cluster.rpcs_retried,
        "simulated_s": result.duration_s,
    }
