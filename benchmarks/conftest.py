"""Shared fixtures for the benchmark harness.

Every ``bench_fig*.py`` regenerates one table/figure of the paper: it runs
the corresponding experiment (timed by pytest-benchmark), prints the rows /
series the paper reports, and asserts the qualitative shape checks.

Scale: benches default to the reduced configuration (1/10 data, 1/10 time)
so the whole harness runs in about a minute; set ``REPRO_FULL=1`` for the
paper's full-size workloads.
"""

import pytest


@pytest.fixture
def print_report(capsys):
    """Print an experiment report so it lands in the bench output."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _print
