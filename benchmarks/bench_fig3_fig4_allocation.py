"""Bench E1 — regenerates paper Fig. 3 (timelines) and Fig. 4 (bandwidth).

Four identical 16-process jobs, priorities 10/10/30/50 %, run to completion
under No BW / Static BW / AdapTBF.  Prints the Fig. 4 bandwidth table, the
gain/loss table vs No BW, and the Fig. 3 per-mechanism throughput series;
asserts the priority-ordering, work-conservation and completion-order
shapes.
"""

from repro.experiments import fig3_fig4


def test_fig3_fig4_token_allocation(benchmark, print_report):
    comparison = benchmark.pedantic(fig3_fig4.run, rounds=1, iterations=1)
    print_report(fig3_fig4.report(comparison))
    for check in fig3_fig4.check_shapes(comparison):
        assert check.passed, f"{check.claim}: {check.detail}"
