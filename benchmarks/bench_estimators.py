"""Demand-estimator bench — the §IV-E "pattern hint" extension (E8, ours).

Compares the paper's last-value demand assumption (Eq. 11) against the
EWMA and peak-hold estimators from :mod:`repro.core.prediction` on the
§IV-F lending/re-compensation workload.  Reported per estimator: aggregate
throughput, the bursty jobs' bandwidth and how much reclaim traffic the
re-compensation step generated.  Estimator choice shifts *when* tokens are
clawed back, not the ledger's zero-sum accounting.
"""

from repro.cluster.builder import ClusterConfig
from repro.cluster.experiment import run_scenario
from repro.core.allocation import TokenAllocationAlgorithm
from repro.core.prediction import (
    EwmaEstimator,
    LastValueEstimator,
    PeakHoldEstimator,
)
from repro.experiments.common import bench_scale
from repro.metrics.tables import format_table
from repro.workloads.scenarios import scenario_recompensation

ESTIMATORS = {
    "last_value (paper)": LastValueEstimator,
    "ewma(0.4)": lambda: EwmaEstimator(alpha=0.4),
    "peak_hold(10)": lambda: PeakHoldEstimator(window=10),
}


def run_comparison():
    cfg = bench_scale()
    results = {}
    for name, estimator_factory in ESTIMATORS.items():
        scenario = scenario_recompensation(cfg)
        result = run_scenario(
            scenario,
            ClusterConfig(mechanism="adaptbf"),
            algorithm_factory=lambda f=estimator_factory: TokenAllocationAlgorithm(
                demand_estimator=f()
            ),
        )
        results[name] = result
    return results


def test_estimator_comparison(benchmark, print_report):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    rows = []
    reclaim = {}
    for name, result in results.items():
        summary = result.summary
        burst_bw = sum(summary.job(f"job{i}") for i in (1, 2, 3))
        reclaim[name] = sum(r.result.reclaimed_pool for r in result.history)
        rows.append(
            [name, summary.aggregate_mib_s, burst_bw, reclaim[name]]
        )
    print_report(
        format_table(
            ["estimator", "aggregate MiB/s", "jobs1-3 MiB/s", "tokens reclaimed"],
            rows,
            title="E8 (ours): §IV-F workload under different demand estimators",
        )
    )

    # Structural guarantees hold for every estimator: the ledger is zero-sum
    # at every recorded round, and the system still moves data.
    for name, result in results.items():
        assert result.summary.aggregate_mib_s > 0, name
        for round_ in result.history:
            assert sum(round_.records.values()) == 0, name
    # Peak-hold defers reclaim relative to the paper's last-value (Eq. 13's
    # head-room term shrinks when future demand is anticipated).
    assert reclaim["peak_hold(10)"] <= reclaim["last_value (paper)"] * 1.05
