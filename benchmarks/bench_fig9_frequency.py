"""Bench E4 — regenerates paper Fig. 9 (throughput vs allocation frequency).

Sweeps the AdapTBF observation period over the §IV-F workload and prints
the aggregate-throughput row per period; asserts that finer control does
not lose to coarser control.
"""

from repro.experiments import fig9


def test_fig9_allocation_frequency(benchmark, print_report):
    sweep = benchmark.pedantic(fig9.run, rounds=1, iterations=1)
    print_report(fig9.report(sweep))
    for check in fig9.check_shapes(sweep):
        assert check.passed, f"{check.claim}: {check.detail}"
