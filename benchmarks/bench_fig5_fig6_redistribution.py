"""Bench E2 — regenerates paper Fig. 5 (timelines) and Fig. 6 (bandwidth).

Three high-priority bursty jobs against a low-priority continuous hog.
Prints the Fig. 6 bandwidth and gain tables plus the Fig. 5 series; asserts
the starvation-prevention, utilization and work-conservation shapes.
"""

from repro.experiments import fig5_fig6


def test_fig5_fig6_token_redistribution(benchmark, print_report):
    comparison = benchmark.pedantic(fig5_fig6.run, rounds=1, iterations=1)
    print_report(fig5_fig6.report(comparison))
    for check in fig5_fig6.check_shapes(comparison):
        assert check.passed, f"{check.claim}: {check.detail}"
