"""Substrate microbenchmarks — engine, TBF scheduler and OST throughput.

Not a paper figure: these quantify the simulator itself so regressions in
the substrate (which every experiment's wall time depends on) are visible.
"""

from repro.lustre.rpc import Rpc
from repro.lustre.tbf import TbfRule, TbfScheduler
from repro.lustre.ost import Ost
from repro.sim import Environment


def test_engine_event_throughput(benchmark):
    """Events/second through the bare discrete-event engine."""

    def run_events():
        env = Environment()
        for i in range(10_000):
            env.timeout(i * 1e-6)
        env.run()
        return env.now

    benchmark(run_events)


def test_tbf_enqueue_dequeue_throughput(benchmark):
    """RPCs/second through a 64-rule TBF scheduler."""

    def run_tbf():
        sched = TbfScheduler()
        for i in range(64):
            sched.start_rule(0.0, TbfRule(f"r{i}", f"job{i}", rate=1e6, depth=64))
        served = 0
        now = 0.0
        for round_ in range(20):
            for i in range(64):
                for _ in range(4):
                    sched.enqueue(
                        now, Rpc(job_id=f"job{i}", client_id="c", size_bytes=1)
                    )
            while sched.dequeue(now) is not None:
                served += 1
            now += 0.001
        return served

    served = benchmark(run_tbf)
    assert served == 20 * 64 * 4


def test_ost_processor_sharing_throughput(benchmark):
    """Transfer completions/second through the fluid-flow OST model."""

    def run_ost():
        env = Environment()
        ost = Ost(env, "ost", capacity_bps=1e9)

        def feeder(env):
            for _ in range(200):
                for _ in range(16):
                    ost.transfer(1 << 20)
                yield env.timeout(0.02)

        env.process(feeder(env))
        env.run()
        return ost.bytes_served

    served = benchmark(run_ost)
    assert served == 200 * 16 * (1 << 20)
