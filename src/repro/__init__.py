"""AdapTBF reproduction: decentralized bandwidth control for HPC storage.

A faithful, fully-simulated reproduction of *AdapTBF: Decentralized
Bandwidth Control via Adaptive Token Borrowing for HPC Storage* (Rashid &
Dai, IPPS 2025).  The package layers:

* :mod:`repro.sim` — a deterministic discrete-event engine;
* :mod:`repro.lustre` — the Lustre data path AdapTBF plugs into (NRS with
  FIFO/TBF policies, OSS thread pool, processor-sharing OSTs, job stats);
* :mod:`repro.core` — the AdapTBF framework itself (three-step token
  allocation with lending/borrowing records, remainder fairness, controller
  and rule daemon) plus the paper's baselines, ablations and the pluggable
  bandwidth-mechanism protocol/registry (``MECHANISMS``) every contender —
  including the EWMA-prediction and PID additions — resolves through;
* :mod:`repro.workloads` — Filebench-style synthetic workloads: the three
  §IV scenarios plus new job mixes (burst storms, elastic churn);
* :mod:`repro.scenarios` — the declarative pipeline: frozen ``ScenarioSpec``
  family, named scenario registry, and the ``run_scenario(spec)`` entry
  point everything executes through;
* :mod:`repro.cluster` — spec materialization (``build(spec)``) and the
  experiment executor;
* :mod:`repro.metrics` — timelines, summaries and text rendering;
* :mod:`repro.experiments` — figure adapters and the unified CLI
  (``python -m repro.experiments run <scenario>``).

Quickstart
----------
>>> from repro.scenarios import REGISTRY, run_scenario
>>> result = run_scenario(REGISTRY.build("quickstart", file_mib=16.0))
>>> result.summary.aggregate_mib_s > 0
True

``repro.run_scenario`` is the pipeline entry point (takes a
``ScenarioSpec``); the pre-pipeline runner taking a legacy ``Scenario`` +
``ClusterConfig`` remains available as ``repro.cluster.run_scenario``.
"""

from repro.cluster import (
    Cluster,
    ClusterConfig,
    ExperimentResult,
    build_cluster,
    run_experiment,
)
from repro.core import MECHANISMS, AdapTbf, BandwidthMechanism, TokenAllocationAlgorithm
from repro.scenarios import (
    REGISTRY,
    PolicySpec,
    RunSpec,
    ScenarioSpec,
    TopologySpec,
    run_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "AdapTbf",
    "BandwidthMechanism",
    "MECHANISMS",
    "REGISTRY",
    "PolicySpec",
    "RunSpec",
    "ScenarioSpec",
    "TopologySpec",
    "Cluster",
    "ClusterConfig",
    "ExperimentResult",
    "TokenAllocationAlgorithm",
    "build_cluster",
    "run_experiment",
    "run_scenario",
    "__version__",
]
