"""AdapTBF reproduction: decentralized bandwidth control for HPC storage.

A faithful, fully-simulated reproduction of *AdapTBF: Decentralized
Bandwidth Control via Adaptive Token Borrowing for HPC Storage* (Rashid &
Dai, IPPS 2025).  The package layers:

* :mod:`repro.sim` — a deterministic discrete-event engine;
* :mod:`repro.lustre` — the Lustre data path AdapTBF plugs into (NRS with
  FIFO/TBF policies, OSS thread pool, processor-sharing OSTs, job stats);
* :mod:`repro.core` — the AdapTBF framework itself (three-step token
  allocation with lending/borrowing records, remainder fairness, controller
  and rule daemon) plus the paper's baselines and ablations;
* :mod:`repro.workloads` — Filebench-style synthetic workloads and the three
  §IV scenarios;
* :mod:`repro.cluster` — experiment assembly and the single-call runner;
* :mod:`repro.metrics` — timelines, summaries and text rendering;
* :mod:`repro.experiments` — one module per paper figure/analysis.

Quickstart
----------
>>> from repro.cluster import ClusterConfig, Mechanism, run_scenario
>>> from repro.workloads import ScenarioConfig, scenario_allocation
>>> scenario = scenario_allocation(ScenarioConfig(data_scale=1 / 64))
>>> result = run_scenario(scenario, ClusterConfig(mechanism=Mechanism.ADAPTBF))
>>> result.summary.aggregate_mib_s > 0
True
"""

from repro.cluster import (
    Cluster,
    ClusterConfig,
    ExperimentResult,
    Mechanism,
    build_cluster,
    run_experiment,
    run_scenario,
)
from repro.core import AdapTbf, TokenAllocationAlgorithm

__version__ = "1.0.0"

__all__ = [
    "AdapTbf",
    "Cluster",
    "ClusterConfig",
    "ExperimentResult",
    "Mechanism",
    "TokenAllocationAlgorithm",
    "build_cluster",
    "run_experiment",
    "run_scenario",
    "__version__",
]
