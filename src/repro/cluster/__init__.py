"""Cluster assembly and experiment driving.

:mod:`repro.cluster.builder` wires clients → network → OSS/OST with the
chosen bandwidth-control mechanism; :mod:`repro.cluster.experiment` runs a
scenario to completion and collects the timelines and summaries the paper's
figures are built from.
"""

from repro.cluster.builder import Cluster, ClusterConfig, Mechanism, build_cluster
from repro.cluster.experiment import ExperimentResult, run_experiment, run_scenario

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ExperimentResult",
    "Mechanism",
    "build_cluster",
    "run_experiment",
    "run_scenario",
]
