"""Cluster assembly and experiment driving.

:mod:`repro.cluster.builder` materializes a
:class:`~repro.scenarios.spec.ScenarioSpec` into clients → network →
OSS/OST with the chosen bandwidth-control mechanism
(``build(spec) → ClusterTopology``); :mod:`repro.cluster.experiment`
executes a built topology and collects the timelines and summaries the
paper's figures are built from.

The flat ``ClusterConfig`` + ``build_cluster`` / ``run_experiment``
surface predates the declarative pipeline and remains supported for
hand-assembled experiments.
"""

from repro.cluster.builder import (
    Cluster,
    ClusterConfig,
    ClusterTopology,
    build,
    build_cluster,
)
from repro.cluster.experiment import (
    ExperimentResult,
    execute,
    run_experiment,
    run_scenario,
)

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterTopology",
    "ExperimentResult",
    "build",
    "build_cluster",
    "execute",
    "run_experiment",
    "run_scenario",
]
