"""Cluster construction.

Assembles the simulated counterpart of the paper's CloudLab testbed
(Table II): one OSS node fronting an OST, a set of client processes grouped
into jobs, and one of three bandwidth-control mechanisms:

* ``Mechanism.NONE``     — *No BW*: FIFO NRS, no rate control;
* ``Mechanism.STATIC``   — *Static BW*: TBF rules fixed at global node share;
* ``Mechanism.ADAPTBF``  — the paper's framework, one controller per OST.

Simulator defaults stand in for the paper's hardware: the c6525-25g OSS has
two 480 GB SATA SSDs (~500 MiB/s each) and a 25 GbE NIC, so the OST-bandwidth
bottleneck sits around 1 GiB/s; ``capacity_mib_s`` defaults to 1024.  Tokens
follow the paper's convention (1 token = 1 RPC = 1 MiB payload), making the
OST's maximum token rate ``T_i = capacity / rpc_size``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.ablation import VARIANTS
from repro.core.baselines import install_static_rules
from repro.core.framework import AdapTbf
from repro.lustre.client import ClientProcess
from repro.lustre.network import Network
from repro.lustre.nrs import FifoPolicy, TbfPolicy
from repro.lustre.oss import Oss
from repro.lustre.ost import Ost
from repro.sim.engine import Environment
from repro.workloads.spec import JobSpec, validate_jobs

__all__ = ["Mechanism", "ClusterConfig", "Cluster", "build_cluster"]

MIB = 1 << 20


class Mechanism(enum.Enum):
    """Bandwidth-control mechanism under test (paper §IV-C)."""

    NONE = "none"
    STATIC = "static"
    ADAPTBF = "adaptbf"


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster and mechanism parameters.

    Parameters
    ----------
    mechanism:
        Which bandwidth control to install.
    capacity_mib_s:
        OST disk bandwidth in MiB/s (default ≈ the paper's SSD OST).
    rpc_size:
        Bulk RPC payload; 1 token = 1 RPC of this size.
    io_threads:
        OSS I/O thread count (paper node: 16 cores).
    net_latency_s:
        One-way client↔OSS latency.
    interval_s:
        AdapTBF observation period Δt (ignored by the baselines).
    overhead_s:
        Simulated per-round AdapTBF overhead (§IV-G measured ~25 ms; 0
        models the paper's proposed in-Lustre integration).
    bucket_depth:
        TBF bucket depth for all rules.
    variant:
        AdapTBF algorithm variant name from
        :data:`repro.core.ablation.VARIANTS` ("full" = the paper's design).
    n_osts:
        Number of (OSS, OST) pairs.  ``capacity_mib_s`` is *per OST*.
        With AdapTBF each OST runs its own fully independent controller —
        the paper's decentralized deployment (§II-B).
    stripe_count:
        OSTs per file (Lustre layout).  1 (the Lustre default) places each
        process's file wholly on one OST, assigned round-robin; larger
        values stripe each file's chunks across that many OSTs.
    """

    mechanism: Mechanism = Mechanism.ADAPTBF
    capacity_mib_s: float = 1024.0
    rpc_size: int = MIB
    io_threads: int = 16
    net_latency_s: float = 100e-6
    interval_s: float = 0.1
    overhead_s: float = 0.0
    bucket_depth: float = 3.0
    variant: str = "full"
    n_osts: int = 1
    stripe_count: int = 1

    def __post_init__(self) -> None:
        if self.capacity_mib_s <= 0:
            raise ValueError("capacity must be positive")
        if self.rpc_size <= 0:
            raise ValueError("rpc_size must be positive")
        if self.variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; options: {sorted(VARIANTS)}"
            )
        if self.n_osts <= 0:
            raise ValueError("n_osts must be positive")
        if not (1 <= self.stripe_count <= self.n_osts):
            raise ValueError(
                f"stripe_count must be in [1, n_osts], got {self.stripe_count}"
            )

    @property
    def capacity_bps(self) -> float:
        return self.capacity_mib_s * MIB

    @property
    def max_token_rate(self) -> float:
        """``T_i``: tokens/second one OST can actually serve."""
        return self.capacity_bps / self.rpc_size


@dataclass
class Cluster:
    """A built cluster: handles to every component of one experiment.

    Single-OST accessors (``ost``, ``oss``, ``adaptbf``) refer to the first
    target and remain the convenient surface for the common one-OST
    experiments; multi-OST code iterates ``osts`` / ``osses`` /
    ``controllers``.
    """

    env: Environment
    config: ClusterConfig
    osts: List[Ost]
    osses: List[Oss]
    network: Network
    clients: List[ClientProcess] = field(default_factory=list)
    #: One independent AdapTBF controller per OST (empty for baselines).
    controllers: List[AdapTbf] = field(default_factory=list)
    #: Static rule rates per OST (None unless mechanism is STATIC).
    static_rates: Optional[List[Dict[str, float]]] = None

    @property
    def ost(self) -> Ost:
        return self.osts[0]

    @property
    def oss(self) -> Oss:
        return self.osses[0]

    @property
    def adaptbf(self) -> Optional[AdapTbf]:
        return self.controllers[0] if self.controllers else None

    @property
    def client_processes(self):
        return [client.process for client in self.clients]

    def all_clients_done(self):
        """Event that fires when every client process has finished."""
        return self.env.all_of(self.client_processes)

    def total_capacity_bps(self) -> float:
        return sum(ost.capacity_bps for ost in self.osts)

    def mean_utilization(self, since: float, until: Optional[float] = None) -> float:
        return sum(ost.utilization(since, until) for ost in self.osts) / len(
            self.osts
        )


def build_cluster(
    env: Environment,
    config: ClusterConfig,
    jobs: List[JobSpec],
    algorithm_factory=None,
) -> Cluster:
    """Assemble a cluster running ``jobs`` under ``config.mechanism``.

    ``algorithm_factory`` (no-arg callable returning a
    :class:`~repro.core.allocation.TokenAllocationAlgorithm`) overrides
    ``config.variant`` — the hook for injecting custom estimators or
    experimental allocator builds; one instance is created per OST.
    """
    validate_jobs(jobs)
    from repro.lustre.striping import StripeLayout

    osts: List[Ost] = []
    osses: List[Oss] = []
    for index in range(config.n_osts):
        ost = Ost(env, f"OST{index:04d}", capacity_bps=config.capacity_bps)
        if config.mechanism is Mechanism.NONE:
            policy = FifoPolicy(env)
        else:
            policy = TbfPolicy(env)
        osts.append(ost)
        osses.append(Oss(env, ost, policy, io_threads=config.io_threads))
    network = Network(env, latency_s=config.net_latency_s)

    nodes = {job.job_id: job.nodes for job in jobs}
    cluster = Cluster(
        env=env, config=config, osts=osts, osses=osses, network=network
    )

    if config.mechanism is Mechanism.STATIC:
        cluster.static_rates = [
            install_static_rules(
                oss.policy,
                nodes=nodes,
                max_token_rate=config.max_token_rate,
                bucket_depth=config.bucket_depth,
            )
            for oss in osses
        ]
    elif config.mechanism is Mechanism.ADAPTBF:
        factory = algorithm_factory or VARIANTS[config.variant]
        # Decentralized: one controller per OST, no shared state between
        # them beyond the (static) job→nodes map.
        cluster.controllers = [
            AdapTbf(
                env,
                oss,
                nodes=nodes,
                max_token_rate=config.max_token_rate,
                interval_s=config.interval_s,
                overhead_s=config.overhead_s,
                bucket_depth=config.bucket_depth,
                algorithm=factory(),
            )
            for oss in osses
        ]

    # Round-robin file placement: process k's file starts on OST
    # (k mod n_osts) and spans `stripe_count` targets, like Lustre's
    # default allocator spreading files across the cluster.
    file_counter = 0
    for job in jobs:
        for proc_index, proc in enumerate(job.processes):
            start = file_counter % config.n_osts
            file_counter += 1
            targets = [
                osses[(start + k) % config.n_osts]
                for k in range(config.stripe_count)
            ]
            layout = StripeLayout(targets, stripe_size=config.rpc_size)
            cluster.clients.append(
                ClientProcess(
                    env,
                    network,
                    targets[0],
                    job_id=job.job_id,
                    client_id=f"{job.job_id}.p{proc_index}",
                    program=proc.pattern.program,
                    rpc_size=config.rpc_size,
                    window=proc.window,
                    layout=layout,
                )
            )
    return cluster
