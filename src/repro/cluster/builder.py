"""Cluster construction: materialize a :class:`ScenarioSpec` into hardware.

:func:`build` assembles the simulated counterpart of the paper's CloudLab
testbed (Table II) from a declarative spec: OSS nodes fronting OSTs
(uniform or heterogeneous link rates), client processes grouped into jobs,
and whichever bandwidth-control mechanism the policy names.  Mechanisms are
resolved through :data:`repro.core.mechanism.MECHANISMS` — the builder has
no per-mechanism code; it asks the resolved
:class:`~repro.core.mechanism.BandwidthMechanism` for each OSS's NRS policy
and then installs the mechanism once per (OSS, OST) pair, so registering a
new mechanism makes it buildable everywhere with no builder edits.  The
workload axis is equally opaque here: each process's
:class:`~repro.workloads.patterns.Pattern` arrives fully resolved in the
spec (scenario-native or rebuilt via
:meth:`~repro.scenarios.spec.ScenarioSpec.with_workload`), and the builder
just hands its ``program`` to a :class:`ClientProcess` — read, write,
stochastic or trace-driven alike.

Simulator defaults stand in for the paper's hardware: the c6525-25g OSS has
two 480 GB SATA SSDs (~500 MiB/s each) and a 25 GbE NIC, so the OST-bandwidth
bottleneck sits around 1 GiB/s; ``capacity_mib_s`` defaults to 1024.  Tokens
follow the paper's convention (1 token = 1 RPC = 1 MiB payload), making an
OST's maximum token rate ``T_i = capacity / rpc_size``.

:class:`ClusterConfig` and :func:`build_cluster` are the pre-pipeline
imperative surface, kept for callers that assemble topology+policy knobs by
hand; both are thin shims over the spec path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.framework import AdapTbf
from repro.core.mechanism import BandwidthMechanism, MechanismHandle
from repro.faults.injector import FaultHandle
from repro.lustre.client import ClientProcess
from repro.lustre.network import Network
from repro.lustre.oss import Oss
from repro.lustre.ost import Ost
from repro.scenarios.spec import (
    MIB,
    PolicySpec,
    RunSpec,
    ScenarioSpec,
    TopologySpec,
)
from repro.sim.engine import Environment
from repro.workloads.spec import JobSpec, validate_jobs

__all__ = [
    "ClusterConfig",
    "Cluster",
    "ClusterTopology",
    "build",
    "build_cluster",
]


@dataclass(frozen=True)
class ClusterConfig:
    """Flat cluster + mechanism parameters (pre-pipeline surface).

    Every field maps onto :class:`~repro.scenarios.spec.TopologySpec` or
    :class:`~repro.scenarios.spec.PolicySpec`; see those for semantics.
    New code should build a :class:`ScenarioSpec` instead.
    """

    mechanism: str = "adaptbf"
    mechanism_params: Mapping[str, Any] = ()
    capacity_mib_s: float = 1024.0
    rpc_size: int = MIB
    io_threads: int = 16
    net_latency_s: float = 100e-6
    interval_s: float = 0.1
    overhead_s: float = 0.0
    bucket_depth: float = 3.0
    variant: str = "full"
    n_osts: int = 1
    stripe_count: int = 1
    ost_capacities_mib_s: Optional[Tuple[float, ...]] = None
    keep_history: Union[bool, int] = True

    def __post_init__(self) -> None:
        # Validation is delegated to the spec family.
        self.topology_spec()
        self.policy_spec()

    def topology_spec(self) -> TopologySpec:
        return TopologySpec(
            n_osts=self.n_osts,
            capacity_mib_s=self.capacity_mib_s,
            ost_capacities_mib_s=self.ost_capacities_mib_s,
            stripe_count=self.stripe_count,
            rpc_size=self.rpc_size,
            io_threads=self.io_threads,
            net_latency_s=self.net_latency_s,
        )

    def policy_spec(self) -> PolicySpec:
        return PolicySpec(
            mechanism=self.mechanism,
            mechanism_params=self.mechanism_params,
            interval_s=self.interval_s,
            overhead_s=self.overhead_s,
            bucket_depth=self.bucket_depth,
            variant=self.variant,
            keep_history=self.keep_history,
        )

    def to_spec(
        self,
        jobs: List[JobSpec],
        name: str = "adhoc",
        duration_s: Optional[float] = None,
        bin_s: Optional[float] = None,
    ) -> ScenarioSpec:
        return ScenarioSpec(
            name=name,
            jobs=tuple(jobs),
            topology=self.topology_spec(),
            policy=self.policy_spec(),
            run=RunSpec(duration_s=duration_s, bin_s=bin_s),
        )

    @property
    def capacity_bps(self) -> float:
        return self.capacity_mib_s * MIB

    @property
    def max_token_rate(self) -> float:
        """``T_i``: tokens/second one (uniform) OST can actually serve."""
        return self.capacity_bps / self.rpc_size


@dataclass
class ClusterTopology:
    """A materialized spec: handles to every component of one experiment.

    Single-OST accessors (``ost``, ``oss``, ``adaptbf``) refer to the first
    target and remain the convenient surface for the common one-OST
    experiments; multi-OST code iterates ``osts`` / ``osses`` /
    ``handles``.
    """

    env: Environment
    spec: ScenarioSpec
    osts: List[Ost]
    osses: List[Oss]
    network: Network
    clients: List[ClientProcess] = field(default_factory=list)
    #: The resolved bandwidth mechanism (shared by every OST's handle).
    mechanism: Optional[BandwidthMechanism] = None
    #: One installed mechanism handle per OST — decentralized, no shared
    #: state between them beyond the (static) job→nodes map.
    handles: List[MechanismHandle] = field(default_factory=list)
    #: One installed fault handle per spec fault (chaos axis), in spec order.
    fault_handles: List[FaultHandle] = field(default_factory=list)

    @property
    def config(self) -> ClusterConfig:
        """The spec's topology+policy flattened to the legacy knob set."""
        topo, pol = self.spec.topology, self.spec.policy
        return ClusterConfig(
            mechanism=pol.mechanism,
            mechanism_params=pol.mechanism_params,
            capacity_mib_s=topo.capacity_mib_s,
            rpc_size=topo.rpc_size,
            io_threads=topo.io_threads,
            net_latency_s=topo.net_latency_s,
            interval_s=pol.interval_s,
            overhead_s=pol.overhead_s,
            bucket_depth=pol.bucket_depth,
            variant=pol.variant,
            n_osts=topo.n_osts,
            stripe_count=topo.stripe_count,
            ost_capacities_mib_s=topo.ost_capacities_mib_s,
            keep_history=pol.keep_history,
        )

    @property
    def controllers(self) -> List[AdapTbf]:
        """Per-OST :class:`AdapTbf` facades (empty for other mechanisms)."""
        return [
            handle.adaptbf
            for handle in self.handles
            if handle.adaptbf is not None
        ]

    @property
    def static_rates(self) -> Optional[List[Dict[str, float]]]:
        """Static rule rates per OST (None unless the mechanism fixes them)."""
        rates = [handle.static_rates for handle in self.handles]
        if any(r is not None for r in rates):
            return [r if r is not None else {} for r in rates]
        return None

    @property
    def ost(self) -> Ost:
        return self.osts[0]

    @property
    def oss(self) -> Oss:
        return self.osses[0]

    @property
    def adaptbf(self) -> Optional[AdapTbf]:
        controllers = self.controllers
        return controllers[0] if controllers else None

    @property
    def client_processes(self):
        return [client.process for client in self.clients]

    def all_clients_done(self):
        """Event that fires when every client process has finished."""
        return self.env.all_of(self.client_processes)

    def teardown(self) -> None:
        """Tear down every OST's mechanism (stop loops, remove rules)."""
        for handle in self.handles:
            handle.teardown()
        for fault in self.fault_handles:
            fault.teardown()

    # -- fault-axis aggregation --------------------------------------------
    @property
    def rpcs_dropped(self) -> int:
        """Crash-aborted in-flight transfers, summed over every OSS."""
        return sum(oss.rpcs_dropped for oss in self.osses)

    @property
    def rpcs_retried(self) -> int:
        """Crash-requeued RPCs, summed over every OSS."""
        return sum(oss.rpcs_retried for oss in self.osses)

    def fault_window(self) -> Optional[Tuple[float, float]]:
        """The union disturbance span of every installed fault, or None.

        Computed statically from the fault parameters (the handles publish
        their windows at install time), so during/after fairness buckets
        are known before the run starts.
        """
        windows = [w for handle in self.fault_handles for w in handle.windows]
        if not windows:
            return None
        return min(w[0] for w in windows), max(w[1] for w in windows)

    def total_capacity_bps(self) -> float:
        return sum(ost.capacity_bps for ost in self.osts)

    def mean_utilization(self, since: float, until: Optional[float] = None) -> float:
        return sum(ost.utilization(since, until) for ost in self.osts) / len(
            self.osts
        )


#: Pre-pipeline name for :class:`ClusterTopology`.
Cluster = ClusterTopology


def build(
    spec: ScenarioSpec,
    env: Optional[Environment] = None,
    algorithm_factory=None,
) -> ClusterTopology:
    """Materialize ``spec`` into a ready-to-run :class:`ClusterTopology`.

    The policy's mechanism name resolves through the mechanism registry;
    ``build`` only sequences resolve → NRS construction → per-OST install.
    ``algorithm_factory`` (no-arg callable returning a
    :class:`~repro.core.allocation.TokenAllocationAlgorithm`) overrides the
    AdapTBF-family algorithm construction — the hook for injecting custom
    estimators or experimental allocator builds; one instance is created
    per OST.
    """
    from repro.lustre.striping import StripeLayout

    # An explicitly-supplied environment wins (callers may pre-configure
    # tracing or reuse); otherwise the run spec picks the kernel backend.
    env = env if env is not None else Environment(backend=spec.run.backend)
    topology = spec.topology
    validate_jobs(list(spec.jobs))
    mechanism = spec.policy.resolve_mechanism()

    osts: List[Ost] = []
    osses: List[Oss] = []
    for index, capacity_mib_s in enumerate(topology.capacities_mib_s):
        ost = Ost(env, f"OST{index:04d}", capacity_bps=capacity_mib_s * MIB)
        osts.append(ost)
        osses.append(
            Oss(
                env,
                ost,
                mechanism.nrs_policy(env),
                io_threads=topology.io_threads,
            )
        )
    network = Network(env, latency_s=topology.net_latency_s)

    cluster = ClusterTopology(
        env=env,
        spec=spec,
        osts=osts,
        osses=osses,
        network=network,
        mechanism=mechanism,
    )
    cluster.handles = [
        mechanism.install(
            env,
            oss,
            spec,
            ost_index=index,
            algorithm_factory=algorithm_factory,
        )
        for index, oss in enumerate(osses)
    ]

    # Round-robin file placement: process k's file starts on OST
    # (k mod n_osts) and spans `stripe_count` targets, like Lustre's
    # default allocator spreading files across the cluster.
    file_counter = 0
    for job in spec.jobs:
        for proc_index, proc in enumerate(job.processes):
            start = file_counter % topology.n_osts
            file_counter += 1
            targets = [
                osses[(start + k) % topology.n_osts]
                for k in range(topology.stripe_count)
            ]
            layout = StripeLayout(targets, stripe_size=topology.rpc_size)
            cluster.clients.append(
                ClientProcess(
                    env,
                    network,
                    targets[0],
                    job_id=job.job_id,
                    client_id=f"{job.job_id}.p{proc_index}",
                    program=proc.pattern.program,
                    rpc_size=topology.rpc_size,
                    window=proc.window,
                    layout=layout,
                )
            )

    # Faults install last — injectors may inspect (and churn) the fully
    # assembled cluster, clients included.
    if spec.faults:
        from repro.faults import FAULTS

        cluster.fault_handles = [
            FAULTS.build(fault.name, **fault.kwargs).install(env, cluster)
            for fault in spec.faults
        ]
    return cluster


def build_cluster(
    env: Environment,
    config: ClusterConfig,
    jobs: List[JobSpec],
    algorithm_factory=None,
) -> ClusterTopology:
    """Assemble a cluster from the flat pre-pipeline knob set."""
    return build(config.to_spec(jobs), env=env, algorithm_factory=algorithm_factory)
