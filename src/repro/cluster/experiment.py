"""Experiment driver: execute one materialized scenario, collect metrics.

:func:`execute` is the single execution path of the pipeline: given a built
:class:`~repro.cluster.builder.ClusterTopology` it attaches a
:class:`~repro.metrics.timeline.Timeline` to the OSS completion streams,
runs the simulation until the jobs finish (or the spec's duration cap), and
returns everything the paper's figures need — timelines, completion times,
OST utilization, and (for AdapTBF) the full allocation/record history.

Which of those are actually collected follows the spec's
:class:`~repro.scenarios.spec.RunSpec.metrics`; sweeps that only need
completion times can skip per-RPC timeline recording entirely.

:func:`run_experiment` / :func:`run_scenario` are the pre-pipeline entry
points (flat config + job list / legacy ``Scenario``), kept as thin shims.
New code should use :func:`repro.scenarios.run_scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cluster.builder import ClusterConfig, ClusterTopology, build
from repro.core.types import AllocationRound
from repro.metrics.summary import BandwidthSummary, summarize
from repro.metrics.timeline import Timeline
from repro.workloads.spec import JobSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios.spec import ScenarioSpec
    from repro.workloads.scenarios import Scenario

__all__ = ["ExperimentResult", "execute", "run_experiment", "run_scenario"]


@dataclass
class ExperimentResult:
    """Everything measured in one run."""

    mechanism: str
    duration_s: float
    timeline: Timeline
    summary: BandwidthSummary
    job_completion_s: Dict[str, float]
    #: Mean utilization across all OSTs (0.0 unless collected).
    ost_utilization: float
    clients_finished: bool
    #: AdapTBF allocation history of the *first* OST (empty for baselines).
    history: List[AllocationRound] = field(default_factory=list)
    #: Per-OST histories for multi-OST runs (``[history]`` for one OST).
    per_ost_histories: List[List[AllocationRound]] = field(default_factory=list)

    def record_series(self, job_id: str):
        """``[(time, record)]`` for Fig. 7 (AdapTBF runs only)."""
        return [(r.time, r.records.get(job_id, 0)) for r in self.history]

    def demand_series(self, job_id: str):
        """``[(time, demand)]`` for Fig. 7 (AdapTBF runs only)."""
        return [(r.time, r.demands.get(job_id, 0)) for r in self.history]


def execute(cluster: ClusterTopology) -> ExperimentResult:
    """Run a built cluster to completion per its spec; see
    :class:`ExperimentResult`.

    The spec's ``run.duration_s`` caps simulated time: without a cap the
    run ends when every client process finishes (the §IV-D style); with one,
    whatever finished by the deadline is measured (the §IV-E/F style, where
    continuous jobs would otherwise dominate wall time).
    """
    env = cluster.env
    spec = cluster.spec
    timeline = Timeline(bin_s=spec.bin_s)

    completion: Dict[str, float] = {}
    outstanding = {
        job.job_id: sum(1 for _ in job.processes) for job in spec.jobs
    }

    if spec.run.wants("timeline"):

        def on_complete(rpc):
            timeline.record_rpc(rpc)

        for oss in cluster.osses:
            oss.on_complete(on_complete)

    # Track per-job completion: a job completes when all its processes do.
    for client in cluster.clients:
        def mark_done(event, job_id=client.io.job_id):
            outstanding[job_id] -= 1
            if outstanding[job_id] == 0:
                completion[job_id] = env.now

        client.process.add_callback(mark_done)

    done = cluster.all_clients_done()
    duration_cap = spec.run.duration_s
    if duration_cap is None:
        env.run(until=done)
        duration = env.now
        finished = True
    else:
        env.run(until=duration_cap)
        duration = duration_cap
        finished = done.processed

    summary = summarize(
        mechanism=spec.policy.mechanism,
        timeline=timeline,
        duration_s=duration,
        jobs=spec.job_ids,
        job_completion_s=completion,
    )
    if spec.run.wants("history"):
        # Uniform across mechanisms: handles that retain allocation rounds
        # (the AdapTBF family) contribute one history per OST.
        histories = [
            list(handle.history)
            for handle in cluster.handles
            if handle.history is not None
        ]
    else:
        histories = []
    utilization = (
        cluster.mean_utilization(0.0, duration)
        if spec.run.wants("utilization")
        else 0.0
    )
    return ExperimentResult(
        mechanism=spec.policy.mechanism,
        duration_s=duration,
        timeline=timeline,
        summary=summary,
        job_completion_s=dict(completion),
        ost_utilization=utilization,
        clients_finished=finished,
        history=histories[0] if histories else [],
        per_ost_histories=histories,
    )


def run_experiment(
    config: ClusterConfig,
    jobs: List[JobSpec],
    duration_s: Optional[float] = None,
    bin_s: float = 0.1,
    algorithm_factory=None,
) -> ExperimentResult:
    """Run ``jobs`` under a flat :class:`ClusterConfig` (pre-pipeline shim).

    ``algorithm_factory`` optionally overrides the AdapTBF algorithm
    construction (see :func:`~repro.cluster.builder.build`).
    """
    spec = config.to_spec(jobs, duration_s=duration_s, bin_s=bin_s)
    return execute(build(spec, algorithm_factory=algorithm_factory))


def run_scenario(
    scenario: "Scenario",
    config: ClusterConfig,
    bin_s: float = 0.1,
    algorithm_factory=None,
) -> ExperimentResult:
    """Run a legacy :class:`~repro.workloads.scenarios.Scenario` job mix."""
    return run_experiment(
        config,
        scenario.jobs,
        duration_s=scenario.duration_s,
        bin_s=bin_s,
        algorithm_factory=algorithm_factory,
    )
