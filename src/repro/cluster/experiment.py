"""Experiment driver: run one scenario under one mechanism, collect metrics.

``run_experiment`` is the single entry point every bench, example and
integration test uses: it builds the cluster, attaches a
:class:`~repro.metrics.timeline.Timeline` to the OSS completion stream, runs
the simulation until the jobs finish (or a duration cap), and returns
everything the paper's figures need — timelines, completion times, OST
utilization, and (for AdapTBF) the full allocation/record history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.builder import Cluster, ClusterConfig, build_cluster
from repro.core.types import AllocationRound
from repro.metrics.summary import BandwidthSummary, summarize
from repro.metrics.timeline import Timeline
from repro.sim.engine import Environment
from repro.workloads.scenarios import Scenario
from repro.workloads.spec import JobSpec

__all__ = ["ExperimentResult", "run_experiment"]


@dataclass
class ExperimentResult:
    """Everything measured in one run."""

    mechanism: str
    duration_s: float
    timeline: Timeline
    summary: BandwidthSummary
    job_completion_s: Dict[str, float]
    #: Mean utilization across all OSTs.
    ost_utilization: float
    clients_finished: bool
    #: AdapTBF allocation history of the *first* OST (empty for baselines).
    history: List[AllocationRound] = field(default_factory=list)
    #: Per-OST histories for multi-OST runs (``[history]`` for one OST).
    per_ost_histories: List[List[AllocationRound]] = field(default_factory=list)

    def record_series(self, job_id: str):
        """``[(time, record)]`` for Fig. 7 (AdapTBF runs only)."""
        return [(r.time, r.records.get(job_id, 0)) for r in self.history]

    def demand_series(self, job_id: str):
        """``[(time, demand)]`` for Fig. 7 (AdapTBF runs only)."""
        return [(r.time, r.demands.get(job_id, 0)) for r in self.history]


def run_experiment(
    config: ClusterConfig,
    jobs: List[JobSpec],
    duration_s: Optional[float] = None,
    bin_s: float = 0.1,
    algorithm_factory=None,
) -> ExperimentResult:
    """Run ``jobs`` under ``config``; see :class:`ExperimentResult`.

    Parameters
    ----------
    duration_s:
        Cap on simulated time.  Without a cap the run ends when every client
        process finishes (the §IV-D style); with one, whatever finished by
        the deadline is measured (the §IV-E/F style, where continuous jobs
        would otherwise dominate wall time).
    bin_s:
        Timeline bin width (paper: 100 ms).
    algorithm_factory:
        Optional override for the AdapTBF algorithm construction (see
        :func:`~repro.cluster.builder.build_cluster`).
    """
    env = Environment()
    cluster = build_cluster(env, config, jobs, algorithm_factory=algorithm_factory)
    timeline = Timeline(bin_s=bin_s)

    completion: Dict[str, float] = {}
    outstanding = {
        job.job_id: sum(1 for _ in job.processes) for job in jobs
    }

    def on_complete(rpc):
        timeline.record_rpc(rpc)

    for oss in cluster.osses:
        oss.on_complete(on_complete)

    # Track per-job completion: a job completes when all its processes do.
    for client in cluster.clients:
        def mark_done(event, job_id=client.io.job_id):
            outstanding[job_id] -= 1
            if outstanding[job_id] == 0:
                completion[job_id] = env.now

        client.process.add_callback(mark_done)

    done = cluster.all_clients_done()
    if duration_s is None:
        env.run(until=done)
        duration = env.now
        finished = True
    else:
        env.run(until=duration_s)
        duration = duration_s
        finished = done.processed

    job_ids = [job.job_id for job in jobs]
    summary = summarize(
        mechanism=config.mechanism.value,
        timeline=timeline,
        duration_s=duration,
        jobs=job_ids,
        job_completion_s=completion,
    )
    histories = [list(ctrl.history) for ctrl in cluster.controllers]
    return ExperimentResult(
        mechanism=config.mechanism.value,
        duration_s=duration,
        timeline=timeline,
        summary=summary,
        job_completion_s=dict(completion),
        ost_utilization=cluster.mean_utilization(0.0, duration),
        clients_finished=finished,
        history=histories[0] if histories else [],
        per_ost_histories=histories,
    )


def run_scenario(
    scenario: Scenario,
    config: ClusterConfig,
    bin_s: float = 0.1,
    algorithm_factory=None,
) -> ExperimentResult:
    """Run a prebuilt :class:`~repro.workloads.scenarios.Scenario`."""
    return run_experiment(
        config,
        scenario.jobs,
        duration_s=scenario.duration_s,
        bin_s=bin_s,
        algorithm_factory=algorithm_factory,
    )
