"""Deterministic random-number streams.

Every stochastic component (burst jitter, client think time, …) draws from its
own named substream derived from one root seed, so adding a new random
component never perturbs the draws of existing ones — a standard discipline
for reproducible simulation studies.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as np
except ImportError:  # pragma: no cover
    # The simulation kernel runs without numpy (see repro.sim.backends);
    # only actually *drawing* from a stochastic stream requires it, so the
    # import is deferred to first use rather than poisoning `import repro.sim`.
    np = None

__all__ = ["RngStreams"]


class RngStreams:
    """A factory of independent, named :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed.  Two :class:`RngStreams` with the same seed produce
        identical streams for identical names.

    Example
    -------
    >>> streams = RngStreams(seed=42)
    >>> a = streams.get("client.0")
    >>> b = streams.get("client.1")
    >>> a is streams.get("client.0")
    True
    """

    __slots__ = ("seed", "_streams", "_stdlib_streams")

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, "np.random.Generator"] = {}
        self._stdlib_streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> "np.random.Generator":
        """Return the (cached) generator for ``name``."""
        if np is None:
            raise ImportError(
                "stochastic streams require numpy (install repro[fast]); "
                "the simulation kernel itself runs without it"
            )
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self._derive(name))
        return self._streams[name]

    def get_stdlib(self, name: str) -> random.Random:
        """Return the (cached) stdlib :class:`random.Random` for ``name``.

        Spec-construction layers (scenario generators, campaign grids) must
        stay importable without numpy, so they draw from this stdlib twin of
        :meth:`get`.  The substream seed comes from the same BLAKE2b
        derivation, so the named-substream discipline — one root seed, one
        independent stream per component name — is identical; only the
        generator API differs.
        """
        if name not in self._stdlib_streams:
            self._stdlib_streams[name] = random.Random(self._derive(name))
        return self._stdlib_streams[name]

    def _derive(self, name: str) -> int:
        """Derive a 64-bit child seed from the root seed and ``name``.

        Uses BLAKE2b rather than ``hash()`` because the latter is salted per
        interpreter run and would destroy reproducibility.
        """
        digest = hashlib.blake2b(
            f"{self.seed}:{name}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "little")

    def spawn(self, namespace: str) -> "RngStreams":
        """Return a child factory whose streams live under ``namespace``."""
        child = RngStreams(self._derive(namespace))
        return child

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"
