"""Event primitives for the discrete-event engine.

An :class:`Event` is a one-shot occurrence with an optional value.  Processes
(:mod:`repro.sim.process`) wait on events by ``yield``-ing them; arbitrary
callbacks may also be attached, which is how the engine itself wires process
resumption.

Events move through three states:

``pending``    created but not yet triggered; callbacks may be added.
``triggered``  scheduled on the environment's event heap with a value.
``processed``  callbacks have run; the value is final.

The separation of *triggered* and *processed* matters for determinism: a
callback added after triggering but before processing still runs, while adding
one after processing raises, surfacing ordering bugs instead of silently
dropping wakeups.

A fourth, terminal state exists for wakeups that lost a race:

``cancelled``  :meth:`Event.cancel` dropped the callbacks; the heap entry is
               skipped *lazily* when it reaches the top (O(1) amortized,
               no heap surgery).  Cancelling discards any waiters, so it is
               only appropriate for pure alarms nobody awaits exclusively —
               the OSS idle race and the OST completion checks.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Environment

__all__ = [
    "Event",
    "Timeout",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "FirstOf",
    "ConditionValue",
]

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()

#: Heap priority for ordinary events (mirrors engine.PRIORITY_NORMAL; kept
#: literal here so the Timeout fast path needs no cross-module import).
_PRIORITY_NORMAL = 1


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` is whatever the interrupter supplied, typically a short
    string or an exception describing why the victim should stop waiting.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence processes can wait for.

    Parameters
    ----------
    env:
        Owning environment.  Events are bound to exactly one environment and
        may only be triggered once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_cancelled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks invoked (in insertion order) when the event is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False
        self._cancelled: bool = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once all callbacks have run (or the event was cancelled)."""
        return self.callbacks is None

    @property
    def cancelled(self) -> bool:
        """True when :meth:`cancel` discarded this event."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        if self._value is _PENDING:
            raise RuntimeError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception when it failed)."""
        if self._value is _PENDING:
            raise RuntimeError("event not yet triggered")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING or self._cancelled:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid = eid = env._eid + 1
        env._push_now((env._now, _PRIORITY_NORMAL, eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exception``."""
        if self._value is not _PENDING or self._cancelled:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._ok = False
        self._value = exception
        env = self.env
        env._eid = eid = env._eid + 1
        env._push_now((env._now, _PRIORITY_NORMAL, eid, self))
        return self

    def defused(self) -> None:
        """Mark a failure as handled so the engine does not re-raise it."""
        self._defused = True

    def cancel(self) -> None:
        """Lazily cancel this event: drop its callbacks and let the heap
        entry be skipped when it surfaces.

        Any waiters are silently discarded — callers own the guarantee that
        nobody is *exclusively* waiting on a cancelled event.  Cancelling an
        already-processed event raises, surfacing use-after-dispatch bugs.
        """
        if self.callbacks is None:
            raise RuntimeError(f"{self!r} already processed")
        self._cancelled = True
        self.callbacks = None

    # -- callback plumbing -------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; it runs when the event is processed."""
        if self.callbacks is None:
            raise RuntimeError(f"{self!r} already processed")
        self.callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Detach a previously added callback (no-op if already processed)."""
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "cancelled"
            if self._cancelled
            else "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    Unlike a plain :class:`Event`, a timeout is triggered immediately on
    construction — the delay is encoded in its scheduled time.

    This is the dominant event type of every simulation (client pacing, OSS
    idle waits, OST completion checks), so construction is a single flat
    fast path — no ``super().__init__`` chain, no ``_schedule`` call — and
    :meth:`Environment.timeout` recycles processed instances through the
    environment's free list instead of constructing new ones.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._cancelled = False
        self.delay = delay = float(delay)
        env._eid = eid = env._eid + 1
        env._push((env._now + delay, _PRIORITY_NORMAL, eid, self))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Timeout delay={self.delay!r}>"


class ConditionValue:
    """Ordered mapping of events to values produced by :class:`AnyOf`/:class:`AllOf`.

    Preserves the order in which the component events were passed, which makes
    test assertions deterministic.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> "Iterator[Event]":
        return iter(self.events)

    def todict(self) -> dict:
        return {event: event._value for event in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {self.todict()!r}>"


class _Condition(Event):
    """Base for composite events over a fixed set of component events.

    Each component event is examined exactly once — either at construction
    (already processed) or via the single callback registered on it — so a
    subclass's :meth:`_on_component` sees every component exactly once and
    can track completion with a counter instead of rescanning the component
    list (the rescan made ``all_of`` over N client processes O(N²) in total;
    the counter makes it O(N)).
    """

    __slots__ = ("_events", "_outstanding")

    def __init__(self, env: "Environment", events: Sequence[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._outstanding = len(self._events)
        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must belong to the same environment")

        if not self._events:
            self.succeed(self._collect())
            return

        check = self._check
        for event in self._events:
            if event.callbacks is None:
                check(event)
            else:
                event.callbacks.append(check)

    def _collect(self) -> ConditionValue:
        # Keyed on *processed*, not *triggered*: a Timeout is triggered at
        # creation but its value only becomes observable once delivered.
        value = ConditionValue()
        append = value.events.append
        for event in self._events:
            if event.callbacks is None and event._ok:
                append(event)
        return value

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggered when *any* component event succeeds (or one fails)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        # ``event`` is processed by the time we run (callback or the
        # construction-time branch), so a success is sufficient on its own —
        # no need to rescan the component list.
        if self._value is not _PENDING:
            return
        if not event._ok:
            event.defused()
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggered when *all* component events have succeeded (or one fails)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event.defused()
            self.fail(event._value)
        else:
            self._outstanding -= 1
            if not self._outstanding:
                self.succeed(self._collect())


class FirstOf(Event):
    """Lean race over component events: succeeds with the *event* that fired.

    The low-overhead sibling of :class:`AnyOf` for pure wakeups — the OSS
    idle wait races a token-deadline timer against the arrival broadcast
    once per dequeue attempt, and never looks at the value.  ``FirstOf``
    skips the :class:`ConditionValue` bookkeeping and delivers the winning
    event itself; combine with :meth:`Event.cancel` to retire the losing
    timer without waiting for it to surface.

    Component events are not validated against the environment; callers own
    that invariant (use :class:`AnyOf` at API boundaries).
    """

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        check = self._check
        for event in events:
            if self._value is not _PENDING:
                break
            if event.callbacks is None:
                check(event)
            else:
                event.callbacks.append(check)

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if event._ok:
            self.succeed(event)
        else:
            event.defused()
            self.fail(event._value)
