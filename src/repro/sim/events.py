"""Event primitives for the discrete-event engine.

An :class:`Event` is a one-shot occurrence with an optional value.  Processes
(:mod:`repro.sim.process`) wait on events by ``yield``-ing them; arbitrary
callbacks may also be attached, which is how the engine itself wires process
resumption.

Events move through three states:

``pending``    created but not yet triggered; callbacks may be added.
``triggered``  scheduled on the environment's event heap with a value.
``processed``  callbacks have run; the value is final.

The separation of *triggered* and *processed* matters for determinism: a
callback added after triggering but before processing still runs, while adding
one after processing raises, surfacing ordering bugs instead of silently
dropping wakeups.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Environment

__all__ = ["Event", "Timeout", "Interrupt", "AnyOf", "AllOf", "ConditionValue"]

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` is whatever the interrupter supplied, typically a short
    string or an exception describing why the victim should stop waiting.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence processes can wait for.

    Parameters
    ----------
    env:
        Owning environment.  Events are bound to exactly one environment and
        may only be triggered once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks invoked (in insertion order) when the event is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise RuntimeError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception when it failed)."""
        if self._value is _PENDING:
            raise RuntimeError("event not yet triggered")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exception``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defused(self) -> None:
        """Mark a failure as handled so the engine does not re-raise it."""
        self._defused = True

    # -- callback plumbing -------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; it runs when the event is processed."""
        if self.callbacks is None:
            raise RuntimeError(f"{self!r} already processed")
        self.callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Detach a previously added callback (no-op if already processed)."""
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    Unlike a plain :class:`Event`, a timeout is triggered immediately on
    construction — the delay is encoded in its scheduled time.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        env._schedule(self, delay=self.delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Timeout delay={self.delay!r}>"


class ConditionValue:
    """Ordered mapping of events to values produced by :class:`AnyOf`/:class:`AllOf`.

    Preserves the order in which the component events were passed, which makes
    test assertions deterministic.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict:
        return {event: event._value for event in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {self.todict()!r}>"


class _Condition(Event):
    """Base for composite events over a fixed set of component events."""

    __slots__ = ("_events", "_outstanding")

    def __init__(self, env: "Environment", events: Sequence[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._outstanding = 0
        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must belong to the same environment")

        if not self._events:
            self.succeed(self._collect())
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.add_callback(self._check)

    def _collect(self) -> ConditionValue:
        # Keyed on *processed*, not *triggered*: a Timeout is triggered at
        # creation but its value only becomes observable once delivered.
        value = ConditionValue()
        for event in self._events:
            if event.processed and event._ok:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused()
            self.fail(event._value)
        elif self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggered when *any* component event succeeds (or one fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return any(e.processed and e._ok for e in self._events)


class AllOf(_Condition):
    """Triggered when *all* component events have succeeded (or one fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return all(e.processed and e._ok for e in self._events)
