"""Cross-backend event-trace differ.

The kernel backends (:mod:`repro.sim.backends`) promise to dispatch the
exact same ``(time, priority, seq, event)`` stream for a given workload —
that promise is the entire correctness argument for switching backends.
This module turns it into a checkable artifact: run a scenario once per
backend with the engine's ``trace`` hook attached, and report the first
dispatch where the streams diverge (with context), or a clean bill.

Used three ways:

* the backend-parity tests (``tests/sim/test_backends.py``) assert
  :func:`diff_backends` comes back clean on the quickstart / multiost /
  burst-storm scenarios;
* ``examples/profiling_walkthrough.py --diff`` gives the same check as a
  command-line smoke test;
* when developing a new backend, :func:`format_report` pinpoints the first
  divergent dispatch instead of leaving you bisecting CSVs.

Events are keyed by ``(time, priority, seq, type-name)``; the object
identity of the event necessarily differs between two runs, but under the
engine's determinism invariant the sequence numbers fix the schedule, so a
type-level match at every seq is exactly as strong as object-level
equality within one run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

__all__ = [
    "TraceEntry",
    "Divergence",
    "DiffReport",
    "trace_scenario",
    "first_divergence",
    "diff_backends",
    "format_report",
]

#: One dispatched event: ``(time, priority, seq, event type name)``.
TraceEntry = Tuple[float, int, int, str]

#: Context lines shown on each side of a divergence.
_CONTEXT = 3


@dataclass(frozen=True, slots=True)
class Divergence:
    """The first position where two dispatch streams disagree."""

    #: Index into the dispatch streams (0-based).
    index: int
    #: Entry of the first stream at ``index`` (None when it ended early).
    left: Optional[TraceEntry]
    #: Entry of the second stream at ``index`` (None when it ended early).
    right: Optional[TraceEntry]


@dataclass(frozen=True, slots=True)
class DiffReport:
    """Outcome of comparing one scenario under two backends."""

    scenario: str
    backends: Tuple[str, str]
    counts: Tuple[int, int]
    divergence: Optional[Divergence]
    #: A few entries before/after the divergence from each stream, for
    #: human consumption via :func:`format_report`.
    context: Tuple[Sequence[TraceEntry], Sequence[TraceEntry]] = ((), ())

    @property
    def equal(self) -> bool:
        return self.divergence is None


def trace_scenario(scenario, backend: str) -> List[TraceEntry]:
    """Run ``scenario`` under ``backend`` and return its dispatch stream.

    ``scenario`` is a registered scenario name or a built
    :class:`~repro.scenarios.spec.ScenarioSpec`.  The spec's own backend
    selection is overridden by ``backend``.
    """
    # Local imports: tracediff sits in the sim layer but drives the full
    # scenario stack; importing lazily keeps the engine import-light.
    from repro.cluster.builder import build
    from repro.cluster.experiment import execute
    from repro.scenarios import REGISTRY
    from repro.scenarios.spec import ScenarioSpec

    if isinstance(scenario, str):
        spec = REGISTRY.build(scenario)
    elif isinstance(scenario, ScenarioSpec):
        spec = scenario
    else:
        raise TypeError(
            f"scenario must be a name or ScenarioSpec, got {scenario!r}"
        )
    spec = spec.with_run(backend=backend)

    cluster = build(spec)
    entries: List[TraceEntry] = []
    append = entries.append
    cluster.env.trace = lambda when, priority, seq, event: append(
        (when, priority, seq, type(event).__name__)
    )
    execute(cluster)
    return entries


def first_divergence(
    left: Sequence[TraceEntry], right: Sequence[TraceEntry]
) -> Optional[Divergence]:
    """First index where two dispatch streams disagree, or None.

    A stream that is a strict prefix of the other diverges at the shorter
    stream's length (the missing side is reported as ``None``).
    """
    for index, (a, b) in enumerate(zip(left, right)):
        if a != b:
            return Divergence(index=index, left=a, right=b)
    if len(left) != len(right):
        index = min(len(left), len(right))
        return Divergence(
            index=index,
            left=left[index] if index < len(left) else None,
            right=right[index] if index < len(right) else None,
        )
    return None


def diff_backends(
    scenario,
    backends: Tuple[str, str] = ("heap", "array"),
) -> DiffReport:
    """Run ``scenario`` under two backends and compare dispatch streams."""
    name = scenario if isinstance(scenario, str) else scenario.name
    left = trace_scenario(scenario, backends[0])
    right = trace_scenario(scenario, backends[1])
    divergence = first_divergence(left, right)
    context: Tuple[Sequence[TraceEntry], Sequence[TraceEntry]] = ((), ())
    if divergence is not None:
        lo = max(0, divergence.index - _CONTEXT)
        hi = divergence.index + _CONTEXT + 1
        context = (tuple(left[lo:hi]), tuple(right[lo:hi]))
    return DiffReport(
        scenario=name,
        backends=backends,
        counts=(len(left), len(right)),
        divergence=divergence,
        context=context,
    )


def format_report(report: DiffReport) -> str:
    """Human-readable rendering of a :class:`DiffReport`."""
    a, b = report.backends
    if report.equal:
        return (
            f"{report.scenario}: {a} and {b} dispatched identical streams "
            f"({report.counts[0]} events)"
        )
    div = report.divergence
    lines = [
        f"{report.scenario}: {a} and {b} DIVERGE at dispatch #{div.index}",
        f"  {a}: {div.left!r}  (stream length {report.counts[0]})",
        f"  {b}: {div.right!r}  (stream length {report.counts[1]})",
    ]
    left_ctx, right_ctx = report.context
    if left_ctx or right_ctx:
        lines.append(f"  context ({a}):")
        lines.extend(f"    {entry!r}" for entry in left_ctx)
        lines.append(f"  context ({b}):")
        lines.extend(f"    {entry!r}" for entry in right_ctx)
    return "\n".join(lines)
