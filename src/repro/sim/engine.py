"""The discrete-event simulation core.

:class:`Environment` owns the virtual clock and the event heap.  Time only
advances when the engine pops the next scheduled event; between events the
simulated world is frozen, which is what lets us reproduce the paper's
100 ms control loop with perfect determinism.

Scheduling order is a total order over ``(time, priority, sequence)`` so two
events at the same instant are processed in FIFO creation order unless a
priority says otherwise — the same tiebreak real Lustre gets implicitly from
its work queues.  Determinism is the engine's invariant: every optimization
below preserves the exact ``(time, priority, seq)`` dispatch order, which is
verified by the event-trace tests in ``tests/sim/`` and by the byte-identical
fig3–fig9 outputs (see docs/performance.md).

Hot-path design (the benchmark-regression harness in ``benchmarks/`` keeps
these honest):

* **Bare heap tuples** — the heap holds ``(time, priority, seq, event)``
  tuples; nothing is ever re-heapified or removed in place.
* **Lazy cancellation** — :meth:`Event.cancel` marks an event dead by
  dropping its callback list; the dispatch loop skips dead entries when they
  surface at the heap top instead of paying O(n) removal.
* **Specialized run loops** — :meth:`Environment.run` dispatches through one
  of three inlined loops (drain / run-until-time / run-until-event) chosen
  once up front, so the per-event cost is a heap pop plus the callbacks and
  none of the per-event method calls or stop-condition re-derivations the
  naive ``while: step()`` loop paid.
* **Timeout free list** — :class:`~repro.sim.events.Timeout` is the dominant
  event type (client pacing, OSS idle waits, OST completion checks).  After
  dispatch, a timeout that provably has no remaining references outside the
  engine (checked via ``sys.getrefcount``) is recycled through a per-
  environment free list, so steady-state simulation allocates almost no
  event objects.  ``Environment(reuse_timeouts=False)`` disables reuse; the
  determinism suite asserts identical event traces either way.
"""

from __future__ import annotations

import heapq
from heapq import heappush
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import Event, Timeout
from repro.sim.process import Process

__all__ = ["Environment", "SimulationError", "PRIORITY_URGENT", "PRIORITY_NORMAL"]

#: Priority for engine-internal wakeups that must precede user events.
PRIORITY_URGENT = 0
#: Default priority for ordinary events.
PRIORITY_NORMAL = 1

#: Upper bound on recycled Timeout objects kept per environment.  Enough to
#: cover every concurrently pending timeout of a large cluster while keeping
#: a drained environment's footprint bounded.
_FREE_LIST_CAP = 4096


class SimulationError(RuntimeError):
    """Raised for engine misuse (e.g. running a finished simulation)."""


class Environment:
    """Execution environment for a single simulation run.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock, in seconds.
    reuse_timeouts:
        Recycle dispatched :class:`Timeout` objects through a free list
        (default).  Reuse is gated on a refcount check, so a timeout anyone
        still holds a reference to is never recycled; disabling exists for
        the determinism tests, which assert traces match with it on and off.

    Notes
    -----
    All component models in this repository (clients, NRS, OSTs, the
    bandwidth-mechanism handles) take an ``Environment`` as their first
    constructor argument and interact exclusively through it, which keeps
    every experiment single-threaded and bit-for-bit reproducible for a
    given seed.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_eid",
        "_active_process",
        "_dispatched",
        "_free_timeouts",
        "_reuse_timeouts",
        "trace",
    )

    def __init__(
        self, initial_time: float = 0.0, reuse_timeouts: bool = True
    ) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self._dispatched = 0
        self._free_timeouts: List[Timeout] = []
        self._reuse_timeouts = bool(reuse_timeouts)
        #: Optional dispatch hook ``trace(time, priority, seq, event)`` —
        #: invoked for every dispatched event, in dispatch order.  Used by
        #: the determinism tests; leave ``None`` in production runs.
        self.trace: Optional[Callable[[float, int, int, Event], None]] = None

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def dispatched(self) -> int:
        """Total events dispatched so far (skipped cancelled entries do not
        count)."""
        return self._dispatched

    @property
    def scheduled(self) -> int:
        """Total events scheduled so far (heap pushes).

        The benchmark harness's events/sec numerator: the determinism
        invariant fixes the schedule sequence for a given workload, so this
        count is identical across engine versions and the events/sec ratio
        between two engines equals their wall-clock ratio.
        """
        return self._eid

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event` bound to this env."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now.

        Serves from the free list when a recycled timeout is available;
        otherwise constructs a fresh :class:`Timeout`.
        """
        free = self._free_timeouts
        if free:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay!r}")
            timeout = free.pop()
            timeout._value = value
            timeout._defused = False
            timeout._cancelled = False
            timeout.delay = delay = float(delay)
            self._eid = eid = self._eid + 1
            heappush(self._queue, (self._now + delay, PRIORITY_NORMAL, eid, timeout))
            return timeout
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Spawn ``generator`` as a simulation process and return its handle."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.events import AnyOf

        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.events import AllOf

        return AllOf(self, list(events))

    # -- scheduling ----------------------------------------------------------
    def _schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Place a triggered event on the heap ``delay`` seconds from now."""
        self._eid += 1
        heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled entry, or ``inf`` when idle.

        May report a lazily-cancelled entry's time; the run loops treat that
        conservatively (they pop it, see it is dead, and move on).
        """
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Dispatch exactly one live event, advancing the clock to its time.

        Lazily-cancelled entries surfacing at the heap top are discarded
        without counting as the dispatched event.
        """
        queue = self._queue
        while queue:
            when, priority, seq, event = heapq.heappop(queue)
            callbacks = event.callbacks
            if callbacks is None:
                continue  # lazily cancelled; never dispatched
            self._dispatch(when, priority, seq, event, callbacks)
            return
        raise SimulationError("step() on an empty event queue")

    def _dispatch(self, when, priority, seq, event, callbacks) -> None:
        """Deliver one popped event (the non-inlined, single-step path)."""
        self._now = when
        if self.trace is not None:
            self.trace(when, priority, seq, event)
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        self._dispatched += 1
        if not event._ok and not event._defused:
            # A failure nobody handled: surface it rather than losing it.
            raise event._value
        if (
            self._reuse_timeouts
            and type(event) is Timeout
            # Only the dispatch loop's local and getrefcount's argument
            # reference the object: nothing in user code can observe reuse.
            and getrefcount(event) == 3
            and len(self._free_timeouts) < _FREE_LIST_CAP
        ):
            callbacks.clear()
            event.callbacks = callbacks
            self._free_timeouts.append(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until ``until`` (a time or an event) or until no events remain.

        Returns the value of ``until`` when it is an event; otherwise ``None``.

        Notes
        -----
        This is the engine's hot loop: the stop condition is resolved once,
        then one of three specialized dispatch loops runs with everything —
        heap, pop, trace hook, free list — held in locals.  Each loop
        preserves the exact ``(time, priority, seq)`` total order and the
        exact per-event semantics of :meth:`step`.
        """
        stop_at: Optional[float] = None
        stop_event: Optional[Event] = None

        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"run(until={stop_at}) is in the past (now={self._now})"
                )

        if self.trace is not None:
            # Traced runs take the readable one-event-at-a-time path.
            return self._run_traced(stop_at, stop_event)

        queue = self._queue
        pop = heapq.heappop
        reuse = self._reuse_timeouts
        free = self._free_timeouts
        cap = _FREE_LIST_CAP
        timeout_type = Timeout
        refcount = getrefcount
        dispatched = self._dispatched
        try:
            if stop_event is not None:
                while queue and stop_event.callbacks is not None:
                    when, _priority, _seq, event = pop(queue)
                    callbacks = event.callbacks
                    if callbacks is None:
                        # Lazily-cancelled: skip, but recycle the carcass.
                        if (
                            reuse
                            and type(event) is timeout_type
                            and refcount(event) == 2
                            and len(free) < cap
                        ):
                            event.callbacks = []
                            free.append(event)
                        continue
                    self._now = when
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    dispatched += 1
                    if not event._ok and not event._defused:
                        raise event._value
                    if (
                        reuse
                        and type(event) is timeout_type
                        and refcount(event) == 2
                        and len(free) < cap
                    ):
                        # Park the emptied callback list on the recycled
                        # instance so reuse skips the list allocation too.
                        callbacks.clear()
                        event.callbacks = callbacks
                        free.append(event)
            elif stop_at is not None:
                while True:
                    if not queue or queue[0][0] > stop_at:
                        self._now = stop_at
                        break
                    when, _priority, _seq, event = pop(queue)
                    callbacks = event.callbacks
                    if callbacks is None:
                        # Lazily-cancelled: skip, but recycle the carcass.
                        if (
                            reuse
                            and type(event) is timeout_type
                            and refcount(event) == 2
                            and len(free) < cap
                        ):
                            event.callbacks = []
                            free.append(event)
                        continue
                    self._now = when
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    dispatched += 1
                    if not event._ok and not event._defused:
                        raise event._value
                    if (
                        reuse
                        and type(event) is timeout_type
                        and refcount(event) == 2
                        and len(free) < cap
                    ):
                        # Park the emptied callback list on the recycled
                        # instance so reuse skips the list allocation too.
                        callbacks.clear()
                        event.callbacks = callbacks
                        free.append(event)
            else:
                while queue:
                    when, _priority, _seq, event = pop(queue)
                    callbacks = event.callbacks
                    if callbacks is None:
                        # Lazily-cancelled: skip, but recycle the carcass.
                        if (
                            reuse
                            and type(event) is timeout_type
                            and refcount(event) == 2
                            and len(free) < cap
                        ):
                            event.callbacks = []
                            free.append(event)
                        continue
                    self._now = when
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    dispatched += 1
                    if not event._ok and not event._defused:
                        raise event._value
                    if (
                        reuse
                        and type(event) is timeout_type
                        and refcount(event) == 2
                        and len(free) < cap
                    ):
                        # Park the emptied callback list on the recycled
                        # instance so reuse skips the list allocation too.
                        callbacks.clear()
                        event.callbacks = callbacks
                        free.append(event)
        finally:
            self._dispatched = dispatched

        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError(
                    "run() ran out of events before the condition triggered"
                )
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        return None

    def _run_traced(
        self, stop_at: Optional[float], stop_event: Optional[Event]
    ) -> Any:
        """The observable (hook-calling) run loop used when ``trace`` is set."""
        queue = self._queue
        while queue:
            if stop_event is not None and stop_event.callbacks is None:
                break
            if stop_at is not None and queue[0][0] > stop_at:
                self._now = stop_at
                break
            when, priority, seq, event = heapq.heappop(queue)
            callbacks = event.callbacks
            if callbacks is None:
                continue
            self._dispatch(when, priority, seq, event, callbacks)
        else:
            if stop_at is not None:
                self._now = stop_at

        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError(
                    "run() ran out of events before the condition triggered"
                )
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Environment now={self._now!r} pending={len(self._queue)}>"
