"""The discrete-event simulation core.

:class:`Environment` owns the virtual clock and the event heap.  Time only
advances when :meth:`Environment.step` pops the next scheduled event; between
events the simulated world is frozen, which is what lets us reproduce the
paper's 100 ms control loop with perfect determinism.

Scheduling order is a total order over ``(time, priority, sequence)`` so two
events at the same instant are processed in FIFO creation order unless a
priority says otherwise — the same tiebreak real Lustre gets implicitly from
its work queues.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import Event, Timeout
from repro.sim.process import Process

__all__ = ["Environment", "SimulationError", "PRIORITY_URGENT", "PRIORITY_NORMAL"]

#: Priority for engine-internal wakeups that must precede user events.
PRIORITY_URGENT = 0
#: Default priority for ordinary events.
PRIORITY_NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for engine misuse (e.g. running a finished simulation)."""


class Environment:
    """Execution environment for a single simulation run.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock, in seconds.

    Notes
    -----
    All component models in this repository (clients, NRS, OSTs, the AdapTBF
    controller) take an ``Environment`` as their first constructor argument
    and interact exclusively through it, which keeps every experiment
    single-threaded and bit-for-bit reproducible for a given seed.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event` bound to this env."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Spawn ``generator`` as a simulation process and return its handle."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.events import AnyOf

        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.events import AllOf

        return AllOf(self, list(events))

    # -- scheduling ----------------------------------------------------------
    def _schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Place a triggered event on the heap ``delay`` seconds from now."""
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event, advancing the clock to its time."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _eid, event = heapq.heappop(self._queue)
        # The heap is append-only; time never moves backwards.
        assert when >= self._now, "event scheduled in the past"
        self._now = when

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failure nobody handled: surface it rather than losing it.
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until ``until`` (a time or an event) or until no events remain.

        Returns the value of ``until`` when it is an event; otherwise ``None``.
        """
        stop_at: Optional[float] = None
        stop_event: Optional[Event] = None

        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"run(until={stop_at}) is in the past (now={self._now})"
                )

        while self._queue:
            if stop_event is not None and stop_event.processed:
                break
            if stop_at is not None and self.peek() > stop_at:
                self._now = stop_at
                break
            self.step()
        else:
            # Queue drained: settle the clock on the horizon if one was given.
            if stop_at is not None:
                self._now = stop_at

        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError(
                    "run() ran out of events before the condition triggered"
                )
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Environment now={self._now!r} pending={len(self._queue)}>"
