"""The discrete-event simulation core.

:class:`Environment` owns the virtual clock and the event calendar.  Time
only advances when the engine pops the next scheduled event; between events
the simulated world is frozen, which is what lets us reproduce the paper's
100 ms control loop with perfect determinism.

Scheduling order is a total order over ``(time, priority, sequence)`` so two
events at the same instant are processed in FIFO creation order unless a
priority says otherwise — the same tiebreak real Lustre gets implicitly from
its work queues.  Determinism is the engine's invariant: every optimization
below preserves the exact ``(time, priority, seq)`` dispatch order, which is
verified by the event-trace tests in ``tests/sim/`` and by the byte-identical
fig3–fig9 outputs (see docs/performance.md).

Since PR 6 the calendar and dispatch loops live behind a pluggable **kernel
backend** seam (:mod:`repro.sim.backends`).  The environment still owns the
semantics — eid assignment, the dispatch contract, the ``trace`` hook — and
delegates storage and the inlined run loops to its backend:

* ``"heap"`` (default): the PR 5 kernel — bare ``(time, priority, seq,
  event)`` tuples on one ``heapq``, lazy cancellation, specialized run
  loops, and the refcount-gated timeout free list
  (``Environment(reuse_timeouts=False)`` disables reuse; the determinism
  suite asserts identical event traces either way).
* ``"array"``: a two-lane calendar (at-now FIFO + far heap) with batched
  timeout insertion and leaner loops; see :class:`repro.sim.backends.
  ArrayBackend` and docs/performance.md for when it wins.

Every scheduling site routes through ``env._push`` — the backend-supplied
insert callable — so backends fully control entry placement without the
event types knowing which kernel is active.
"""

from __future__ import annotations

from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional, Sequence, Tuple

from repro.sim.backends import (
    _FREE_LIST_CAP,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    KernelBackend,
    SimulationError,
    resolve_backend,
)
from repro.sim.events import Event, Timeout
from repro.sim.process import Process

__all__ = ["Environment", "SimulationError", "PRIORITY_URGENT", "PRIORITY_NORMAL"]


class Environment:
    """Execution environment for a single simulation run.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock, in seconds.
    reuse_timeouts:
        Recycle dispatched :class:`Timeout` objects through a free list
        (default).  Reuse is gated on a refcount check, so a timeout anyone
        still holds a reference to is never recycled; disabling exists for
        the determinism tests, which assert traces match with it on and off.
        (The array backend's fast loops skip recycling; the flag is still
        honored on the single-step path.)
    backend:
        Kernel backend selecting the calendar implementation: a registered
        name (``"heap"``, ``"array"``), a :class:`~repro.sim.backends.
        KernelBackend` subclass, or ``None`` for the default. All backends
        dispatch bit-identical ``(time, priority, seq, event)`` streams —
        the choice is purely a performance knob.

    Notes
    -----
    All component models in this repository (clients, NRS, OSTs, the
    bandwidth-mechanism handles) take an ``Environment`` as their first
    constructor argument and interact exclusively through it, which keeps
    every experiment single-threaded and bit-for-bit reproducible for a
    given seed.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_eid",
        "_active_process",
        "_dispatched",
        "_free_timeouts",
        "_reuse_timeouts",
        "_push",
        "_push_now",
        "kernel",
        "trace",
    )

    def __init__(
        self,
        initial_time: float = 0.0,
        reuse_timeouts: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self._dispatched = 0
        self._free_timeouts: List[Timeout] = []
        self._reuse_timeouts = bool(reuse_timeouts)
        #: The kernel backend owning calendar storage and the run loops.
        self.kernel: KernelBackend = resolve_backend(backend)(self)
        #: Backend-supplied insert callables; every scheduling site (including
        #: the event types in :mod:`repro.sim.events`) pushes through these.
        #: ``_push_now`` is reserved for entries statically known to be at
        #: the current instant at normal priority (``succeed``/``fail``).
        self._push = self.kernel.push
        self._push_now = self.kernel.push_now
        #: Optional dispatch hook ``trace(time, priority, seq, event)`` —
        #: invoked for every dispatched event, in dispatch order.  Used by
        #: the determinism tests; leave ``None`` in production runs.
        self.trace: Optional[Callable[[float, int, int, Event], None]] = None

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def backend(self) -> str:
        """Name of the active kernel backend."""
        return self.kernel.name

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def dispatched(self) -> int:
        """Total events dispatched so far (skipped cancelled entries do not
        count)."""
        return self._dispatched

    @property
    def scheduled(self) -> int:
        """Total events scheduled so far (calendar inserts).

        The benchmark harness's events/sec numerator: the determinism
        invariant fixes the schedule sequence for a given workload, so this
        count is identical across engine versions *and* backends, and the
        events/sec ratio between two engines equals their wall-clock ratio.
        """
        return self._eid

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event` bound to this env."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now.

        Serves from the free list when a recycled timeout is available;
        otherwise constructs a fresh :class:`Timeout`.
        """
        free = self._free_timeouts
        if free:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay!r}")
            timeout = free.pop()
            timeout._value = value
            timeout._defused = False
            timeout._cancelled = False
            timeout.delay = delay = float(delay)
            self._eid = eid = self._eid + 1
            self._push((self._now + delay, PRIORITY_NORMAL, eid, timeout))
            return timeout
        return Timeout(self, delay, value)

    def timeouts(self, delays: Sequence[float], value: Any = None) -> List[Timeout]:
        """Create one timeout per entry of ``delays``, in order.

        Semantically identical to ``[env.timeout(d, value) for d in delays]``
        — same eid assignment, same dispatch order — but backends may batch
        the calendar insertion (the array backend stages the block and
        restores the heap invariant once; see
        :meth:`repro.sim.backends.ArrayBackend.batch_timeouts`).
        """
        return self.kernel.batch_timeouts(delays, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Spawn ``generator`` as a simulation process and return its handle."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.events import AnyOf

        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.events import AllOf

        return AllOf(self, list(events))

    # -- scheduling ----------------------------------------------------------
    def _schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Place a triggered event on the calendar ``delay`` seconds from now."""
        self._eid += 1
        self._push((self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled entry, or ``inf`` when idle.

        May report a lazily-cancelled entry's time; the run loops treat that
        conservatively (they pop it, see it is dead, and move on).
        """
        return self.kernel.peek()

    def step(self) -> None:
        """Dispatch exactly one live event, advancing the clock to its time.

        Lazily-cancelled entries surfacing at the calendar head are discarded
        without counting as the dispatched event.
        """
        self.kernel.step()

    def _dispatch(self, when, priority, seq, event, callbacks) -> None:
        """Deliver one popped event (the non-inlined, single-step path)."""
        self._now = when
        if self.trace is not None:
            self.trace(when, priority, seq, event)
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        self._dispatched += 1
        if not event._ok and not event._defused:
            # A failure nobody handled: surface it rather than losing it.
            raise event._value
        if (
            self._reuse_timeouts
            and type(event) is Timeout
            # Only the dispatch loop's local and getrefcount's argument
            # reference the object: nothing in user code can observe reuse.
            and getrefcount(event) == 3
            and len(self._free_timeouts) < _FREE_LIST_CAP
        ):
            callbacks.clear()
            event.callbacks = callbacks
            self._free_timeouts.append(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until ``until`` (a time or an event) or until no events remain.

        Returns the value of ``until`` when it is an event; otherwise ``None``.

        Notes
        -----
        The stop condition is resolved once, then the kernel backend runs
        one of its specialized dispatch loops with everything — calendar,
        pop, trace hook, free list — held in locals.  Each loop preserves
        the exact ``(time, priority, seq)`` total order and the exact
        per-event semantics of :meth:`step`.
        """
        stop_at: Optional[float] = None
        stop_event: Optional[Event] = None

        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"run(until={stop_at}) is in the past (now={self._now})"
                )

        return self.kernel.run(stop_at, stop_event)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Environment now={self._now!r} backend={self.kernel.name!r} "
            f"pending={self.kernel.pending()}>"
        )
