"""Pluggable kernel backends for the discrete-event engine.

The :class:`~repro.sim.engine.Environment` owns the *semantics* of a run —
the clock, the ``(time, priority, seq)`` total order, event dispatch — while
a :class:`KernelBackend` owns the *mechanics*: how pending entries are
stored, how the next live entry is found, and how the inlined run loops are
shaped.  The split is the seam that lets alternative calendars ship without
touching model code: every backend must dispatch the exact same
``(time, priority, seq, event)`` stream for a given workload, which the
cross-backend differ (:mod:`repro.sim.tracediff`) and the parity tests in
``tests/sim/test_backends.py`` enforce.

Two backends ship:

``"heap"`` (default)
    The PR 5 kernel, unchanged: one ``heapq`` of bare
    ``(time, priority, seq, event)`` tuples plus the refcount-gated timeout
    free list.  Best general-purpose choice and the only backend exercised
    when numpy is absent *and* installed — it has no optional dependencies.

``"array"``
    A two-lane calendar tuned for the simulation's actual event mix, where
    over half of all scheduled entries are *immediate* (an ``Event.succeed``
    at the current instant: request arrivals, grant signals, condition
    triggers):

    * an **at-now FIFO lane** (``collections.deque``) absorbs entries
      scheduled for the current instant at normal priority.  Because the
      clock never moves backwards, the lane is sorted by construction and
      both ends are O(1) — those entries never pay the O(log n) sift of the
      far heap;
    * a **far heap lane** (``heapq``) holds everything else — true
      timeouts, urgent wakeups — exactly like the heap kernel;
    * **batched insertion** (:meth:`ArrayBackend.batch_timeouts`) stages a
      homogeneous block of timeouts as struct-of-arrays columns (the
      absolute-time column is computed in one vectorized ``now + delays``
      operation when numpy is available), then restores the heap invariant
      with a single O(n) ``heapify`` instead of n O(log n) pushes;
    * the run loops keep the heap kernel's refcount-gated timeout
      recycling — measured, recycling beats the allocation churn of a
      "leaner" loop on every timeout-heavy workload.

    Dispatch order is proven identical to the heap kernel: the FIFO lane
    only ever holds ``(now, PRIORITY_NORMAL, seq)`` entries for the current
    or earlier instants, its internal order is by construction the seq
    order, and each pop takes the true minimum of the two lane heads by
    full-tuple comparison.

numpy is optional (the ``repro[fast]`` extra).  When it is missing the
array backend still works — batch staging falls back to a plain Python
loop — and the heap backend is entirely numpy-free.
"""

from __future__ import annotations

import heapq
from collections import deque
from functools import partial
from heapq import heapify, heappush
from sys import getrefcount
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.sim.events import Event, Timeout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Environment

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when numpy is importable; the array backend vectorizes batch
#: staging only in that case and falls back to pure Python otherwise.
HAVE_NUMPY = _np is not None

__all__ = [
    "KernelBackend",
    "HeapBackend",
    "ArrayBackend",
    "SimulationError",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "HAVE_NUMPY",
    "DEFAULT_BACKEND",
    "available_backends",
    "register_backend",
    "resolve_backend",
]

#: Priority for engine-internal wakeups that must precede user events.
PRIORITY_URGENT = 0
#: Default priority for ordinary events.
PRIORITY_NORMAL = 1

#: Upper bound on recycled Timeout objects kept per environment.  Enough to
#: cover every concurrently pending timeout of a large cluster while keeping
#: a drained environment's footprint bounded.
_FREE_LIST_CAP = 4096

#: Minimum batch size before :meth:`ArrayBackend.batch_timeouts` vectorizes
#: the absolute-time column through numpy; below this the conversion
#: overhead exceeds the win.
_VECTORIZE_MIN = 32


class SimulationError(RuntimeError):
    """Raised for engine misuse (e.g. running a finished simulation)."""


def _finish_run(stop_event: Optional[Event]) -> Any:
    """Shared run() epilogue: resolve an ``until=event`` stop condition."""
    if stop_event is not None:
        if not stop_event.processed:
            raise SimulationError(
                "run() ran out of events before the condition triggered"
            )
        if not stop_event.ok:
            raise stop_event.value
        return stop_event.value
    return None


class KernelBackend:
    """Interface between :class:`Environment` and an event calendar.

    A backend is constructed with its owning environment and then owns the
    storage and run loops.  The contract every implementation must honor:

    * entries are ``(time, priority, seq, event)`` tuples and dispatch must
      follow the total order over ``(time, priority, seq)``;
    * lazily-cancelled entries (``event.callbacks is None``) are skipped
      when they surface and never count as dispatched;
    * per-event semantics match :meth:`Environment.step` exactly.

    Backends expose two insert callables as instance attributes rather than
    methods so each can install the fastest callable available (C-level
    ``functools.partial``/bound builtins, no Python frame per insert):

    ``push``
        The general entry point — any ``(time, priority, seq, event)``.
        The environment aliases it as ``env._push``; ``_schedule`` and the
        timeout paths route through it.
    ``push_now``
        Specialized for entries known *statically* to be at the current
        instant with :data:`PRIORITY_NORMAL` — exactly what
        ``Event.succeed``/``Event.fail`` produce.  Aliased as
        ``env._push_now``; backends with an at-now fast lane (the array
        kernel's FIFO) bind it to that lane's append.
    """

    __slots__ = ("env", "push", "push_now")

    #: Registry key; subclasses override.
    name = "abstract"
    #: True when the backend wants vectorized token-bucket banks
    #: (:class:`repro.lustre.bucket.BucketArray`) wired into schedulers.
    vectorized_buckets = False

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.push: Callable[[Tuple[float, int, int, Event]], None]
        self.push_now: Callable[[Tuple[float, int, int, Event]], None]

    # -- calendar queries ---------------------------------------------------
    def peek(self) -> float:
        """Time of the next entry (possibly cancelled), or ``inf``."""
        raise NotImplementedError

    def pending(self) -> int:
        """Number of stored entries, including lazily-cancelled ones."""
        raise NotImplementedError

    # -- dispatch -----------------------------------------------------------
    def step(self) -> None:
        """Dispatch exactly one live event (see :meth:`Environment.step`)."""
        raise NotImplementedError

    def run(self, stop_at: Optional[float], stop_event: Optional[Event]) -> Any:
        """Run to the resolved stop condition (see :meth:`Environment.run`)."""
        raise NotImplementedError

    # -- bulk scheduling ----------------------------------------------------
    def batch_timeouts(self, delays: Sequence[float], value: Any = None) -> List[Timeout]:
        """Create one timeout per delay; backends may batch the insertion.

        The default implementation simply loops ``env.timeout`` — semantics
        (eid assignment order, dispatch order) are identical either way.
        """
        env = self.env
        timeout = env.timeout
        return [timeout(delay, value) for delay in delays]


class HeapBackend(KernelBackend):
    """The default kernel: a single binary heap of bare entry tuples.

    This is the PR 5 engine verbatim — the three specialized run loops, the
    lazy-cancellation skip, and the refcount-gated timeout free list moved
    behind the backend seam without any behavioral change.  ``push`` is a
    ``functools.partial`` of the C ``heappush`` so routing every scheduling
    site through ``env._push`` costs nothing over the old hardwired calls.
    """

    __slots__ = ()

    name = "heap"

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.push = self.push_now = partial(heappush, env._queue)

    def peek(self) -> float:
        queue = self.env._queue
        return queue[0][0] if queue else float("inf")

    def pending(self) -> int:
        return len(self.env._queue)

    def step(self) -> None:
        env = self.env
        queue = env._queue
        while queue:
            when, priority, seq, event = heapq.heappop(queue)
            callbacks = event.callbacks
            if callbacks is None:
                continue  # lazily cancelled; never dispatched
            env._dispatch(when, priority, seq, event, callbacks)
            return
        raise SimulationError("step() on an empty event queue")

    def run(self, stop_at: Optional[float], stop_event: Optional[Event]) -> Any:
        env = self.env
        if env.trace is not None:
            # Traced runs take the readable one-event-at-a-time path.
            return self._run_traced(stop_at, stop_event)

        queue = env._queue
        pop = heapq.heappop
        reuse = env._reuse_timeouts
        free = env._free_timeouts
        cap = _FREE_LIST_CAP
        timeout_type = Timeout
        refcount = getrefcount
        dispatched = env._dispatched
        try:
            if stop_event is not None:
                while queue and stop_event.callbacks is not None:
                    when, _priority, _seq, event = pop(queue)
                    callbacks = event.callbacks
                    if callbacks is None:
                        # Lazily-cancelled: skip, but recycle the carcass.
                        if (
                            reuse
                            and type(event) is timeout_type
                            and refcount(event) == 2
                            and len(free) < cap
                        ):
                            event.callbacks = []
                            free.append(event)
                        continue
                    env._now = when
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    dispatched += 1
                    if not event._ok and not event._defused:
                        raise event._value
                    if (
                        reuse
                        and type(event) is timeout_type
                        and refcount(event) == 2
                        and len(free) < cap
                    ):
                        # Park the emptied callback list on the recycled
                        # instance so reuse skips the list allocation too.
                        callbacks.clear()
                        event.callbacks = callbacks
                        free.append(event)
            elif stop_at is not None:
                while True:
                    if not queue or queue[0][0] > stop_at:
                        env._now = stop_at
                        break
                    when, _priority, _seq, event = pop(queue)
                    callbacks = event.callbacks
                    if callbacks is None:
                        # Lazily-cancelled: skip, but recycle the carcass.
                        if (
                            reuse
                            and type(event) is timeout_type
                            and refcount(event) == 2
                            and len(free) < cap
                        ):
                            event.callbacks = []
                            free.append(event)
                        continue
                    env._now = when
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    dispatched += 1
                    if not event._ok and not event._defused:
                        raise event._value
                    if (
                        reuse
                        and type(event) is timeout_type
                        and refcount(event) == 2
                        and len(free) < cap
                    ):
                        # Park the emptied callback list on the recycled
                        # instance so reuse skips the list allocation too.
                        callbacks.clear()
                        event.callbacks = callbacks
                        free.append(event)
            else:
                while queue:
                    when, _priority, _seq, event = pop(queue)
                    callbacks = event.callbacks
                    if callbacks is None:
                        # Lazily-cancelled: skip, but recycle the carcass.
                        if (
                            reuse
                            and type(event) is timeout_type
                            and refcount(event) == 2
                            and len(free) < cap
                        ):
                            event.callbacks = []
                            free.append(event)
                        continue
                    env._now = when
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    dispatched += 1
                    if not event._ok and not event._defused:
                        raise event._value
                    if (
                        reuse
                        and type(event) is timeout_type
                        and refcount(event) == 2
                        and len(free) < cap
                    ):
                        # Park the emptied callback list on the recycled
                        # instance so reuse skips the list allocation too.
                        callbacks.clear()
                        event.callbacks = callbacks
                        free.append(event)
        finally:
            env._dispatched = dispatched

        return _finish_run(stop_event)

    def _run_traced(
        self, stop_at: Optional[float], stop_event: Optional[Event]
    ) -> Any:
        """The observable (hook-calling) run loop used when ``trace`` is set."""
        env = self.env
        queue = env._queue
        while queue:
            if stop_event is not None and stop_event.callbacks is None:
                break
            if stop_at is not None and queue[0][0] > stop_at:
                env._now = stop_at
                break
            when, priority, seq, event = heapq.heappop(queue)
            callbacks = event.callbacks
            if callbacks is None:
                continue
            env._dispatch(when, priority, seq, event, callbacks)
        else:
            if stop_at is not None:
                env._now = stop_at

        return _finish_run(stop_event)


class ArrayBackend(KernelBackend):
    """Two-lane calendar: at-now FIFO deque + far heap, with batch staging.

    Lane discipline (the correctness core — see the module docstring):

    * ``push_now`` — bound to the FIFO deque's ``append`` — receives only
      entries statically known to be at the current instant at
      :data:`PRIORITY_NORMAL` (``Event.succeed``/``fail``); ``push`` — a
      C-level ``partial(heappush, heap)`` identical to the heap kernel's —
      receives everything else (timeouts, urgent wakeups).  Both inserts
      run without a Python frame, so scheduling costs no more than under
      the heap kernel.
    * Because ``now`` is non-decreasing and seq is strictly increasing, the
      FIFO lane is always internally sorted by ``(time, priority, seq)``.
    * Every pop compares the two lane heads with a full-tuple comparison,
      so the dispatched stream is the exact global minimum each time.
      (An at-now entry routed through the *general* push lands on the heap
      lane; that is equally correct — only the FIFO lane has a discipline
      to maintain.)

    The loops keep the heap kernel's refcount-gated timeout recycling —
    measured on the timer-wheel micro bench, recycling beats allocation
    churn by ~1.5x, so "leaner loops without the free list" lost on every
    timeout-heavy workload and was dropped.
    """

    __slots__ = ("fifo",)

    name = "array"
    vectorized_buckets = True

    def __init__(self, env: "Environment") -> None:
        self.env = env
        # The far lane reuses env._queue so introspection (repr, debuggers)
        # sees the same structure the heap kernel exposes.
        fifo = self.fifo = deque()
        self.push = partial(heappush, env._queue)
        self.push_now = fifo.append

    def peek(self) -> float:
        fifo = self.fifo
        heap = self.env._queue
        if fifo:
            if heap and heap[0] < fifo[0]:
                return heap[0][0]
            return fifo[0][0]
        return heap[0][0] if heap else float("inf")

    def pending(self) -> int:
        return len(self.fifo) + len(self.env._queue)

    def step(self) -> None:
        env = self.env
        fifo = self.fifo
        heap = env._queue
        pop = heapq.heappop
        while True:
            if fifo:
                if heap and heap[0] < fifo[0]:
                    when, priority, seq, event = pop(heap)
                else:
                    when, priority, seq, event = fifo.popleft()
            elif heap:
                when, priority, seq, event = pop(heap)
            else:
                raise SimulationError("step() on an empty event queue")
            callbacks = event.callbacks
            if callbacks is None:
                continue  # lazily cancelled; never dispatched
            env._dispatch(when, priority, seq, event, callbacks)
            return

    def run(self, stop_at: Optional[float], stop_event: Optional[Event]) -> Any:
        env = self.env
        if env.trace is not None:
            return self._run_traced(stop_at, stop_event)

        fifo = self.fifo
        heap = env._queue
        pop = heapq.heappop
        popleft = fifo.popleft
        reuse = env._reuse_timeouts
        free = env._free_timeouts
        cap = _FREE_LIST_CAP
        timeout_type = Timeout
        refcount = getrefcount
        dispatched = env._dispatched
        try:
            if stop_event is not None:
                while stop_event.callbacks is not None:
                    if fifo:
                        if heap and heap[0] < fifo[0]:
                            when, _priority, _seq, event = pop(heap)
                        else:
                            when, _priority, _seq, event = popleft()
                    elif heap:
                        when, _priority, _seq, event = pop(heap)
                    else:
                        break
                    callbacks = event.callbacks
                    if callbacks is None:
                        # Lazily-cancelled: skip, but recycle the carcass.
                        if (
                            reuse
                            and type(event) is timeout_type
                            and refcount(event) == 2
                            and len(free) < cap
                        ):
                            event.callbacks = []
                            free.append(event)
                        continue
                    env._now = when
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    dispatched += 1
                    if not event._ok and not event._defused:
                        raise event._value
                    if (
                        reuse
                        and type(event) is timeout_type
                        and refcount(event) == 2
                        and len(free) < cap
                    ):
                        # Park the emptied callback list on the recycled
                        # instance so reuse skips the list allocation too.
                        callbacks.clear()
                        event.callbacks = callbacks
                        free.append(event)
            elif stop_at is not None:
                while True:
                    if fifo:
                        # FIFO entries are at (or before) now <= stop_at, so
                        # only the heap head can overshoot the horizon — and
                        # when it wins the comparison it is <= the FIFO head.
                        if heap and heap[0] < fifo[0]:
                            when, _priority, _seq, event = pop(heap)
                        else:
                            when, _priority, _seq, event = popleft()
                    else:
                        if not heap or heap[0][0] > stop_at:
                            env._now = stop_at
                            break
                        when, _priority, _seq, event = pop(heap)
                    callbacks = event.callbacks
                    if callbacks is None:
                        # Lazily-cancelled: skip, but recycle the carcass.
                        if (
                            reuse
                            and type(event) is timeout_type
                            and refcount(event) == 2
                            and len(free) < cap
                        ):
                            event.callbacks = []
                            free.append(event)
                        continue
                    env._now = when
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    dispatched += 1
                    if not event._ok and not event._defused:
                        raise event._value
                    if (
                        reuse
                        and type(event) is timeout_type
                        and refcount(event) == 2
                        and len(free) < cap
                    ):
                        # Park the emptied callback list on the recycled
                        # instance so reuse skips the list allocation too.
                        callbacks.clear()
                        event.callbacks = callbacks
                        free.append(event)
            else:
                while True:
                    if fifo:
                        if heap and heap[0] < fifo[0]:
                            when, _priority, _seq, event = pop(heap)
                        else:
                            when, _priority, _seq, event = popleft()
                    elif heap:
                        when, _priority, _seq, event = pop(heap)
                    else:
                        break
                    callbacks = event.callbacks
                    if callbacks is None:
                        # Lazily-cancelled: skip, but recycle the carcass.
                        if (
                            reuse
                            and type(event) is timeout_type
                            and refcount(event) == 2
                            and len(free) < cap
                        ):
                            event.callbacks = []
                            free.append(event)
                        continue
                    env._now = when
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    dispatched += 1
                    if not event._ok and not event._defused:
                        raise event._value
                    if (
                        reuse
                        and type(event) is timeout_type
                        and refcount(event) == 2
                        and len(free) < cap
                    ):
                        # Park the emptied callback list on the recycled
                        # instance so reuse skips the list allocation too.
                        callbacks.clear()
                        event.callbacks = callbacks
                        free.append(event)
        finally:
            env._dispatched = dispatched

        return _finish_run(stop_event)

    def _run_traced(
        self, stop_at: Optional[float], stop_event: Optional[Event]
    ) -> Any:
        env = self.env
        fifo = self.fifo
        heap = env._queue
        while True:
            if stop_event is not None and stop_event.callbacks is None:
                break
            if fifo:
                if heap and heap[0] < fifo[0]:
                    when, priority, seq, event = heapq.heappop(heap)
                else:
                    when, priority, seq, event = fifo.popleft()
            else:
                if not heap:
                    if stop_at is not None:
                        env._now = stop_at
                    break
                if stop_at is not None and heap[0][0] > stop_at:
                    env._now = stop_at
                    break
                when, priority, seq, event = heapq.heappop(heap)
            callbacks = event.callbacks
            if callbacks is None:
                continue
            env._dispatch(when, priority, seq, event, callbacks)

        return _finish_run(stop_event)

    def batch_timeouts(self, delays: Sequence[float], value: Any = None) -> List[Timeout]:
        """Create timeouts for a homogeneous block of delays in one pass.

        The absolute-time column is computed as a single vectorized
        ``now + delays`` when numpy is available and the block is large
        enough to pay for the conversion; scalar and vector float64
        addition round identically, so the resulting times are bit-equal
        to the one-at-a-time path.  All staged entries go to the far lane
        (any lane assignment is correct; only the FIFO lane has a
        discipline to maintain) and the heap invariant is restored with a
        single ``heapify`` when that is cheaper than individual pushes.
        """
        env = self.env
        now = env._now
        if _np is not None and len(delays) >= _VECTORIZE_MIN:
            column = _np.asarray(delays, dtype=_np.float64)
            if column.size and float(column.min()) < 0:
                raise ValueError("negative timeout delay in batch")
            delay_list = column.tolist()
            time_list = (now + column).tolist()
        else:
            delay_list = [float(delay) for delay in delays]
            for delay in delay_list:
                if delay < 0:
                    raise ValueError(f"negative timeout delay: {delay!r}")
            time_list = [now + delay for delay in delay_list]

        eid = env._eid
        timeouts: List[Timeout] = []
        append = timeouts.append
        entries: List[Tuple[float, int, int, Timeout]] = []
        stage = entries.append
        new = Timeout.__new__
        timeout_type = Timeout
        for delay, when in zip(delay_list, time_list):
            timeout = new(timeout_type)
            timeout.env = env
            timeout.callbacks = []
            timeout._value = value
            timeout._ok = True
            timeout._defused = False
            timeout._cancelled = False
            timeout.delay = delay
            eid += 1
            stage((when, PRIORITY_NORMAL, eid, timeout))
            append(timeout)
        env._eid = eid

        heap = env._queue
        if len(entries) > 8 and len(entries) * 4 > len(heap):
            heap.extend(entries)
            heapify(heap)
        else:
            for entry in entries:
                heappush(heap, entry)
        return timeouts


#: Name → backend class.  Extendable via :func:`register_backend`.
BACKENDS: Dict[str, Type[KernelBackend]] = {
    HeapBackend.name: HeapBackend,
    ArrayBackend.name: ArrayBackend,
}

#: Backend used when ``Environment(backend=None)``.
DEFAULT_BACKEND = "heap"


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, default first."""
    names = sorted(BACKENDS)
    names.remove(DEFAULT_BACKEND)
    return (DEFAULT_BACKEND, *names)


def register_backend(name: str, backend: Type[KernelBackend]) -> None:
    """Register a kernel backend class under ``name``.

    Re-registering an existing name raises — backends are part of the
    reproducibility contract, so silently swapping one out is a bug.
    """
    if name in BACKENDS:
        raise ValueError(f"kernel backend {name!r} already registered")
    if not (isinstance(backend, type) and issubclass(backend, KernelBackend)):
        raise TypeError(f"backend must be a KernelBackend subclass, got {backend!r}")
    BACKENDS[name] = backend


def resolve_backend(backend: Optional[str | Type[KernelBackend]]) -> Type[KernelBackend]:
    """Resolve a backend selector (name, class, or None) to a class."""
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, type) and issubclass(backend, KernelBackend):
        return backend
    try:
        return BACKENDS[backend]
    except (KeyError, TypeError):
        known = ", ".join(available_backends())
        raise ValueError(
            f"unknown kernel backend {backend!r}; available: {known}"
        ) from None
