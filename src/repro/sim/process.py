"""Generator-based simulation processes.

A :class:`Process` drives a Python generator: each ``yield`` hands the engine
an :class:`~repro.sim.events.Event` to wait on; when that event is processed
the generator is resumed with the event's value (or the event's exception is
thrown into it).  A process is itself an event that triggers when the
generator returns, so processes can wait on each other.

``_resume`` is on the dispatch hot path (it is the callback attached to
every event a process waits on), so it caches the generator's bound
``send``/``throw`` and its own bound callback once at construction and
registers waits by appending to the target's callback list directly instead
of re-deriving bound methods per yield.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["Process"]


class Process(Event):
    """A running simulation process.

    Parameters
    ----------
    env:
        Owning environment.
    generator:
        The process body.  Must be a generator (i.e. contain ``yield``).
    name:
        Optional label used in diagnostics.
    """

    __slots__ = ("_generator", "_target", "name", "_send", "_throw", "_resume_cb")

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        self._resume_cb = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        #: Event this process is currently waiting on (None once finished).
        self._target: Optional[Event] = None

        # Kick the process off via an immediately-triggered bootstrap event.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume_cb)
        bootstrap._ok = True
        bootstrap._value = None
        env._schedule(bootstrap, priority=0)
        self._target = bootstrap

    # -- public API ---------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently suspended on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process raises ``RuntimeError``; interrupting
        a process that is about to be resumed is handled gracefully (the
        interrupt wins).
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has terminated; cannot interrupt")

        # Deliver asynchronously so the interrupter's own execution finishes
        # first — mirrors signal semantics and keeps ordering deterministic.
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._defused = True
        wakeup.callbacks.append(self._resume_cb)
        self.env._schedule(wakeup, priority=0)

        # Detach from whatever we were waiting on so the original event's
        # later arrival does not resume us twice.
        if self._target is not None and self._target.callbacks is not None:
            self._target.remove_callback(self._resume_cb)
        self._target = None

    def kill(self) -> None:
        """Terminate the process cleanly at the current time.

        Unlike :meth:`interrupt`, which throws into the generator and lets
        it react, ``kill`` closes the generator outright and *succeeds* the
        process event — so composites waiting on many processes (a run's
        ``all_clients_done``) see an orderly early exit, not a failure.
        The fault axis's client-churn "leave" is the canonical caller:
        whatever events the victim was awaiting keep their own lifecycle
        (they fire later with no waiter attached), so the dispatch order
        of everything else is untouched.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has terminated; cannot kill")
        if self._target is not None and self._target.callbacks is not None:
            self._target.remove_callback(self._resume_cb)
        self._target = None
        self._generator.close()
        self.succeed(None)

    # -- engine plumbing ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        send = self._send
        try:
            while True:
                if event._ok:
                    try:
                        next_target = send(event._value)
                    except StopIteration as stop:
                        self._finish(value=stop.value)
                        return
                    except BaseException as exc:
                        self._finish(error=exc)
                        return
                else:
                    # The awaited event failed: raise inside the process.
                    event.defused()
                    try:
                        next_target = self._throw(event._value)
                    except StopIteration as stop:
                        self._finish(value=stop.value)
                        return
                    except BaseException as exc:
                        self._finish(error=exc)
                        return

                if not isinstance(next_target, Event):
                    error = TypeError(
                        f"process {self.name!r} yielded {next_target!r}; "
                        "expected an Event"
                    )
                    self._finish(error=error)
                    return
                callbacks = next_target.callbacks
                if callbacks is None:
                    # Already done: loop immediately with its outcome.
                    event = next_target
                    continue
                callbacks.append(self._resume_cb)
                self._target = next_target
                return
        finally:
            env._active_process = None

    def _finish(
        self, value: Any = None, error: Optional[BaseException] = None
    ) -> None:
        self._target = None
        if error is not None:
            self.fail(error)
        else:
            self.succeed(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
