"""Discrete-event simulation engine.

This subpackage is the execution substrate for the whole reproduction: the
simulated Lustre data path (:mod:`repro.lustre`), the synthetic workloads
(:mod:`repro.workloads`) and the AdapTBF control loop (:mod:`repro.core`) all
run as cooperating processes on a single :class:`~repro.sim.engine.Environment`.

The design follows the classic process-interaction style (as popularised by
SimPy): simulation processes are Python generators that ``yield`` events; the
environment advances a virtual clock from event to event, so a multi-hour
storage experiment executes in milliseconds of wall time while preserving the
exact interleaving semantics of the real system.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def proc(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(proc(env, "b", 2.0))
>>> _ = env.process(proc(env, "a", 1.0))
>>> env.run()
>>> log
[(1.0, 'a'), (2.0, 'b')]
"""

from repro.sim.backends import (
    HAVE_NUMPY,
    ArrayBackend,
    HeapBackend,
    KernelBackend,
    available_backends,
    register_backend,
)
from repro.sim.engine import Environment, SimulationError
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
)
from repro.sim.process import Process
from repro.sim.rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "ArrayBackend",
    "Environment",
    "Event",
    "HAVE_NUMPY",
    "HeapBackend",
    "Interrupt",
    "KernelBackend",
    "Process",
    "RngStreams",
    "SimulationError",
    "Timeout",
    "available_backends",
    "register_backend",
]
