"""Named factory registries (scenarios, campaigns, mechanisms, ...).

*Factories* — callables taking keyword parameters and returning a built
object — are registered by name so the CLI (and tests, sweeps, future
sharded runners) can build anything from a string plus ``k=v`` overrides::

    @REGISTRY.register("quickstart", description="2 jobs, 1 OST")
    def _quickstart(file_mib: float = 256.0, ...) -> ScenarioSpec: ...

    spec = REGISTRY.build("quickstart", file_mib=64)

Factory keyword defaults double as the parameter schema: ``describe``
reports them, and :meth:`FactoryRegistry.coerce` converts CLI strings to
each default's type.  Per-parameter documentation is *also* part of the
schema: a numpy-style ``Parameters`` section in the factory's docstring is
parsed at registration time into :attr:`RegisteredFactory.param_docs`, so
``describe`` emits one maintained-in-one-place doc line per knob instead of
hand-written help strings drifting from the signature.

:class:`FactoryRegistry` is the generic machinery, deliberately free of any
domain imports so every layer can build on it:
:class:`~repro.scenarios.registry.ScenarioRegistry` specializes it for
``ScenarioSpec`` factories, :class:`~repro.campaigns.registry.CampaignRegistry`
for parameter-sweep campaigns, and
:class:`~repro.core.mechanism.MechanismRegistry` for bandwidth-control
mechanisms.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

__all__ = [
    "RegisteredFactory",
    "FactoryRegistry",
    "normalize_name",
    "parse_param_docs",
]


@dataclass(frozen=True)
class RegisteredFactory:
    """One registry entry: the factory plus its introspected schema."""

    name: str
    factory: Callable[..., Any]
    description: str
    #: Keyword parameters the factory accepts, with their defaults.
    params: Mapping[str, Any]
    #: What the factory builds ("scenario", "campaign", ...); used in errors.
    kind: str = "scenario"
    #: Per-parameter documentation parsed from the factory docstring's
    #: numpy-style ``Parameters`` section (empty for undocumented knobs).
    param_docs: Mapping[str, str] = field(default_factory=dict)

    def build(self, **overrides) -> Any:
        unknown = set(overrides) - set(self.params)
        if unknown:
            raise ValueError(
                f"{self.kind} {self.name!r} has no parameter(s) "
                f"{sorted(unknown)}; accepted: {sorted(self.params)}"
            )
        return self.factory(**overrides)


def normalize_name(name: str) -> str:
    """Canonical registry key: lower-case, dashes for underscores."""
    return str(name).strip().lower().replace("_", "-")


def parse_param_docs(doc: Optional[str]) -> Dict[str, str]:
    """Extract ``{parameter: first doc line}`` from a numpy-style docstring.

    Looks for a ``Parameters`` section header (underlined with dashes) and
    reads each ``name:`` / ``name :`` entry's indented description,
    collapsing it to a single line.  Anything unparsable simply yields no
    docs — documentation is additive, never load-bearing.
    """
    if not doc:
        return {}
    lines = doc.split("\n")
    docs: Dict[str, str] = {}
    current: Optional[str] = None
    buffer: List[str] = []

    def _flush() -> None:
        nonlocal current, buffer
        if current is not None and buffer:
            docs[current] = " ".join(buffer)
        current, buffer = None, []

    def _is_rule(text: str) -> bool:
        return bool(text) and set(text) == {"-"}

    # Locate the "Parameters" header (next line is a dash rule).
    start = None
    for index in range(len(lines) - 1):
        if lines[index].strip() == "Parameters" and _is_rule(lines[index + 1].strip()):
            start = index + 2
            break
    if start is None:
        return {}

    for index in range(start, len(lines)):
        line = lines[index]
        stripped = line.strip()
        if not stripped:
            continue
        next_stripped = (
            lines[index + 1].strip() if index + 1 < len(lines) else ""
        )
        if _is_rule(next_stripped):
            break  # next section header ("Returns", "Example", ...)
        indent = len(line) - len(line.lstrip())
        # An entry line: `name:` or `name : type` at the section margin;
        # description lines are indented beneath their entry.
        head = stripped.split(":", 1)[0].strip()
        if (
            indent == 0
            and ":" in stripped
            and head.isidentifier()
            and (stripped.endswith(":") or " : " in stripped)
        ):
            _flush()
            current = head
        elif current is not None and indent > 0:
            buffer.append(stripped)
        else:
            break
    _flush()
    return docs


def _signature_params(
    factory: Callable[..., Any], kind: str
) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for param in inspect.signature(factory).parameters.values():
        if param.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        if param.default is inspect.Parameter.empty:
            raise ValueError(
                f"{kind} factory {factory.__name__!r}: parameter "
                f"{param.name!r} needs a default (the registry builds "
                f"{kind}s from keyword overrides only)"
            )
        params[param.name] = param.default
    return params


class FactoryRegistry:
    """Mutable name → factory mapping with validation and CLI coercion."""

    #: Override in subclasses; names the built object in error messages.
    kind = "factory"
    #: CLI flag ``describe`` tells users to override parameters with;
    #: subclasses with a dedicated flag (--mechanism-param,
    #: --workload-param) override it.
    override_flag = "--param"

    def __init__(self) -> None:
        self._entries: Dict[str, RegisteredFactory] = {}

    # -- registration ------------------------------------------------------
    def register(
        self,
        name: str,
        factory: Optional[Callable[..., Any]] = None,
        *,
        description: str = "",
        overwrite: bool = False,
    ):
        """Register ``factory`` under ``name``; usable as a decorator.

        Duplicate names are rejected unless ``overwrite=True`` — silent
        shadowing of an entry is almost always a bug in experiment code.
        """
        key = normalize_name(name)
        if not key:
            raise ValueError(f"{self.kind} name must be non-empty")

        def _register(fn: Callable[..., Any]):
            if key in self._entries and not overwrite:
                raise ValueError(f"{self.kind} {key!r} is already registered")
            doc = inspect.getdoc(fn)
            self._entries[key] = RegisteredFactory(
                name=key,
                factory=fn,
                description=description or (doc or "").split("\n")[0],
                params=_signature_params(fn, self.kind),
                kind=self.kind,
                param_docs=parse_param_docs(doc),
            )
            return fn

        if factory is not None:
            return _register(factory)
        return _register

    def unregister(self, name: str) -> None:
        self._entries.pop(normalize_name(name), None)

    # -- lookup ------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return normalize_name(name) in self._entries

    def names(self) -> List[str]:
        return sorted(self._entries)

    def get(self, name: str) -> RegisteredFactory:
        key = normalize_name(name)
        try:
            return self._entries[key]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered: {self.names()}"
            ) from None

    def build(self, name: str, **overrides) -> Any:
        """Materialize the named entry with parameter overrides."""
        return self.get(name).build(**overrides)

    def coerce(self, name: str, raw: Mapping[str, str]) -> Dict[str, Any]:
        """Convert CLI-style string parameters to the factory's types.

        Each value is parsed according to the type of the factory's default
        for that parameter (bool accepts ``1/0/true/false/yes/no``).
        """
        entry = self.get(name)
        coerced: Dict[str, Any] = {}
        for key, value in raw.items():
            if key not in entry.params:
                raise ValueError(
                    f"{self.kind} {entry.name!r} has no parameter {key!r}; "
                    f"accepted: {sorted(entry.params)}"
                )
            default = entry.params[key]
            coerced[key] = _coerce_value(key, value, default)
        return coerced

    def describe(self, name: str) -> str:
        """Entry description + parameter schema + what the defaults build."""
        entry = self.get(name)
        lines = [f"{entry.name}: {entry.description}"]
        if entry.params:
            lines.append(f"parameters (override with {self.override_flag} k=v):")
            for key, default in entry.params.items():
                doc = entry.param_docs.get(key, "")
                suffix = f"  — {doc}" if doc else ""
                lines.append(f"  {key} = {default!r}{suffix}")
        else:
            lines.append("parameters: (none)")
        lines.extend(self._describe_built(entry))
        return "\n".join(lines)

    def _describe_built(self, entry: RegisteredFactory) -> List[str]:
        """Extra ``describe`` lines showing what the defaults build."""
        return []


def _coerce_value(key: str, value: str, default: Any) -> Any:
    if isinstance(default, bool):
        lowered = str(value).strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"parameter {key!r}: expected a boolean, got {value!r}")
    for typ in (int, float):
        if isinstance(default, typ):
            try:
                return typ(value)
            except ValueError:
                raise ValueError(
                    f"parameter {key!r}: expected {typ.__name__}, got {value!r}"
                ) from None
    if default is None or isinstance(default, str):
        return value
    raise ValueError(
        f"parameter {key!r} of type {type(default).__name__} cannot be set "
        "from the command line"
    )
