"""Static contract analysis: the determinism & API linter.

The test suite can only *sample* the repo's behavioural guarantees
(byte-identical figure CSVs, ``rows.json`` stable across ``--jobs N``,
crash/resume replay, trace parity across kernel backends); this package
enforces the source-level invariants those guarantees rest on, over the
repo's own AST, with stdlib :mod:`ast` only:

* :mod:`repro.analysis.rules` — the rules and :data:`RULES` registry
  (a :class:`~repro.analysis.rules.RuleRegistry` on the shared
  :class:`repro.registry.FactoryRegistry`);
* :mod:`repro.analysis.engine` — file walking, suppression matching,
  reports (:func:`lint_paths` / :func:`lint_source`);
* :mod:`repro.analysis.model` — violations, ``# repro: allow[...]``
  pragmas, per-file context;
* :mod:`repro.analysis.cli` — ``lint run|list|describe``.

See ``docs/contracts.md`` for the invariant → rule mapping and the
pragma escape hatch.
"""

from repro.analysis.engine import (
    DEFAULT_TARGETS,
    LintReport,
    lint_paths,
    lint_source,
)
from repro.analysis.model import META_RULES, Pragma, Violation
from repro.analysis.rules import RULES, LintRule, RuleRegistry

__all__ = [
    "DEFAULT_TARGETS",
    "LintReport",
    "LintRule",
    "META_RULES",
    "Pragma",
    "RULES",
    "RuleRegistry",
    "Violation",
    "lint_paths",
    "lint_source",
]
