"""``lint`` CLI: run the contract linter, list rules, describe one.

Wired into the unified experiments CLI (``python -m repro.experiments
lint ...``) and exposed standalone as ``python -m repro.analysis`` so CI
can gate on it without touching the scenario stack.

Exit status: ``lint run`` exits 0 on a clean tree and 2 when any
unsuppressed violation (including unused or malformed pragmas) remains —
distinct from argparse's exit 1 so scripts can tell "dirty tree" from
"bad invocation".
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Optional

from repro.analysis.engine import DEFAULT_TARGETS, lint_paths
from repro.analysis.rules import RULES

__all__ = ["add_lint_subparser", "main"]

#: Exit code for "the tree has violations" (argparse uses 1 and 2 is
#: conventional for "real findings" in linters like grep -q workflows).
EXIT_VIOLATIONS = 2


def _cmd_lint_run(args) -> int:
    try:
        report = lint_paths(
            paths=args.paths or None,
            rules=args.rule or None,
            root=Path(args.root) if args.root else None,
        )
    except (FileNotFoundError, KeyError) as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    rendered = (
        report.to_json() if args.format == "json" else report.format_text()
    )
    if args.out:
        Path(args.out).write_text(rendered + "\n", encoding="utf-8")
        print(f"lint report written: {args.out}")
        if args.format == "text" and not report.ok:
            # Violations must reach the console even when redirected.
            print(rendered, file=sys.stderr)
    else:
        print(rendered)
    return 0 if report.ok else EXIT_VIOLATIONS


def _cmd_lint_list(_args) -> int:
    print("registered lint rules (static contracts; see docs/contracts.md):")
    for name in RULES.names():
        entry = RULES.get(name)
        print(f"  {name:26s} {entry.description}")
    print()
    print(
        "run with:      python -m repro.experiments lint run "
        f"[{' '.join(DEFAULT_TARGETS)}] [--format json]\n"
        "details with:  python -m repro.experiments lint describe <rule>\n"
        "suppress with: # repro: allow[<rule>] reason=<why>  (line) or\n"
        "               # repro: allow-file[<rule>] reason=<why>  (file)"
    )
    return 0


def _cmd_lint_describe(args) -> int:
    try:
        print(RULES.describe(args.rule))
    except (KeyError, ValueError) as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    return 0


def add_lint_subparser(subparsers) -> None:
    """Attach ``lint run|list|describe`` to an argparse subparsers object."""
    lint_p = subparsers.add_parser(
        "lint",
        help="static contract linter (determinism & API invariants)",
    )
    lint_sub = lint_p.add_subparsers(dest="lint_command", required=True)

    run_p = lint_sub.add_parser(
        "run", help="lint the repo; non-zero exit on any violation"
    )
    run_p.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to lint (default: {' '.join(DEFAULT_TARGETS)})",
    )
    run_p.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        help="run only this rule (repeatable; default: all registered)",
    )
    run_p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is the CI-artifact schema, version 1)",
    )
    run_p.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the report to FILE (violations still print to "
        "stderr in text mode)",
    )
    run_p.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="repo root for path scoping (default: current directory)",
    )
    run_p.set_defaults(handler=_cmd_lint_run)

    list_p = lint_sub.add_parser("list", help="list registered rules")
    list_p.set_defaults(handler=_cmd_lint_list)

    desc_p = lint_sub.add_parser(
        "describe", help="show a rule's contract, rationale and examples"
    )
    desc_p.add_argument("rule")
    desc_p.set_defaults(handler=_cmd_lint_describe)


def main(argv: Optional[list] = None) -> int:
    """Standalone entry point for ``python -m repro.analysis``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static contract linter for the AdapTBF reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    add_lint_subparser(sub)
    args = parser.parse_args(argv)
    return args.handler(args)
