"""The contract rules and their registry.

Each rule is a class with a stable kebab-case ``id`` and a
``check(ctx)`` generator yielding :class:`~repro.analysis.model.Violation`
records for one :class:`~repro.analysis.model.FileContext`.  Rules are
registered on :data:`RULES` — a :class:`RuleRegistry` built on the shared
:class:`repro.registry.FactoryRegistry` — so ``lint list`` / ``lint
describe`` get the same schema-from-source treatment as scenarios,
mechanisms and workloads.

Every rule enforces an invariant some byte-identity guarantee already
depends on; the mapping is spelled out in ``docs/contracts.md``.  The
``Example`` block in each rule's docstring is executable and exercised by
the doc-sync suite (``tests/docs/test_lint_doc_sync.py``), so the
documented behaviour cannot drift from the implementation.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.model import FileContext, Violation
from repro.registry import FactoryRegistry, parse_param_docs

__all__ = ["LintRule", "RuleRegistry", "RULES"]

#: Package prefix the determinism rules guard.  Everything that can run
#: inside a simulation lives here; tests and benchmarks are exempt by
#: construction (they are never imported by simulation code).
_PKG = "src/repro/"


class LintRule:
    """Base class: one statically checkable repo invariant."""

    #: Stable kebab-case identifier used in reports and pragmas.
    id: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError


class RuleRegistry(FactoryRegistry):
    """Registry of lint rules; ``describe`` appends the rule's full docs."""

    kind = "rule"
    override_flag = "--rule"

    def _describe_built(self, entry) -> List[str]:
        import inspect

        doc = inspect.getdoc(entry.factory)
        if not doc:
            return []
        return ["", doc]


RULES = RuleRegistry()


# ---------------------------------------------------------------------------
# Shared import/alias resolution
# ---------------------------------------------------------------------------

def _collect_imports(tree: ast.AST) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Map local names to the dotted things they import.

    Returns ``(modules, names)``: ``modules`` for module bindings
    (``import numpy as np`` → ``{"np": "numpy"}``; ``import numpy.random``
    binds ``numpy``), ``names`` for from-imports
    (``from time import perf_counter`` → ``{"perf_counter":
    "time.perf_counter"}``).
    """
    modules: Dict[str, str] = {}
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    modules[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    modules[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never reach stdlib randomness
            for alias in node.names:
                if alias.name == "*":
                    continue
                names[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return modules, names


def _resolve(
    node: ast.AST, modules: Dict[str, str], names: Dict[str, str]
) -> Optional[str]:
    """Dotted origin of an expression, or None when not import-derived."""
    if isinstance(node, ast.Name):
        return names.get(node.id) or modules.get(node.id)
    if isinstance(node, ast.Attribute):
        base = _resolve(node.value, modules, names)
        return f"{base}.{node.attr}" if base else None
    return None


class _UsageScan(ast.NodeVisitor):
    """Find every usage of import-derived names matching a predicate.

    Flags the *outermost* matching expression once: ``np.random.default_rng``
    is one finding anchored at the full chain, not three.
    """

    def __init__(self, tree: ast.AST, predicate) -> None:
        self._modules, self._names = _collect_imports(tree)
        self._predicate = predicate
        self.hits: List[Tuple[ast.AST, str]] = []
        self.visit(tree)

    def _try_flag(self, node: ast.AST) -> bool:
        dotted = _resolve(node, self._modules, self._names)
        if dotted is not None and self._predicate(dotted):
            self.hits.append((node, dotted))
            return True
        return False

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self._try_flag(node):
            self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._try_flag(node)


# ---------------------------------------------------------------------------
# Determinism rules
# ---------------------------------------------------------------------------

@RULES.register(
    "no-raw-random",
    description="all randomness flows through sim/rng.py substreams",
)
class NoRawRandom(LintRule):
    """Ban ``random`` / ``numpy.random`` outside ``sim/rng.py``.

    Byte-identical reruns (fig3–fig9 CSVs, ``rows.json`` across
    ``--jobs N``, crash/resume replay) require every stochastic draw to
    come from a named :class:`repro.sim.rng.RngStreams` substream derived
    from the run seed.  A direct ``random.random()`` or
    ``numpy.random.default_rng()`` draws from a stream the seed plumbing
    does not own: adding one perturbs unrelated draws, and module-level
    state leaks across runs.  Tests and benchmarks are out of scope;
    ``src/repro/sim/rng.py`` is the one sanctioned wrapper.

    Example
    -------
    ```python
    from repro.analysis import lint_source

    bad = "import random\\nshape = random.random()\\n"
    (v,) = lint_source(bad, rel="src/repro/workloads/gen.py")
    assert (v.rule, v.line, v.col) == ("no-raw-random", 2, 9)

    ok = (
        "import random\\n"
        "shape = random.random()"
        "  # repro: allow[no-raw-random] reason=doc demo\\n"
    )
    assert lint_source(ok, rel="src/repro/workloads/gen.py") == []
    ```
    """

    id = "no-raw-random"

    @staticmethod
    def _banned(dotted: str) -> bool:
        return (
            dotted == "random"
            or dotted.startswith("random.")
            or dotted == "numpy.random"
            or dotted.startswith("numpy.random.")
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.under(_PKG) or ctx.is_file("src/repro/sim/rng.py"):
            return
        for node, dotted in _UsageScan(ctx.tree, self._banned).hits:
            yield ctx.violation(
                self.id,
                node,
                f"{dotted} bypasses the seeded RngStreams discipline; draw "
                "from a named substream (repro.sim.rng) instead",
            )


#: Wall-clock reads that would couple simulated behaviour to real time.
_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@RULES.register(
    "no-wallclock",
    description="no wall-clock time reaches simulation logic",
)
class NoWallclock(LintRule):
    """Ban wall-clock reads (``time.time``, ``perf_counter``, ``now()``).

    Simulated time is the only clock the model may observe — any
    wall-clock value that reaches simulation logic varies per host and
    per run, silently breaking replayability.  Code that *measures* the
    simulator (campaign ``timing.json``, lease TTLs, the overhead
    experiment) legitimately reads real clocks, but each such site must
    carry a scoped pragma so the quarantine boundary stays explicit and
    reviewed.

    Example
    -------
    ```python
    from repro.analysis import lint_source

    bad = "import time\\ndef stamp():\\n    return time.time()\\n"
    (v,) = lint_source(bad, rel="src/repro/core/clock.py")
    assert (v.rule, v.line) == ("no-wallclock", 3)

    ok = bad.replace(
        "time.time()",
        "time.time()  # repro: allow[no-wallclock] reason=doc demo",
    )
    assert lint_source(ok, rel="src/repro/core/clock.py") == []
    ```
    """

    id = "no-wallclock"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.under(_PKG):
            return
        for node, dotted in _UsageScan(
            ctx.tree, lambda d: d in _WALLCLOCK
        ).hits:
            yield ctx.violation(
                self.id,
                node,
                f"{dotted} reads the wall clock; simulation logic must only "
                "observe simulated time (pragma timing/quarantine code)",
            )


@RULES.register(
    "calendar-seam-only",
    description="events enter the calendar only through sim/backends.py",
)
class CalendarSeamOnly(LintRule):
    """Ban ``heapq`` and calendar-internal access outside ``sim/backends.py``.

    The kernel-backend seam (PR 6) owns the event calendar: every
    insertion goes through ``KernelBackend.push``/``push_now`` so the
    ``(time, priority, seq)`` total order — and with it trace parity
    across backends — is preserved.  A stray ``heapq.heappush`` onto the
    calendar, or a reach into ``env._queue`` / a backend's ``fifo``,
    bypasses sequence-number stamping and diverges the dispatch stream.
    Heaps that are *not* the event calendar (the TBF rule queue) carry a
    file pragma stating exactly that.

    Example
    -------
    ```python
    from repro.analysis import lint_source

    bad = "import heapq\\ndef sneak(cal, ev):\\n    heapq.heappush(cal, ev)\\n"
    (v,) = lint_source(bad, rel="src/repro/lustre/sneak.py")
    assert (v.rule, v.line) == ("calendar-seam-only", 3)

    reach = "def peek(env):\\n    return env._queue[0]\\n"
    (v,) = lint_source(reach, rel="src/repro/core/peek.py")
    assert v.rule == "calendar-seam-only"
    ```
    """

    id = "calendar-seam-only"

    #: Attribute names that are calendar storage internals.
    _INTERNALS = frozenset({"_queue", "_heap", "fifo"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.under(_PKG) or ctx.is_file("src/repro/sim/backends.py"):
            return
        for node, dotted in _UsageScan(
            ctx.tree, lambda d: d == "heapq" or d.startswith("heapq.")
        ).hits:
            yield ctx.violation(
                self.id,
                node,
                f"{dotted}: the event calendar is owned by the kernel "
                "backend seam (repro.sim.backends); schedule through "
                "Environment/KernelBackend.push, or pragma a heap that is "
                "not the calendar",
            )
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in self._INTERNALS
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                )
            ):
                yield ctx.violation(
                    self.id,
                    node,
                    f"direct access to calendar internal .{node.attr}; go "
                    "through the KernelBackend API",
                )


@RULES.register(
    "no-dict-order-leak",
    description="set iteration order never feeds ordered output",
)
class NoDictOrderLeak(LintRule):
    """Ban iterating a ``set`` into order-sensitive output.

    Set iteration order depends on insertion history and hash seeding —
    letting it feed a list, a loop with ordered side effects, or a joined
    string makes output ordering an accident of memory layout.  Rows,
    CSVs and reports must be byte-identical across runs and worker
    counts, so sets feeding ordered consumers must pass through
    ``sorted(...)`` first.  Order-insensitive consumers (``sum``,
    ``len``, ``sorted`` itself, another set) are fine.

    Example
    -------
    ```python
    from repro.analysis import lint_source

    bad = "def order(jobs):\\n    return [j for j in set(jobs)]\\n"
    (v,) = lint_source(bad, rel="src/repro/metrics/order.py")
    assert (v.rule, v.line) == ("no-dict-order-leak", 2)

    ok = "def order(jobs):\\n    return [j for j in sorted(set(jobs))]\\n"
    assert lint_source(ok, rel="src/repro/metrics/order.py") == []
    ```
    """

    id = "no-dict-order-leak"

    _MESSAGE = (
        "set iteration order is arbitrary; wrap in sorted(...) before it "
        "feeds ordered output"
    )

    @classmethod
    def _is_set_expr(cls, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return cls._is_set_expr(node.left) or cls._is_set_expr(node.right)
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.under(_PKG):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and self._is_set_expr(node.iter):
                yield ctx.violation(self.id, node.iter, self._MESSAGE)
            elif isinstance(node, (ast.ListComp, ast.DictComp)):
                for gen in node.generators:
                    if self._is_set_expr(gen.iter):
                        yield ctx.violation(self.id, gen.iter, self._MESSAGE)
            elif isinstance(node, ast.Call) and node.args:
                first = node.args[0]
                ordered_builtin = (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple", "enumerate", "iter")
                )
                join_call = (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                )
                if (ordered_builtin or join_call) and self._is_set_expr(first):
                    yield ctx.violation(self.id, first, self._MESSAGE)


# ---------------------------------------------------------------------------
# Structural contract rules
# ---------------------------------------------------------------------------

def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.AST]:
    """The ``@dataclass`` decorator node, bare or called, if present."""
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr
            if isinstance(target, ast.Attribute)
            else None
        )
        if name == "dataclass":
            return deco
    return None


def _decorator_flag(deco: ast.AST, flag: str) -> bool:
    if not isinstance(deco, ast.Call):
        return False
    for kw in deco.keywords:
        if kw.arg == flag:
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def _has_body_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__slots__"
            for t in stmt.targets
        ):
            return True
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__slots__"
        ):
            return True
    return False


@RULES.register(
    "frozen-spec-integrity",
    description="spec dataclasses stay frozen, slot-consistent and picklable",
)
class FrozenSpecIntegrity(LintRule):
    """Spec dataclasses must be ``frozen=True`` with picklable defaults.

    Everything named ``*Spec`` is part of the declarative layer: it is
    hashed into campaign identities, pickled across ``--jobs N`` worker
    processes, and stored in durable result stores.  A mutable spec can
    drift between hash time and run time; a ``lambda`` default cannot be
    pickled, so the first multi-process sweep dies in the executor.  If
    the module's idiom is slotted specs (any sibling ``*Spec`` dataclass
    declares slots), new specs must follow it — a single dict-carrying
    spec in a slotted family silently doubles per-cell memory.

    Example
    -------
    ```python
    from repro.analysis import lint_source

    bad = (
        "from dataclasses import dataclass\\n"
        "@dataclass\\n"
        "class RetrySpec:\\n"
        "    limit: int = 3\\n"
    )
    (v,) = lint_source(bad, rel="src/repro/campaigns/retry.py")
    assert (v.rule, v.line) == ("frozen-spec-integrity", 3)

    ok = bad.replace("@dataclass", "@dataclass(frozen=True)")
    assert lint_source(ok, rel="src/repro/campaigns/retry.py") == []
    ```
    """

    id = "frozen-spec-integrity"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        specs: List[Tuple[ast.ClassDef, ast.AST, bool]] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            deco = _dataclass_decorator(node)
            if deco is None or not node.name.endswith("Spec"):
                continue
            slotted = _decorator_flag(deco, "slots") or _has_body_slots(node)
            specs.append((node, deco, slotted))
        any_slotted = any(slotted for _, _, slotted in specs)
        for node, deco, slotted in specs:
            if not _decorator_flag(deco, "frozen"):
                yield ctx.violation(
                    self.id,
                    node,
                    f"spec dataclass {node.name!r} must be @dataclass("
                    "frozen=True): specs are hashed, pickled and stored",
                )
            for stmt in node.body:
                # Only field definitions: a lambda inside a *method* body
                # never ends up in the pickled instance state.
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Lambda):
                        yield ctx.violation(
                            self.id,
                            sub,
                            f"spec dataclass {node.name!r} has a lambda in a "
                            "field default; lambdas cannot be pickled across "
                            "--jobs N workers — use a module-level function",
                        )
            if any_slotted and not slotted:
                yield ctx.violation(
                    self.id,
                    node,
                    f"spec dataclass {node.name!r} breaks this module's "
                    "slotted-spec idiom; add slots=True (or __slots__)",
                )


@RULES.register(
    "registry-factory-contract",
    description="registered factories match their documented parameters",
)
class RegistryFactoryContract(LintRule):
    """Registered factories must match their ``Parameters`` docs.

    ``describe`` output, CLI ``--param`` coercion and campaign axis
    validation are all generated from a registered factory's keyword
    defaults plus its numpy-style ``Parameters`` docstring section.  A
    documented parameter the signature does not accept means ``describe``
    advertises a knob that raises at build time; a parameter with no
    default cannot be built from the CLI at all (the registry rejects it
    at import, but only when that module is actually imported — the rule
    catches it at lint time).

    Example
    -------
    ```python
    from repro.analysis import lint_source

    bad = (
        "from repro.scenarios import REGISTRY\\n"
        "@REGISTRY.register('demo')\\n"
        "def make(n_jobs: int = 2):\\n"
        "    'Demo.\\\\n\\\\n    Parameters\\\\n    ----------\\\\n"
        "    n_josb:\\\\n        oops, typo for n_jobs.\\\\n    '\\n"
    )
    (v,) = lint_source(bad, rel="src/repro/scenarios/demo.py")
    assert v.rule == "registry-factory-contract"
    assert "n_josb" in v.message
    ```
    """

    id = "registry-factory-contract"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not any(
                isinstance(deco, ast.Call)
                and isinstance(deco.func, ast.Attribute)
                and deco.func.attr == "register"
                and isinstance(deco.func.value, ast.Name)
                for deco in node.decorator_list
            ):
                continue
            args = node.args
            positional = list(args.posonlyargs) + list(args.args)
            n_without_default = len(positional) - len(args.defaults)
            sig_names = {a.arg for a in positional + list(args.kwonlyargs)}
            for arg in positional[:n_without_default]:
                yield ctx.violation(
                    self.id,
                    arg,
                    f"registered factory {node.name!r}: parameter "
                    f"{arg.arg!r} has no default; the registry builds from "
                    "keyword overrides only",
                )
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is None:
                    yield ctx.violation(
                        self.id,
                        arg,
                        f"registered factory {node.name!r}: keyword-only "
                        f"parameter {arg.arg!r} has no default",
                    )
            for doc_name in parse_param_docs(ast.get_docstring(node)):
                if doc_name not in sig_names:
                    yield ctx.violation(
                        self.id,
                        node,
                        f"registered factory {node.name!r} documents "
                        f"parameter {doc_name!r} in its Parameters section, "
                        "but the signature has no such parameter (describe "
                        "would advertise a knob that raises)",
                    )


#: Base classes whose subclasses legitimately carry instance dicts.
_SLOTS_EXEMPT_MARKERS = ("Exception", "Error", "Warning", "Enum", "Protocol")


@RULES.register(
    "hot-path-slots",
    description="sim/ and lustre/ hot-path classes declare __slots__",
)
class HotPathSlots(LintRule):
    """Classes in ``sim/`` and ``lustre/`` must declare ``__slots__``.

    These packages are the per-event allocation path: RPCs, events,
    timeouts, queue entries and trackers are created millions of times
    per run.  ``__slots__`` removes the per-instance ``__dict__`` —
    measurably faster attribute access and smaller instances (the PR 1/5
    overhauls relied on it) — and doubles as a typo guard: assigning a
    misspelled attribute raises instead of silently creating state the
    engine never reads.  Exception, Enum and Protocol types are exempt;
    anything else needs ``__slots__`` (dataclasses: ``slots=True``) or a
    pragma explaining why a dict is required.

    Example
    -------
    ```python
    from repro.analysis import lint_source

    bad = (
        "class Cursor:\\n"
        "    def __init__(self) -> None:\\n"
        "        self.pos = 0\\n"
    )
    (v,) = lint_source(bad, rel="src/repro/lustre/cursor.py")
    assert (v.rule, v.line) == ("hot-path-slots", 1)

    ok = bad.replace(
        "    def __init__", "    __slots__ = ('pos',)\\n\\n    def __init__"
    )
    assert lint_source(ok, rel="src/repro/lustre/cursor.py") == []
    ```
    """

    id = "hot-path-slots"

    @staticmethod
    def _exempt(node: ast.ClassDef) -> bool:
        for base in node.bases:
            text = ast.unparse(base)
            tail = text.split(".")[-1]
            if any(marker in tail for marker in _SLOTS_EXEMPT_MARKERS):
                return True
        return False

    @staticmethod
    def _assigns_instance_attrs(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.ctx, ast.Store)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                    ):
                        return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.under("src/repro/sim/", "src/repro/lustre/"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or self._exempt(node):
                continue
            deco = _dataclass_decorator(node)
            if deco is not None:
                if not _decorator_flag(deco, "slots") and not _has_body_slots(
                    node
                ):
                    yield ctx.violation(
                        self.id,
                        node,
                        f"hot-path dataclass {node.name!r} must declare "
                        "slots=True (per-instance dicts cost memory and "
                        "attribute-access time on the event path)",
                    )
            elif self._assigns_instance_attrs(node) and not _has_body_slots(
                node
            ):
                yield ctx.violation(
                    self.id,
                    node,
                    f"hot-path class {node.name!r} must declare __slots__ "
                    "(per-instance dicts cost memory and attribute-access "
                    "time on the event path)",
                )


# ---------------------------------------------------------------------------
# Meta rules (engine-implemented; registered for list/describe)
# ---------------------------------------------------------------------------

@RULES.register(
    "unused-suppression",
    description="every pragma must still suppress something",
)
class UnusedSuppression(LintRule):
    """A pragma whose rule no longer fires is itself a violation.

    Suppressions are debt: each ``# repro: allow[...]`` documents a
    deliberate, reviewed exception.  When the excused code is fixed or
    deleted, the pragma must go too — otherwise it silently licenses the
    *next* violation someone writes on that line.  This meta rule is
    enforced by the engine after suppression matching and cannot itself
    be suppressed.

    Example
    -------
    ```python
    from repro.analysis import lint_source

    stale = "x = 1  # repro: allow[no-raw-random] reason=nothing here\\n"
    (v,) = lint_source(stale, rel="src/repro/core/x.py")
    assert (v.rule, v.line) == ("unused-suppression", 1)
    ```
    """

    id = "unused-suppression"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())


@RULES.register(
    "pragma-syntax",
    description="pragmas are well-formed and carry a reason=",
)
class PragmaSyntax(LintRule):
    """Malformed pragmas are violations, never silently ignored.

    A suppression that misspells its rule id, omits the mandatory
    ``reason=``, or garbles the syntax would otherwise *look* like an
    exemption while suppressing nothing.  The engine validates every
    comment that attempts the ``# repro:`` prefix and reports
    near-misses here; the underlying violation (if any) is reported
    unsuppressed alongside.  Cannot itself be suppressed.

    Example
    -------
    ```python
    from repro.analysis import lint_source

    src = (
        "import time\\n"
        "t = time.time()  # repro: allow[no-wallclock]\\n"
    )
    rules = sorted(v.rule for v in lint_source(src, rel="src/repro/core/x.py"))
    assert rules == ["no-wallclock", "pragma-syntax"]
    ```
    """

    id = "pragma-syntax"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())


def default_rule_ids() -> Sequence[str]:
    """Every registered rule id, sorted (the ``lint run`` default set)."""
    return RULES.names()
