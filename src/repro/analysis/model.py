"""Data model for the static contract linter.

A lint run is a pipeline over :class:`FileContext` objects — one per
Python source file, holding the parsed AST, the repo-relative path the
scoping rules key on, and the suppression pragmas extracted from the
file's comments.  Rules (:mod:`repro.analysis.rules`) consume contexts
and yield :class:`Violation` records; the engine
(:mod:`repro.analysis.engine`) reconciles violations against pragmas and
turns unused or malformed pragmas into violations of their own.

Suppression pragmas
-------------------
Two comment forms, both requiring an explicit justification::

    x = random.random()  # repro: allow[no-raw-random] reason=seeded demo
    # repro: allow-file[calendar-seam-only] reason=TBF rule-queue heap

``allow`` suppresses matching violations on its own physical line;
``allow-file`` suppresses the rule for the whole file (conventionally
placed near the top, next to the import it excuses).  A pragma whose
rule never fires is an ``unused-suppression`` violation — suppressions
must decay with the code they excuse, not outlive it.  A pragma with a
missing ``reason=``, an unknown rule id, or a malformed body is a
``pragma-syntax`` violation; the two meta rules themselves cannot be
suppressed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Violation",
    "Pragma",
    "FileContext",
    "parse_pragmas",
    "META_RULES",
]

#: Engine-implemented meta rules validating the suppression mechanism
#: itself; never suppressible.
META_RULES = ("unused-suppression", "pragma-syntax")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, and what the contract demands."""

    rule: str
    #: Repo-relative posix path ("src/repro/sim/engine.py").
    path: str
    #: 1-based source line.
    line: int
    #: 1-based column of the offending node.
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Pragma:
    """One ``# repro: allow[...]`` suppression comment."""

    line: int
    #: "line" (``allow``) or "file" (``allow-file``).
    scope: str
    rule: str
    reason: str
    #: Set by the engine when the pragma suppressed at least one violation.
    used: bool = False


#: Any comment that *attempts* to be a repro pragma — used to route
#: near-miss spellings into pragma-syntax instead of silently ignoring.
_PRAGMA_ATTEMPT = re.compile(r"#\s*repro\s*:")

_PRAGMA = re.compile(
    r"#\s*repro:\s*(?P<directive>allow(?:-file)?)"
    r"\[(?P<rule>[^\]]*)\]"
    r"\s*(?P<rest>.*)$"
)

_REASON = re.compile(r"^reason=(?P<reason>\S.*)$")


def parse_pragmas(
    source: str, known_rules: Tuple[str, ...]
) -> Tuple[List[Pragma], List[Tuple[int, int, str]]]:
    """Extract pragmas from ``source`` comments.

    Returns ``(pragmas, errors)`` where each error is a
    ``(line, col, message)`` triple destined to become a
    ``pragma-syntax`` violation.  Uses :mod:`tokenize` so comment-looking
    text inside string literals is never misread as a pragma.
    """
    pragmas: List[Pragma] = []
    errors: List[Tuple[int, int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # The AST parse will report the real problem; no pragmas here.
        return [], []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        comment = tok.string
        line, col = tok.start[0], tok.start[1] + 1
        if not _PRAGMA_ATTEMPT.search(comment):
            continue
        match = _PRAGMA.search(comment)
        if not match:
            errors.append(
                (
                    line,
                    col,
                    "unrecognized pragma; expected "
                    "`# repro: allow[rule-id] reason=...` or "
                    "`# repro: allow-file[rule-id] reason=...`",
                )
            )
            continue
        rule = match.group("rule").strip()
        if rule in META_RULES:
            errors.append(
                (line, col, f"meta rule {rule!r} cannot be suppressed")
            )
            continue
        if rule not in known_rules:
            errors.append(
                (
                    line,
                    col,
                    f"pragma names unknown rule {rule!r}; known rules: "
                    + ", ".join(sorted(known_rules)),
                )
            )
            continue
        reason_match = _REASON.match(match.group("rest").strip())
        if not reason_match:
            errors.append(
                (
                    line,
                    col,
                    f"pragma for {rule!r} is missing its justification; "
                    "append `reason=<why this use is sound>`",
                )
            )
            continue
        scope = "file" if match.group("directive") == "allow-file" else "line"
        pragmas.append(
            Pragma(
                line=line,
                scope=scope,
                rule=rule,
                reason=reason_match.group("reason").strip(),
            )
        )
    return pragmas, errors


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    #: Repo-relative posix path; all rule scoping keys on this.
    rel: str
    source: str
    tree: ast.AST
    pragmas: List[Pragma] = field(default_factory=list)
    #: ``(line, col, message)`` triples from malformed pragmas.
    pragma_errors: List[Tuple[int, int, str]] = field(default_factory=list)

    # -- scoping helpers ---------------------------------------------------
    def under(self, *prefixes: str) -> bool:
        """True when the file lives under any of the given dir prefixes."""
        return any(
            self.rel == p or self.rel.startswith(p.rstrip("/") + "/")
            for p in prefixes
        )

    def is_file(self, rel: str) -> bool:
        return self.rel == rel

    # -- violation factory -------------------------------------------------
    def violation(
        self, rule: str, node: ast.AST, message: str
    ) -> Violation:
        """Build a violation anchored at ``node``'s position."""
        return Violation(
            rule=rule,
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )

    def violation_at(
        self, rule: str, line: int, col: int, message: str
    ) -> Violation:
        return Violation(
            rule=rule, path=self.rel, line=line, col=col, message=message
        )

    # -- suppression lookup ------------------------------------------------
    def find_pragma(self, rule: str, line: int) -> Optional[Pragma]:
        """Line pragma on ``line`` for ``rule``, else a file pragma."""
        file_hit: Optional[Pragma] = None
        for pragma in self.pragmas:
            if pragma.rule != rule:
                continue
            if pragma.scope == "line" and pragma.line == line:
                return pragma
            if pragma.scope == "file" and file_hit is None:
                file_hit = pragma
        return file_hit


def build_context(source: str, rel: str, known_rules: Tuple[str, ...]) -> FileContext:
    """Parse ``source`` into a :class:`FileContext` (raises SyntaxError)."""
    tree = ast.parse(source, filename=rel)
    pragmas, errors = parse_pragmas(source, known_rules)
    return FileContext(
        rel=rel,
        source=source,
        tree=tree,
        pragmas=pragmas,
        pragma_errors=errors,
    )
