"""Lint engine: file discovery, rule application, suppression reconciliation.

The entry points are :func:`lint_paths` (walk real files under a repo
root) and :func:`lint_source` (lint one in-memory source string at a
virtual path — what the fixture tests and the executable rule-docstring
examples use).  Both run the same pipeline:

1. parse the file into a :class:`~repro.analysis.model.FileContext`
   (AST + suppression pragmas);
2. run every selected rule's ``check``;
3. match raw violations against pragmas — a line pragma suppresses
   same-rule findings on its own line, a file pragma suppresses the rule
   file-wide — marking each pragma that fires as *used*;
4. emit ``unused-suppression`` for pragmas that suppressed nothing and
   ``pragma-syntax`` for malformed ones.

The report's violation list is sorted by (path, line, col, rule) so two
runs over the same tree are byte-identical — the linter holds itself to
the invariant it enforces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.model import META_RULES, Violation, build_context
from repro.analysis.rules import RULES, LintRule

__all__ = ["LintReport", "lint_paths", "lint_source", "discover_files"]

#: Directories never descended into during discovery.
_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".pytest_cache",
    ".mypy_cache",
    "node_modules",
    ".venv",
    "venv",
}

#: Default lint targets relative to the repo root: the package itself plus
#: the runnable satellites.  Tests are deliberately excluded — they stub,
#: monkeypatch and (in the lint fixtures) *contain* violations by design.
DEFAULT_TARGETS = ("src", "benchmarks", "examples")


@dataclass
class LintReport:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    #: Violations a pragma suppressed (kept for reporting/debugging).
    suppressed: List[Violation] = field(default_factory=list)
    rule_ids: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json_dict(self) -> dict:
        return {
            "version": 1,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules": list(self.rule_ids),
            "violations": [v.to_json_dict() for v in self.violations],
            "suppressed": len(self.suppressed),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)

    def format_text(self) -> str:
        lines = [v.format() for v in self.violations]
        lines.append(
            f"{len(self.violations)} violation(s) in "
            f"{self.files_checked} file(s) checked "
            f"({len(self.suppressed)} suppressed by pragma)"
        )
        return "\n".join(lines)


def _sort_key(v: Violation) -> Tuple[str, int, int, str]:
    return (v.path, v.line, v.col, v.rule)


def _build_rules(rule_ids: Optional[Sequence[str]]) -> List[LintRule]:
    ids = list(rule_ids) if rule_ids else RULES.names()
    return [RULES.build(rule_id) for rule_id in ids]


def _lint_context(ctx, rules: Iterable[LintRule]):
    """Run rules + suppression reconciliation over one FileContext."""
    kept: List[Violation] = []
    suppressed: List[Violation] = []
    selected = set()
    for rule in rules:
        selected.add(rule.id)
        for violation in rule.check(ctx):
            pragma = ctx.find_pragma(violation.rule, violation.line)
            if pragma is not None:
                pragma.used = True
                suppressed.append(violation)
            else:
                kept.append(violation)
    for pragma in ctx.pragmas:
        # A pragma for a rule outside the selected subset had no chance
        # to fire; only a full-rule run can call it stale.
        if pragma.rule not in selected:
            continue
        if not pragma.used:
            kept.append(
                ctx.violation_at(
                    "unused-suppression",
                    pragma.line,
                    1,
                    f"pragma allow[{pragma.rule}] suppresses nothing; "
                    "remove it (suppressions must decay with the code "
                    "they excuse)",
                )
            )
    for line, col, message in ctx.pragma_errors:
        kept.append(ctx.violation_at("pragma-syntax", line, col, message))
    return kept, suppressed


def lint_source(
    source: str,
    rel: str,
    rules: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Lint one source string as though it lived at repo path ``rel``.

    ``rel`` drives rule scoping exactly like a real file's path does —
    ``lint_source(code, rel="src/repro/sim/x.py")`` sees the sim-layer
    rules, ``rel="tools/x.py"`` only the unscoped ones.  Returns the
    sorted violation list (suppressed findings excluded).
    """
    built = _build_rules(rules)
    rule_ids = tuple(sorted(rule.id for rule in built))
    ctx = build_context(source, rel.replace("\\", "/"), _known_ids(rule_ids))
    kept, _ = _lint_context(ctx, built)
    return sorted(kept, key=_sort_key)


def _known_ids(selected: Tuple[str, ...]) -> Tuple[str, ...]:
    """Rule ids pragmas may name: every *registered* rule, not just the
    selected subset — running one rule must not turn other rules'
    legitimate pragmas into syntax errors."""
    return tuple(RULES.names())


def discover_files(
    paths: Sequence[Path], root: Path
) -> List[Tuple[Path, str]]:
    """Expand ``paths`` into ``(file, repo-relative-posix)`` pairs."""
    found: List[Tuple[Path, str]] = []
    seen = set()
    for path in paths:
        path = Path(path)
        if not path.is_absolute():
            path = root / path
        if path.is_file():
            candidates = [path]
        elif path.is_dir():
            candidates = [
                p
                for p in sorted(path.rglob("*.py"))
                if not (set(p.parts) & _SKIP_DIRS)
            ]
        else:
            raise FileNotFoundError(f"lint target does not exist: {path}")
        for file in candidates:
            try:
                rel = file.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = file.as_posix()
            if rel in seen:
                continue
            seen.add(rel)
            found.append((file, rel))
    return found


def lint_paths(
    paths: Optional[Sequence] = None,
    rules: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> LintReport:
    """Lint files/directories and return a :class:`LintReport`.

    ``paths`` defaults to :data:`DEFAULT_TARGETS` under ``root`` (which
    defaults to the current working directory; pass the repo root when
    running from elsewhere).  A file that fails to parse is reported as a
    ``pragma-syntax``-free hard error via a synthetic violation — a
    syntactically broken file can't uphold any contract.
    """
    root = Path(root) if root is not None else Path.cwd()
    targets = [Path(p) for p in (paths or DEFAULT_TARGETS)]
    # Missing default targets (e.g. no examples/ dir) are skipped silently;
    # explicitly-passed targets must exist.
    if not paths:
        targets = [t for t in targets if (root / t).exists()]
    built = _build_rules(rules)
    rule_ids = tuple(sorted(rule.id for rule in built))
    known = _known_ids(rule_ids)

    report = LintReport(rule_ids=rule_ids)
    for file, rel in discover_files(targets, root):
        source = file.read_text(encoding="utf-8")
        try:
            ctx = build_context(source, rel, known)
        except SyntaxError as exc:
            report.violations.append(
                Violation(
                    rule="pragma-syntax",
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    message=f"file does not parse: {exc.msg}",
                )
            )
            report.files_checked += 1
            continue
        kept, suppressed = _lint_context(ctx, built)
        report.violations.extend(kept)
        report.suppressed.extend(suppressed)
        report.files_checked += 1
    report.violations.sort(key=_sort_key)
    report.suppressed.sort(key=_sort_key)
    return report
