"""I/O trace loading for replayed workloads.

The SDQoSA line of work and the control-theoretic congestion studies both
evaluate against *recorded* request streams rather than synthetic shapes;
this module gives the repository the same capability.  A trace is an
ordered sequence of :class:`TraceRecord` rows::

    (t_offset_s, job, op, nbytes)

``t_offset_s`` is seconds since trace start, ``job`` the Lustre JobID the
request belongs to, ``op`` either ``"read"`` or ``"write"``, and ``nbytes``
the request volume.  Two on-disk encodings are supported, selected by file
extension:

``.csv``
    Header ``t_offset_s,job,op,nbytes`` followed by one record per line.
``.jsonl``
    One JSON object per line with those same four keys.

:func:`load_trace` parses and *validates*: records must be non-empty,
time-sorted, non-negative in time, positive in volume, and use known ops —
a malformed trace fails loudly at load time, never as a silent mid-run
simulation anomaly.  :data:`EXAMPLE_TRACE` points at the small bundled
trace the ``trace-replay`` scenario and the docs use.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

__all__ = [
    "TRACE_OPS",
    "EXAMPLE_TRACE",
    "TraceRecord",
    "TraceFormatError",
    "load_trace",
    "validate_trace",
    "records_by_job",
]

#: Operation names a trace may use (matching :class:`repro.lustre.rpc.RpcKind`).
TRACE_OPS = ("read", "write")

#: The bundled example trace: three jobs, mixed read/write, ~6 simulated s.
EXAMPLE_TRACE = Path(__file__).parent / "traces" / "example_mixed.csv"

_FIELDS = ("t_offset_s", "job", "op", "nbytes")


class TraceFormatError(ValueError):
    """A trace file is malformed; the message pinpoints file and line."""


@dataclass(frozen=True)
class TraceRecord:
    """One request of a replayable trace.

    Parameters
    ----------
    t_offset_s:
        Seconds since trace start at which the request is issued.
    job:
        JobID the request belongs to (the TBF classification key).
    op:
        ``"read"`` or ``"write"``.
    nbytes:
        Request volume in bytes; must be positive (a zero-byte request
        carries no tokens and is rejected at load time).
    """

    t_offset_s: float
    job: str
    op: str
    nbytes: int

    def __post_init__(self) -> None:
        if self.t_offset_s < 0:
            raise ValueError(
                f"t_offset_s must be >= 0, got {self.t_offset_s}"
            )
        if not self.job:
            raise ValueError("job must be non-empty")
        if self.op not in TRACE_OPS:
            raise ValueError(f"op must be one of {TRACE_OPS}, got {self.op!r}")
        if self.nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {self.nbytes}")


def validate_trace(records: Sequence[TraceRecord], source: str = "trace") -> None:
    """Cross-record validation: non-empty and globally time-sorted.

    Per-record constraints (ops, volumes, offsets) are enforced by
    :class:`TraceRecord` itself; this adds the stream-level invariants the
    replay loop depends on.  Raises :class:`TraceFormatError`.
    """
    if not records:
        raise TraceFormatError(f"{source}: trace is empty")
    previous = records[0].t_offset_s
    for index, record in enumerate(records[1:], start=1):
        if record.t_offset_s < previous:
            raise TraceFormatError(
                f"{source}: record {index} goes back in time "
                f"({record.t_offset_s} after {previous}); traces must be "
                "sorted by t_offset_s (or load with sort=True)"
            )
        previous = record.t_offset_s


def _parse_record(
    raw: Dict[str, object], source: str, line_no: int
) -> TraceRecord:
    missing = [f for f in _FIELDS if f not in raw]
    if missing:
        raise TraceFormatError(
            f"{source}:{line_no}: missing field(s) {missing}; "
            f"expected {list(_FIELDS)}"
        )
    try:
        return TraceRecord(
            t_offset_s=float(raw["t_offset_s"]),  # type: ignore[arg-type]
            job=str(raw["job"]).strip(),
            op=str(raw["op"]).strip().lower(),
            nbytes=int(float(raw["nbytes"])),  # type: ignore[arg-type]
        )
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(f"{source}:{line_no}: {exc}") from None


def _load_csv(path: Path) -> List[TraceRecord]:
    import csv

    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise TraceFormatError(f"{path}: trace is empty")
        header = [name.strip() for name in reader.fieldnames]
        unknown = set(header) - set(_FIELDS)
        if unknown:
            raise TraceFormatError(
                f"{path}: unknown column(s) {sorted(unknown)}; "
                f"expected {list(_FIELDS)}"
            )
        return [
            _parse_record(
                {k.strip(): v for k, v in row.items() if k is not None},
                str(path),
                line_no,
            )
            for line_no, row in enumerate(reader, start=2)
        ]


def _load_jsonl(path: Path) -> List[TraceRecord]:
    records: List[TraceRecord] = []
    with path.open() as handle:
        for line_no, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{path}:{line_no}: invalid JSON ({exc.msg})"
                ) from None
            if not isinstance(raw, dict):
                raise TraceFormatError(
                    f"{path}:{line_no}: expected a JSON object per line"
                )
            records.append(_parse_record(raw, str(path), line_no))
    return records


def load_trace(
    path: Union[str, Path], sort: bool = False
) -> Tuple[TraceRecord, ...]:
    """Load and validate a trace file (``.csv`` or ``.jsonl``).

    Parameters
    ----------
    path:
        Trace file; the extension selects the parser.
    sort:
        When True, records are stably sorted by ``t_offset_s`` before
        validation — for traces merged from per-client logs.  When False
        (default), an out-of-order record is a load error.
    """
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"trace file not found: {path}")
    suffix = path.suffix.lower()
    if suffix == ".csv":
        records = _load_csv(path)
    elif suffix == ".jsonl":
        records = _load_jsonl(path)
    else:
        raise TraceFormatError(
            f"{path}: unsupported trace extension {suffix!r} "
            "(use .csv or .jsonl)"
        )
    if sort:
        records.sort(key=lambda record: record.t_offset_s)
    validate_trace(records, source=str(path))
    return tuple(records)


def records_by_job(
    records: Sequence[TraceRecord],
) -> Dict[str, Tuple[TraceRecord, ...]]:
    """Group a trace into per-job sub-traces, preserving order."""
    grouped: Dict[str, List[TraceRecord]] = {}
    for record in records:
        grouped.setdefault(record.job, []).append(record)
    return {job: tuple(records) for job, records in grouped.items()}
