"""The pluggable workload axis: named pattern factories.

Workloads join scenarios, campaigns and mechanisms as the fourth
registry-driven plugin axis.  A *workload factory* is a callable returning
a :class:`~repro.workloads.patterns.Pattern`; registering it in
:data:`WORKLOADS` makes it reachable everywhere by name::

    @WORKLOADS.register("my-load", description="...")
    def _my_load(total_mib: float = 64.0) -> Pattern: ...

    # CLI:       run quickstart --workload my-load --workload-param total_mib=16
    # campaigns: ParameterAxis("workload", ("my-load", "poisson", ...))
    # Python:    spec.with_workload("my-load", {"total_mib": 16})

Factory keyword defaults double as the parameter schema (shared
:class:`~repro.registry.FactoryRegistry` machinery), and the numpy-style
``Parameters`` sections of the factory docstrings feed
``workload describe`` — parameter docs live next to the defaults, never in
hand-maintained help strings.

Volume parameters are in **MiB** (``*_mib``) so CLI overrides stay humane;
factories convert to bytes.  Seeded factories take a ``seed`` that
:meth:`~repro.scenarios.spec.ScenarioSpec.with_workload` defaults to the
run's seed, keeping campaign cells' derived seeds flowing into pattern
randomness automatically.
"""

from __future__ import annotations

from typing import List

from repro.registry import FactoryRegistry, RegisteredFactory
from repro.workloads.patterns import (
    BurstPattern,
    DelayedContinuousPattern,
    MixedReadWritePattern,
    OnOffPattern,
    Pattern,
    PhasedPattern,
    PoissonArrivalPattern,
    SequentialReadPattern,
    SequentialWritePattern,
    TraceReplayPattern,
)
from repro.workloads.trace import EXAMPLE_TRACE, load_trace

__all__ = ["WorkloadRegistry", "WORKLOADS"]

MIB = 1 << 20


class WorkloadRegistry(FactoryRegistry):
    """Name → pattern-factory mapping behind ``--workload`` everywhere."""

    kind = "workload"
    override_flag = "--workload-param"

    def build(self, name: str, **overrides) -> Pattern:
        """Materialize the named workload pattern with overrides."""
        pattern = self.get(name).build(**overrides)
        if not isinstance(pattern, Pattern):
            raise TypeError(
                f"workload {name!r} factory returned "
                f"{type(pattern).__name__}, expected a Pattern"
            )
        return pattern

    def _describe_built(self, entry: RegisteredFactory) -> List[str]:
        pattern = self.build(entry.name)
        lines = ["", f"pattern: {type(pattern).__name__}"]
        doc = (type(pattern).__doc__ or "").strip().split("\n")[0]
        if doc:
            lines.append(f"  {doc}")
        hint = pattern.total_bytes_hint()
        volume = f"{hint / MIB:g} MiB" if hint is not None else "open-ended"
        lines.append(f"default volume: {volume}")
        return lines


#: The process-wide default registry; built-in workloads self-register on
#: ``import repro.workloads``.
WORKLOADS = WorkloadRegistry()


# ---------------------------------------------------------------------------
# Built-in workloads: the paper's Filebench shapes + the irregular-demand
# vocabulary (reads, mixed streams, stochastic arrivals, traces).
# ---------------------------------------------------------------------------


@WORKLOADS.register(
    "seq-write",
    description="file-per-process sequential write (the paper's writers)",
)
def _seq_write(
    total_mib: float = 128.0, start_delay_s: float = 0.0
) -> SequentialWritePattern:
    """One private file written sequentially, the paper's base shape.

    Parameters
    ----------
    total_mib:
        Volume written by each process, in MiB.
    start_delay_s:
        Idle time before the first RPC, staggering process start.
    """
    return SequentialWritePattern(
        total_bytes=int(total_mib * MIB), start_delay_s=start_delay_s
    )


@WORKLOADS.register(
    "seq-read",
    description="file-per-process sequential read (checkpoint restore/staging)",
)
def _seq_read(
    total_mib: float = 128.0, start_delay_s: float = 0.0
) -> SequentialReadPattern:
    """One private file read sequentially over the same NRS/TBF path.

    Parameters
    ----------
    total_mib:
        Volume read by each process, in MiB.
    start_delay_s:
        Idle time before the first RPC.
    """
    return SequentialReadPattern(
        total_bytes=int(total_mib * MIB), start_delay_s=start_delay_s
    )


@WORKLOADS.register(
    "mixed-rw",
    description="deterministic read/write interleave at a target read fraction",
)
def _mixed_rw(
    total_mib: float = 128.0,
    read_fraction: float = 0.5,
    chunk_mib: float = 8.0,
    start_delay_s: float = 0.0,
) -> MixedReadWritePattern:
    """Analysis-style stream alternating ingest reads and result writes.

    Parameters
    ----------
    total_mib:
        Total volume moved (reads + writes), in MiB.
    read_fraction:
        Fraction of chunks issued as reads, in [0, 1]; the interleave is
        deterministic (largest-remainder), not sampled.
    chunk_mib:
        Chunk granularity of the interleave, in MiB.
    start_delay_s:
        Idle time before the first chunk.
    """
    return MixedReadWritePattern(
        total_bytes=int(total_mib * MIB),
        read_fraction=read_fraction,
        chunk_bytes=int(chunk_mib * MIB),
        start_delay_s=start_delay_s,
    )


@WORKLOADS.register(
    "burst",
    description="periodic short bursts (the paper's §IV-E/F bursty jobs)",
)
def _burst(
    burst_mib: float = 64.0,
    interval_s: float = 2.0,
    count: int = 8,
    start_delay_s: float = 0.0,
    pace: str = "gap",
) -> BurstPattern:
    """Write-then-idle loop, the paper's bursty Filebench personality.

    Parameters
    ----------
    burst_mib:
        Volume of each burst, in MiB.
    interval_s:
        Idle gap after each burst ("gap" pace) or fixed burst cadence
        ("cadence" pace).
    count:
        Number of bursts.
    start_delay_s:
        Offset of the first burst, interleaving several jobs' bursts.
    pace:
        "gap" (sleep after completion) or "cadence" (fixed period with
        back-pressure on overrun).
    """
    return BurstPattern(
        burst_bytes=int(burst_mib * MIB),
        interval_s=interval_s,
        count=count,
        start_delay_s=start_delay_s,
        pace=pace,
    )


@WORKLOADS.register(
    "delayed-continuous",
    description="continuous stream switching on mid-run (the §IV-F trigger)",
)
def _delayed_continuous(
    delay_s: float = 5.0, total_mib: float = 256.0
) -> DelayedContinuousPattern:
    """Continuous sequential stream that starts ``delay_s`` into the run.

    Parameters
    ----------
    delay_s:
        Simulated seconds before the stream switches on.
    total_mib:
        Volume written once active, in MiB.
    """
    return DelayedContinuousPattern(
        delay_s=delay_s, total_bytes=int(total_mib * MIB)
    )


@WORKLOADS.register(
    "poisson",
    description="memoryless arrivals: exponential gaps between fixed-size ops",
)
def _poisson(
    rate_per_s: float = 8.0,
    op_mib: float = 4.0,
    count: int = 64,
    read_fraction: float = 0.0,
    seed: int = 0,
    start_delay_s: float = 0.0,
) -> PoissonArrivalPattern:
    """Stochastic request stream with exponential inter-arrival gaps.

    Parameters
    ----------
    rate_per_s:
        Mean arrival rate (ops per simulated second).
    op_mib:
        Volume of each op, in MiB.
    count:
        Total ops issued.
    read_fraction:
        Probability each op is a read instead of a write.
    seed:
        Root seed of the pattern's RNG substreams; each client process
        derives an independent stream from it (reproducible across
        worker processes).
    start_delay_s:
        Idle time before the first draw.
    """
    return PoissonArrivalPattern(
        rate_per_s=rate_per_s,
        op_bytes=int(op_mib * MIB),
        count=count,
        read_fraction=read_fraction,
        seed=seed,
        start_delay_s=start_delay_s,
    )


@WORKLOADS.register(
    "on-off",
    description="alternating active/idle phases with optional seeded jitter",
)
def _on_off(
    on_mib: float = 64.0,
    on_s: float = 2.0,
    off_s: float = 2.0,
    cycles: int = 6,
    jitter_s: float = 0.0,
    seed: int = 0,
    start_delay_s: float = 0.0,
) -> OnOffPattern:
    """Markov-style on/off source: write hard, go idle, repeat.

    Parameters
    ----------
    on_mib:
        Volume written during each active phase, in MiB.
    on_s:
        Nominal active-phase length; early finishers idle out the rest.
    off_s:
        Idle-phase length between active phases.
    cycles:
        Number of on/off cycles.
    jitter_s:
        Uniform ±jitter applied to each idle phase (seeded per client),
        de-phasing multiple on/off jobs.
    seed:
        Root seed for the jitter draws.
    start_delay_s:
        Idle time before the first cycle.
    """
    return OnOffPattern(
        on_bytes=int(on_mib * MIB),
        on_s=on_s,
        off_s=off_s,
        cycles=cycles,
        jitter_s=jitter_s,
        seed=seed,
        start_delay_s=start_delay_s,
    )


@WORKLOADS.register(
    "diurnal",
    description="day/night load cycles: Poisson day traffic, sparse nights",
)
def _diurnal(
    day_rate_per_s: float = 12.0,
    night_rate_per_s: float = 2.0,
    phase_s: float = 4.0,
    days: int = 2,
    op_mib: float = 2.0,
    read_fraction: float = 0.25,
    seed: int = 0,
) -> PhasedPattern:
    """Phased composite alternating a busy "day" and a quiet "night".

    Each phase is a Poisson stream sized so its expected span is
    ``phase_s`` (``count = rate × phase_s``); ``days`` cycles run back to
    back.  The service-facing effect is a demand level that swings by
    ``day_rate / night_rate`` every phase — the slow-timescale pattern
    adaptive borrowing should exploit.

    Parameters
    ----------
    day_rate_per_s:
        Mean op arrival rate during day phases.
    night_rate_per_s:
        Mean op arrival rate during night phases.
    phase_s:
        Nominal length of each day and each night phase.
    days:
        Number of day+night cycles.
    op_mib:
        Volume of each op, in MiB.
    read_fraction:
        Probability each op is a read.
    seed:
        Root seed for the arrival draws.
    """
    if day_rate_per_s <= 0 or night_rate_per_s <= 0:
        raise ValueError("rates must be positive")
    if phase_s <= 0:
        raise ValueError("phase_s must be positive")
    if days <= 0:
        raise ValueError("days must be positive")

    def _phase(rate: float, offset: int) -> PoissonArrivalPattern:
        return PoissonArrivalPattern(
            rate_per_s=rate,
            op_bytes=int(op_mib * MIB),
            count=max(1, int(rate * phase_s)),
            read_fraction=read_fraction,
            seed=seed + offset,
        )

    return PhasedPattern(
        phases=(_phase(day_rate_per_s, 0), _phase(night_rate_per_s, 1)),
        repeat=days,
    )


@WORKLOADS.register(
    "trace-replay",
    description="replay a recorded (t_offset_s, job, op, nbytes) trace",
)
def _trace_replay(
    trace: str = "",
    job: str = "",
    time_scale: float = 1.0,
    data_scale: float = 1.0,
    sort: bool = False,
) -> TraceReplayPattern:
    """Replay recorded requests at their trace offsets.

    Parameters
    ----------
    trace:
        Path to a ``.csv`` or ``.jsonl`` trace file (see
        :mod:`repro.workloads.trace` for the format); empty uses the
        bundled example trace.
    job:
        Replay only this job's records; empty replays the whole trace
        through one process.
    time_scale:
        Multiplier on arrival offsets (compress/stretch the trace).
    data_scale:
        Multiplier on request volumes.
    sort:
        Stably sort records by offset instead of rejecting out-of-order
        traces (for traces merged from per-client logs).
    """
    records = load_trace(trace or EXAMPLE_TRACE, sort=sort)
    if job:
        filtered = tuple(r for r in records if r.job == job)
        if not filtered:
            jobs = sorted({r.job for r in records})
            raise ValueError(
                f"trace has no records for job {job!r}; jobs present: {jobs}"
            )
        records = filtered
    return TraceReplayPattern(
        records=records, time_scale=time_scale, data_scale=data_scale
    )
