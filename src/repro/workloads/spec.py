"""Job and process specifications consumed by the cluster builder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.workloads.patterns import Pattern

__all__ = ["ProcessSpec", "JobSpec"]


@dataclass(frozen=True)
class ProcessSpec:
    """One client process of a job.

    Parameters
    ----------
    pattern:
        What the process does (see :mod:`repro.workloads.patterns`).
    window:
        RPCs kept in flight by this process (Lustre max_rpcs_in_flight).
    """

    pattern: Pattern
    window: int = 8

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")


@dataclass(frozen=True)
class JobSpec:
    """One HPC job: identity, compute allocation and its I/O processes.

    Parameters
    ----------
    job_id:
        Lustre JobID; must be unique within an experiment.
    nodes:
        Compute nodes allocated by the batch scheduler — determines the
        paper's priority ``p_x`` (Eq. 1).
    processes:
        The job's client processes (the paper's jobs run 2 or 16).
    """

    job_id: str
    nodes: int
    processes: Tuple[ProcessSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.nodes <= 0:
            raise ValueError(
                f"job {self.job_id!r}: nodes must be positive, got {self.nodes}"
            )
        if not self.processes:
            raise ValueError(f"job {self.job_id!r}: needs at least one process")
        object.__setattr__(self, "processes", tuple(self.processes))

    @property
    def total_bytes_hint(self) -> Optional[int]:
        """Upper bound on the job's total I/O volume, if statically known."""
        total = 0
        for proc in self.processes:
            hint = proc.pattern.total_bytes_hint()
            if hint is None:
                return None
            total += hint
        return total


def validate_jobs(jobs: List[JobSpec]) -> None:
    """Cross-job validation: unique ids, non-empty set."""
    if not jobs:
        raise ValueError("at least one job is required")
    seen = set()
    for job in jobs:
        if job.job_id in seen:
            raise ValueError(f"duplicate job_id {job.job_id!r}")
        seen.add(job.job_id)
