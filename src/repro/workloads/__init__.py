"""Synthetic and trace-driven workloads: the pluggable workload axis.

The paper drives every experiment with Filebench [36] jobs combining three
I/O shapes; this package keeps those and grows the vocabulary into a
registry-driven plugin axis mirroring scenarios, campaigns and mechanisms:

* :mod:`repro.workloads.patterns` — pattern objects whose ``program(io)``
  generator runs on a simulated client: sequential writers *and readers*,
  mixed read/write streams, periodic bursts, delayed continuous streams,
  Poisson arrivals, on/off phases, phased (diurnal) composites, and trace
  replay;
* :mod:`repro.workloads.trace` — the ``(t_offset_s, job, op, nbytes)``
  trace format, CSV/JSONL loaders with validation, and the bundled
  example trace;
* :mod:`repro.workloads.registry` — :data:`~repro.workloads.registry.WORKLOADS`,
  the named factory registry behind ``workload list|describe``,
  ``run --workload NAME --workload-param K=V``, and the reserved
  ``workload`` campaign axis;
* :mod:`repro.workloads.spec` — the job/process description consumed by
  the cluster builder;
* :mod:`repro.workloads.scenarios` — the paper's three §IV-D/E/F
  evaluation mixes plus the post-paper mixes (burst storms, elastic
  churn), with scale knobs so benches run in seconds.
"""

from repro.workloads.patterns import (
    BurstPattern,
    DelayedContinuousPattern,
    MixedReadWritePattern,
    OnOffPattern,
    Pattern,
    PhasedPattern,
    PoissonArrivalPattern,
    SequentialReadPattern,
    SequentialWritePattern,
    TraceReplayPattern,
)
from repro.workloads.registry import WORKLOADS, WorkloadRegistry
from repro.workloads.scenarios import (
    ScenarioConfig,
    scenario_allocation,
    scenario_burst_storm,
    scenario_elastic_churn,
    scenario_recompensation,
    scenario_redistribution,
)
from repro.workloads.spec import JobSpec, ProcessSpec
from repro.workloads.trace import (
    EXAMPLE_TRACE,
    TraceFormatError,
    TraceRecord,
    load_trace,
    records_by_job,
    validate_trace,
)

__all__ = [
    "BurstPattern",
    "DelayedContinuousPattern",
    "EXAMPLE_TRACE",
    "JobSpec",
    "MixedReadWritePattern",
    "OnOffPattern",
    "Pattern",
    "PhasedPattern",
    "PoissonArrivalPattern",
    "ProcessSpec",
    "ScenarioConfig",
    "SequentialReadPattern",
    "SequentialWritePattern",
    "TraceFormatError",
    "TraceRecord",
    "TraceReplayPattern",
    "WORKLOADS",
    "WorkloadRegistry",
    "load_trace",
    "records_by_job",
    "scenario_allocation",
    "scenario_burst_storm",
    "scenario_elastic_churn",
    "scenario_recompensation",
    "scenario_redistribution",
    "validate_trace",
]
