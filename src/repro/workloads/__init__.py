"""Synthetic workloads modelled after the paper's Filebench personalities.

The paper drives every experiment with Filebench [36] jobs that combine three
I/O shapes; :mod:`repro.workloads.patterns` provides each as a *pattern*
object whose ``program(io)`` generator runs on a simulated client:

* file-per-process **sequential** streams (the 16-process writers),
* periodic short **bursts** of varying volume and interval,
* **delayed continuous** streams that switch on mid-experiment.

:mod:`repro.workloads.spec` defines the job/process description consumed by
the cluster builder, and :mod:`repro.workloads.scenarios` encodes the three
evaluation scenarios of §IV-D/E/F exactly (priorities, process counts, burst
interleavings, 20/50/80 s delays) with scale knobs so benches run in seconds
while the full-size paper configuration remains one flag away.
"""

from repro.workloads.patterns import (
    BurstPattern,
    DelayedContinuousPattern,
    Pattern,
    SequentialWritePattern,
)
from repro.workloads.scenarios import (
    ScenarioConfig,
    scenario_allocation,
    scenario_burst_storm,
    scenario_elastic_churn,
    scenario_recompensation,
    scenario_redistribution,
)
from repro.workloads.spec import JobSpec, ProcessSpec

__all__ = [
    "BurstPattern",
    "DelayedContinuousPattern",
    "JobSpec",
    "Pattern",
    "ProcessSpec",
    "ScenarioConfig",
    "SequentialWritePattern",
    "scenario_allocation",
    "scenario_burst_storm",
    "scenario_elastic_churn",
    "scenario_recompensation",
    "scenario_redistribution",
]
