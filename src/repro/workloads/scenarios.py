"""The paper's three evaluation scenarios (§IV-D, §IV-E, §IV-F).

Each function returns a :class:`Scenario` — job specs plus a suggested
duration — matching the published job mix.  Two knobs rescale the experiment
without changing its *shape*:

``data_scale``
    multiplies every volume (file sizes, burst sizes).  ``1.0`` is the
    paper's configuration (1 GiB files).
``time_scale``
    multiplies every delay/gap/duration (burst cadence, the 20/50/80 s
    §IV-F delays).

Scaling both by the same factor preserves each burst's size *relative to*
its period, which is what the control behaviour depends on; benches use
``data_scale = time_scale = 0.1``.

Substitution note (DESIGN.md §2): the paper's "continuous" jobs are 16
processes each writing a 1 GiB file, which on the CloudLab SATA-SSD OST
lasts the whole experiment.  Our simulated OST's speed is configurable, so
the continuous jobs are instead sized from ``capacity_hint_mib_s ×
duration`` — same role (demand that outlives the observation window),
substrate-appropriate volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.workloads.patterns import (
    BurstPattern,
    DelayedContinuousPattern,
    SequentialWritePattern,
)
from repro.workloads.spec import JobSpec, ProcessSpec
from repro.sim.rng import RngStreams

__all__ = [
    "BENCH_SCALE",
    "ScenarioConfig",
    "Scenario",
    "scenario_allocation",
    "scenario_redistribution",
    "scenario_recompensation",
    "scenario_burst_storm",
    "scenario_elastic_churn",
]

GIB = 1 << 30
MIB = 1 << 20

#: The repository's reduced "bench" scale: 1/10 data, 1/10 time (see
#: ``repro.experiments.common.bench_scale``).  Registered scenario factories
#: and the figure adapters share this one constant.
BENCH_SCALE = 0.1


@dataclass(frozen=True)
class ScenarioConfig:
    """Scale knobs shared by all scenario constructors."""

    data_scale: float = 1.0
    time_scale: float = 1.0
    heavy_procs: int = 16  # processes in the paper's "16 process" jobs
    window: int = 8  # RPCs in flight per process
    #: OST bandwidth the experiment will run against; used only to size the
    #: continuous jobs so they span the observation window.
    capacity_hint_mib_s: float = 1024.0

    def __post_init__(self) -> None:
        if self.data_scale <= 0 or self.time_scale <= 0:
            raise ValueError("scales must be positive")
        if self.heavy_procs <= 0 or self.window <= 0:
            raise ValueError("heavy_procs and window must be positive")
        if self.capacity_hint_mib_s <= 0:
            raise ValueError("capacity_hint_mib_s must be positive")

    def bytes_(self, paper_bytes: float) -> int:
        """Scale a paper-configuration volume, ≥ 1 MiB to stay meaningful."""
        return max(MIB, int(paper_bytes * self.data_scale))

    def secs(self, paper_seconds: float) -> float:
        return paper_seconds * self.time_scale

    def continuous_bytes_per_proc(
        self, duration_s: float, procs: int, saturation: float = 1.25
    ) -> int:
        """Volume that keeps ``procs`` writers busy for ``duration_s``."""
        total = self.capacity_hint_mib_s * MIB * duration_s * saturation
        return max(MIB, int(total / procs))


@dataclass(frozen=True)
class Scenario:
    """A ready-to-run job mix."""

    name: str
    jobs: List[JobSpec]
    #: Cap on simulated duration; None = run until all jobs complete.
    duration_s: Optional[float]
    description: str = ""

    @property
    def nodes(self) -> Dict[str, int]:
        return {job.job_id: job.nodes for job in self.jobs}


def scenario_allocation(cfg: ScenarioConfig = ScenarioConfig()) -> Scenario:
    """§IV-D: four identical I/O-intensive jobs, priorities 10/10/30/50 %.

    Each job runs ``heavy_procs`` processes writing a private (scaled) 1 GiB
    file sequentially.  Higher-priority jobs receive more bandwidth under
    priority-aware control and therefore finish earlier, producing the
    shrinking active set the experiment is about.
    """
    file_bytes = cfg.bytes_(1 * GIB)
    jobs = []
    for idx, nodes in enumerate((1, 1, 3, 5), start=1):
        processes = tuple(
            ProcessSpec(SequentialWritePattern(file_bytes), window=cfg.window)
            for _ in range(cfg.heavy_procs)
        )
        jobs.append(JobSpec(job_id=f"job{idx}", nodes=nodes, processes=processes))
    return Scenario(
        name="allocation",
        jobs=jobs,
        duration_s=None,
        description=(
            "4 identical sequential-write jobs, priorities 10/10/30/50%; "
            "runs until all complete"
        ),
    )


def scenario_redistribution(
    cfg: ScenarioConfig = ScenarioConfig(),
) -> Scenario:
    """§IV-E: three high-priority bursty jobs vs one low-priority hog.

    Jobs 1–3 (30 % each): 2 processes issuing periodic short bursts
    (write-then-sleep) with per-job volumes/gaps chosen to interleave on
    the server.  Job 4 (10 %): ``heavy_procs`` processes with continuous
    demand from t=0 that outlives the observation window.
    """
    duration = cfg.secs(60.0)
    burst_params = [  # (burst MiB, gap s, first-burst delay s)
        (96, 4.0, 0.0),
        (128, 5.0, 1.3),
        (64, 3.5, 2.1),
    ]
    jobs = []
    for idx, (mib, gap, delay) in enumerate(burst_params, start=1):
        gap_s = cfg.secs(gap)
        count = max(2, int((duration - cfg.secs(delay)) / gap_s))
        processes = tuple(
            ProcessSpec(
                BurstPattern(
                    burst_bytes=cfg.bytes_(mib * MIB),
                    interval_s=gap_s,
                    count=count,
                    # The second process is offset half a period so the two
                    # streams interleave, as the paper's Filebench setup does.
                    start_delay_s=cfg.secs(delay) + proc * gap_s / 2,
                ),
                window=cfg.window,
            )
            for proc in range(2)
        )
        jobs.append(JobSpec(job_id=f"job{idx}", nodes=3, processes=processes))

    hog_bytes = cfg.continuous_bytes_per_proc(duration, cfg.heavy_procs)
    hog = JobSpec(
        job_id="job4",
        nodes=1,
        processes=tuple(
            ProcessSpec(SequentialWritePattern(hog_bytes), window=cfg.window)
            for _ in range(cfg.heavy_procs)
        ),
    )
    jobs.append(hog)
    return Scenario(
        name="redistribution",
        jobs=jobs,
        duration_s=duration,
        description=(
            "jobs 1-3: high priority (30%), interleaved periodic bursts; "
            "job 4: low priority (10%), continuous 16-process stream"
        ),
    )


def scenario_recompensation(
    cfg: ScenarioConfig = ScenarioConfig(),
) -> Scenario:
    """§IV-F: equal priorities; delayed continuous streams trigger reclaim.

    All four jobs have 25 % priority.  Jobs 1–3 run one small-burst process
    (constant gap, volumes differing per job — job 3's bursts are the
    smallest) plus one continuous process delayed by 20/50/80 s.  Job 4 runs
    ``heavy_procs`` continuous processes from t=0, so it borrows heavily
    from the delayed jobs early on and must give tokens back later.
    """
    duration = cfg.secs(120.0)
    params = [  # (burst MiB, gap s, continuous-start delay s)
        (48, 3.0, 20.0),
        (32, 4.0, 50.0),
        (24, 5.0, 80.0),  # job3: largest delay, smallest burst (per paper)
    ]
    jobs = []
    for idx, (mib, gap, delay) in enumerate(params, start=1):
        gap_s = cfg.secs(gap)
        count = max(2, int(duration / gap_s))
        burst_proc = ProcessSpec(
            BurstPattern(
                burst_bytes=cfg.bytes_(mib * MIB),
                interval_s=gap_s,
                count=count,
            ),
            window=cfg.window,
        )
        # The delayed stream runs to the end of the window from its start.
        stream_duration = max(duration - cfg.secs(delay), cfg.secs(10.0))
        continuous_proc = ProcessSpec(
            DelayedContinuousPattern(
                delay_s=cfg.secs(delay),
                total_bytes=cfg.continuous_bytes_per_proc(
                    stream_duration, procs=4, saturation=1.0
                ),
            ),
            window=cfg.window,
        )
        jobs.append(
            JobSpec(
                job_id=f"job{idx}",
                nodes=1,
                processes=(burst_proc, continuous_proc),
            )
        )

    hog_bytes = cfg.continuous_bytes_per_proc(
        duration, cfg.heavy_procs, saturation=1.0
    )
    hog = JobSpec(
        job_id="job4",
        nodes=1,
        processes=tuple(
            ProcessSpec(SequentialWritePattern(hog_bytes), window=cfg.window)
            for _ in range(cfg.heavy_procs)
        ),
    )
    jobs.append(hog)
    return Scenario(
        name="recompensation",
        jobs=jobs,
        duration_s=duration,
        description=(
            "4 equal-priority jobs; jobs 1-3 lend early (delayed continuous "
            "streams at 20/50/80s) while job 4 borrows from t=0"
        ),
    )


def scenario_burst_storm(
    cfg: ScenarioConfig = ScenarioConfig(),
    n_jobs: int = 6,
    seed: int = 0,
    duration_s: float = 40.0,
    with_hog: bool = True,
) -> Scenario:
    """Mixed-priority burst storm: many jobs, randomized shapes (seeded).

    ``n_jobs`` bursty jobs with node counts (priorities), burst volumes,
    cadences, process counts and phase offsets all drawn from a named
    :class:`~repro.sim.rng.RngStreams` substream — the adversarial
    many-tenant regime none of the
    paper's fixed four-job scripts could express.  An optional low-priority
    continuous hog keeps the OST saturated between bursts so redistribution
    stays observable.  The same seed always yields the identical job mix.
    """
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    rng = RngStreams(seed=seed).get_stdlib("scenario.burst-storm")
    duration = cfg.secs(duration_s)
    jobs: List[JobSpec] = []
    for idx in range(1, n_jobs + 1):
        nodes = rng.randint(1, 8)
        n_procs = rng.randint(1, 3)
        processes = []
        for _ in range(n_procs):
            gap_s = cfg.secs(rng.uniform(2.0, 6.0))
            delay_s = cfg.secs(rng.uniform(0.0, 4.0))
            count = max(2, int((duration - delay_s) / gap_s))
            processes.append(
                ProcessSpec(
                    BurstPattern(
                        burst_bytes=cfg.bytes_(rng.choice((16, 32, 64, 96, 128)) * MIB),
                        interval_s=gap_s,
                        count=count,
                        start_delay_s=delay_s,
                    ),
                    window=cfg.window,
                )
            )
        jobs.append(
            JobSpec(job_id=f"storm{idx}", nodes=nodes, processes=tuple(processes))
        )
    if with_hog:
        hog_bytes = cfg.continuous_bytes_per_proc(duration, 4, saturation=1.0)
        jobs.append(
            JobSpec(
                job_id="hog",
                nodes=1,
                processes=tuple(
                    ProcessSpec(SequentialWritePattern(hog_bytes), window=cfg.window)
                    for _ in range(4)
                ),
            )
        )
    return Scenario(
        name="burst-storm",
        jobs=jobs,
        duration_s=duration,
        description=(
            f"{n_jobs} mixed-priority bursty jobs with seeded-random shapes "
            f"(seed={seed})" + (" + continuous low-priority hog" if with_hog else "")
        ),
    )


def scenario_elastic_churn(
    cfg: ScenarioConfig = ScenarioConfig(),
    waves: int = 3,
    jobs_per_wave: int = 2,
    wave_gap_s: float = 8.0,
    file_mib: float = 192.0,
    seed: int = 0,
) -> Scenario:
    """Elastic job churn: whole jobs arrive in waves, finish, and leave.

    Wave ``w`` starts ``w * wave_gap_s`` into the run; each of its jobs
    writes a fixed volume and departs, so the active set repeatedly grows
    and shrinks — continuous arrival *and* departure churn, where the
    paper's scripts only ever shrink (§IV-D) or hold steady (§IV-E/F).
    Node counts are drawn per job from a named
    :class:`~repro.sim.rng.RngStreams` substream, so every wave mixes
    priorities.
    """
    if waves <= 0 or jobs_per_wave <= 0:
        raise ValueError("waves and jobs_per_wave must be positive")
    if wave_gap_s <= 0:
        raise ValueError("wave_gap_s must be positive")
    rng = RngStreams(seed=seed).get_stdlib("scenario.elastic-churn")
    jobs: List[JobSpec] = []
    for wave in range(waves):
        arrival_s = cfg.secs(wave * wave_gap_s)
        for j in range(jobs_per_wave):
            nodes = rng.choice((1, 2, 4))
            n_procs = rng.randint(2, 4)
            processes = tuple(
                ProcessSpec(
                    SequentialWritePattern(
                        cfg.bytes_(file_mib * MIB), start_delay_s=arrival_s
                    ),
                    window=cfg.window,
                )
                for _ in range(n_procs)
            )
            jobs.append(
                JobSpec(
                    job_id=f"wave{wave + 1}.job{j + 1}",
                    nodes=nodes,
                    processes=processes,
                )
            )
    return Scenario(
        name="elastic-churn",
        jobs=jobs,
        duration_s=None,
        description=(
            f"{waves} waves x {jobs_per_wave} jobs arriving every "
            f"{wave_gap_s:g}s (scaled), each departing when its files are "
            f"written (seed={seed})"
        ),
    )
