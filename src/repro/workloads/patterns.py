"""I/O pattern primitives.

A pattern is a small immutable object describing *what one client process
does*; its :meth:`~Pattern.program` method returns the generator the client
executes.  Patterns compose into :class:`~repro.workloads.spec.ProcessSpec`
entries, one per Filebench-style process, and are resolvable by name with
parameter overrides through :data:`repro.workloads.registry.WORKLOADS` —
the workload counterpart of the scenario/campaign/mechanism registries.

Every pattern here is a frozen dataclass: hashable, picklable (so specs
embedding them survive ``--jobs N`` campaign fan-out) and stateless — any
per-run state lives in the generator frame, and any randomness is drawn
from a :class:`~repro.sim.rng.RngStreams` substream derived from the
pattern's own ``seed`` plus the executing client's identity, so one shared
pattern instance yields distinct-but-reproducible streams per process.

The vocabulary spans the paper's Filebench shapes (sequential writers,
periodic bursts, delayed continuous streams) and the irregular-demand
shapes trace-driven evaluations call for: sequential *reads*, mixed
read/write streams, Poisson arrivals, on/off (bursty-idle) phases, phased
composites (diurnal load), and replay of recorded traces
(:class:`TraceReplayPattern`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence, Tuple

from repro.lustre.client import IoHandle
from repro.sim.rng import RngStreams
from repro.workloads.trace import TraceRecord, validate_trace

__all__ = [
    "Pattern",
    "SequentialWritePattern",
    "SequentialReadPattern",
    "MixedReadWritePattern",
    "BurstPattern",
    "DelayedContinuousPattern",
    "PoissonArrivalPattern",
    "OnOffPattern",
    "PhasedPattern",
    "TraceReplayPattern",
]


class Pattern:
    """Base class for I/O patterns (duck-typed: only ``program`` matters)."""

    def program(self, io: IoHandle) -> Generator:  # pragma: no cover - abstract
        raise NotImplementedError

    def total_bytes_hint(self) -> Optional[int]:
        """Upper bound on bytes this pattern moves, if statically known."""
        return None

    def stream(self, io: IoHandle, kind: str = "pattern"):
        """The pattern's RNG substream for the executing client.

        Derived from the pattern's ``seed`` attribute (0 when the pattern
        has none), the client's job/process identity, and the handle's
        invocation sequence number.  Every process sharing one pattern
        instance draws an independent stream; every *invocation* on one
        process (each phase of a repeated :class:`PhasedPattern`) draws a
        fresh stream rather than replaying the first; and the whole
        construction is name-derived, so the same spec replays
        bit-identically in any worker process.
        """
        seed = int(getattr(self, "seed", 0))
        name = f"{kind}/{io.job_id}/{io.client_id}/{io.next_stream_seq()}"
        return RngStreams(seed).get(name)


@dataclass(frozen=True)
class SequentialWritePattern(Pattern):
    """File-per-process sequential write of ``total_bytes``.

    The paper's 16-process jobs each write a private 1 GiB file this way.
    An optional ``start_delay_s`` staggers process start.
    """

    total_bytes: int
    start_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ValueError(f"total_bytes must be positive, got {self.total_bytes}")
        if self.start_delay_s < 0:
            raise ValueError(f"start_delay_s must be >= 0, got {self.start_delay_s}")

    def total_bytes_hint(self) -> int:
        return self.total_bytes

    def program(self, io: IoHandle) -> Generator:
        if self.start_delay_s:
            yield io.sleep(self.start_delay_s)
        yield from io.write(self.total_bytes)


@dataclass(frozen=True)
class BurstPattern(Pattern):
    """Periodic short I/O bursts (§IV-E/F job shape).

    The process writes a ``burst_bytes`` chunk sequentially, idles, writes
    the next chunk, … for ``count`` bursts.  ``start_delay_s`` offsets the
    first burst so several jobs' bursts interleave on the server, as the
    paper arranges.

    Two pacing modes:

    ``"gap"`` (default)
        sleep ``interval_s`` *after each burst completes* — the
        write-then-sleep loop a Filebench personality executes.  Faster
        burst service directly shortens the job, which is how the paper's
        Fig. 6/8 bandwidth gains for bursty jobs arise.
    ``"cadence"``
        start bursts at a fixed period of ``interval_s`` regardless of
        service time (a hard-real-time producer); a burst that overruns
        delays subsequent ones (back-pressure).
    """

    burst_bytes: int
    interval_s: float
    count: int
    start_delay_s: float = 0.0
    pace: str = "gap"

    def __post_init__(self) -> None:
        if self.burst_bytes <= 0:
            raise ValueError(f"burst_bytes must be positive, got {self.burst_bytes}")
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {self.interval_s}")
        if self.count <= 0:
            raise ValueError(f"count must be positive, got {self.count}")
        if self.start_delay_s < 0:
            raise ValueError(f"start_delay_s must be >= 0, got {self.start_delay_s}")
        if self.pace not in ("gap", "cadence"):
            raise ValueError(f"pace must be 'gap' or 'cadence', got {self.pace!r}")

    def total_bytes_hint(self) -> int:
        return self.burst_bytes * self.count

    def program(self, io: IoHandle) -> Generator:
        if self.start_delay_s:
            yield io.sleep(self.start_delay_s)
        for i in range(self.count):
            burst_started = io.now
            yield from io.write(self.burst_bytes)
            if i == self.count - 1:
                break
            if self.pace == "gap":
                yield io.sleep(self.interval_s)
            else:  # cadence
                next_start = burst_started + self.interval_s
                if next_start > io.now:
                    yield io.sleep(next_start - io.now)


@dataclass(frozen=True)
class DelayedContinuousPattern(Pattern):
    """Continuous sequential stream that switches on after ``delay_s``.

    This is the §IV-F trigger: jobs 1–3 each have one process that starts
    issuing continuous I/O 20/50/80 s into the run, flipping them from
    lenders into claimants.
    """

    delay_s: float
    total_bytes: int

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.total_bytes <= 0:
            raise ValueError(f"total_bytes must be positive, got {self.total_bytes}")

    def total_bytes_hint(self) -> int:
        return self.total_bytes

    def program(self, io: IoHandle) -> Generator:
        if self.delay_s:
            yield io.sleep(self.delay_s)
        yield from io.write(self.total_bytes)


@dataclass(frozen=True)
class SequentialReadPattern(Pattern):
    """File-per-process sequential *read* of ``total_bytes``.

    The paper evaluates writers only; reads traverse the identical
    NRS/TBF/token path (one token per RPC regardless of direction), so this
    is the minimal pattern that opens the read side of the simulator —
    checkpoint-restore, analysis and staging phases of real HPC jobs.
    """

    total_bytes: int
    start_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ValueError(f"total_bytes must be positive, got {self.total_bytes}")
        if self.start_delay_s < 0:
            raise ValueError(f"start_delay_s must be >= 0, got {self.start_delay_s}")

    def total_bytes_hint(self) -> int:
        return self.total_bytes

    def program(self, io: IoHandle) -> Generator:
        if self.start_delay_s:
            yield io.sleep(self.start_delay_s)
        yield from io.read(self.total_bytes)


@dataclass(frozen=True)
class MixedReadWritePattern(Pattern):
    """Interleaved read/write stream at a target read fraction.

    The stream is chopped into ``chunk_bytes`` chunks; chunk ``i`` is a
    read exactly when the running read count would otherwise fall below
    ``read_fraction`` (a deterministic largest-remainder interleave — no
    randomness, so the mix is identical everywhere).  Models
    analysis-style jobs that alternate ingest and result writing.
    """

    total_bytes: int
    read_fraction: float = 0.5
    chunk_bytes: int = 8 << 20
    start_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ValueError(f"total_bytes must be positive, got {self.total_bytes}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}"
            )
        if self.chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {self.chunk_bytes}")
        if self.start_delay_s < 0:
            raise ValueError(f"start_delay_s must be >= 0, got {self.start_delay_s}")

    def total_bytes_hint(self) -> int:
        return self.total_bytes

    def program(self, io: IoHandle) -> Generator:
        if self.start_delay_s:
            yield io.sleep(self.start_delay_s)
        remaining = self.total_bytes
        index = 0
        while remaining > 0:
            size = min(self.chunk_bytes, remaining)
            remaining -= size
            # Chunk i is a read iff the cumulative read quota crosses an
            # integer boundary: reads land every 1/read_fraction chunks.
            is_read = int((index + 1) * self.read_fraction) > int(
                index * self.read_fraction
            )
            if is_read:
                yield from io.read(size)
            else:
                yield from io.write(size)
            index += 1


@dataclass(frozen=True)
class PoissonArrivalPattern(Pattern):
    """Memoryless request arrivals: ``count`` ops with exponential gaps.

    Inter-arrival times are drawn from an exponential distribution with
    mean ``1 / rate_per_s``; each arrival moves ``op_bytes`` (read with
    probability ``read_fraction``, else written).  Draws come from the
    pattern's seeded :class:`~repro.sim.rng.RngStreams` substream keyed by
    the client identity, so runs are reproducible across processes and
    every process sharing the pattern gets an independent arrival stream.

    Arrivals are closed-loop: each drawn gap starts after the previous op
    completes, so a slow server back-pressures subsequent arrivals — the
    blocking-client behaviour everything else in the simulator follows.
    """

    rate_per_s: float
    op_bytes: int
    count: int
    read_fraction: float = 0.0
    seed: int = 0
    start_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be positive, got {self.rate_per_s}")
        if self.op_bytes <= 0:
            raise ValueError(f"op_bytes must be positive, got {self.op_bytes}")
        if self.count <= 0:
            raise ValueError(f"count must be positive, got {self.count}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}"
            )
        if self.start_delay_s < 0:
            raise ValueError(f"start_delay_s must be >= 0, got {self.start_delay_s}")

    def total_bytes_hint(self) -> int:
        return self.op_bytes * self.count

    def program(self, io: IoHandle) -> Generator:
        rng = self.stream(io, kind="poisson")
        if self.start_delay_s:
            yield io.sleep(self.start_delay_s)
        for _ in range(self.count):
            gap = float(rng.exponential(1.0 / self.rate_per_s))
            if gap > 0:
                yield io.sleep(gap)
            if self.read_fraction and float(rng.random()) < self.read_fraction:
                yield from io.read(self.op_bytes)
            else:
                yield from io.write(self.op_bytes)


@dataclass(frozen=True)
class OnOffPattern(Pattern):
    """Alternating active/idle phases (a Markov-style on/off source).

    Each of ``cycles`` cycles writes ``on_bytes`` as fast as the server
    admits, sleeps out the remainder of the nominal ``on_s`` window if it
    finished early, then idles ``off_s``.  With ``jitter_s > 0`` the idle
    length is perturbed uniformly in ``±jitter_s`` (seeded per client), so
    several on/off jobs drift in and out of phase instead of thundering in
    lockstep.
    """

    on_bytes: int
    on_s: float
    off_s: float
    cycles: int
    jitter_s: float = 0.0
    seed: int = 0
    start_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.on_bytes <= 0:
            raise ValueError(f"on_bytes must be positive, got {self.on_bytes}")
        if self.on_s <= 0:
            raise ValueError(f"on_s must be positive, got {self.on_s}")
        if self.off_s < 0:
            raise ValueError(f"off_s must be >= 0, got {self.off_s}")
        if self.cycles <= 0:
            raise ValueError(f"cycles must be positive, got {self.cycles}")
        if self.jitter_s < 0:
            raise ValueError(f"jitter_s must be >= 0, got {self.jitter_s}")
        if self.jitter_s >= self.off_s and self.jitter_s > 0:
            raise ValueError(
                f"jitter_s must be smaller than off_s "
                f"(got {self.jitter_s} vs {self.off_s})"
            )
        if self.start_delay_s < 0:
            raise ValueError(f"start_delay_s must be >= 0, got {self.start_delay_s}")

    def total_bytes_hint(self) -> int:
        return self.on_bytes * self.cycles

    def program(self, io: IoHandle) -> Generator:
        rng = self.stream(io, kind="onoff") if self.jitter_s else None
        if self.start_delay_s:
            yield io.sleep(self.start_delay_s)
        for cycle in range(self.cycles):
            phase_start = io.now
            yield from io.write(self.on_bytes)
            on_end = phase_start + self.on_s
            if on_end > io.now:
                yield io.sleep(on_end - io.now)
            if cycle == self.cycles - 1:
                break
            idle = self.off_s
            if rng is not None:
                idle += float(rng.uniform(-self.jitter_s, self.jitter_s))
            if idle > 0:
                yield io.sleep(idle)


@dataclass(frozen=True)
class PhasedPattern(Pattern):
    """Sub-patterns executed back to back, ``repeat`` times over.

    The composition primitive behind diurnal/phased load: a day/night
    cycle is ``PhasedPattern((day, night), repeat=days)``.  The hint sums
    the phases' hints (and is unknown if any phase's is).
    """

    phases: Tuple[Pattern, ...]
    repeat: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(self.phases))
        if not self.phases:
            raise ValueError("phases must be non-empty")
        for phase in self.phases:
            if not isinstance(phase, Pattern):
                raise ValueError(
                    f"phases must be Pattern instances, got {type(phase).__name__}"
                )
        if self.repeat <= 0:
            raise ValueError(f"repeat must be positive, got {self.repeat}")

    def total_bytes_hint(self) -> Optional[int]:
        total = 0
        for phase in self.phases:
            hint = phase.total_bytes_hint()
            if hint is None:
                return None
            total += hint
        return total * self.repeat

    def program(self, io: IoHandle) -> Generator:
        for _ in range(self.repeat):
            for phase in self.phases:
                yield from phase.program(io)


@dataclass(frozen=True)
class TraceReplayPattern(Pattern):
    """Replay recorded ``(t_offset_s, job, op, nbytes)`` requests.

    Each record is issued at its (scaled) trace offset relative to the
    pattern's start; a request still in flight when the next offset
    arrives back-pressures the replay (offsets are *not* re-clocked), the
    standard closed-loop replay semantic.  Records usually come from
    :func:`repro.workloads.trace.load_trace`, pre-filtered to one job via
    :func:`~repro.workloads.trace.records_by_job`.

    ``time_scale`` stretches/compresses the arrival times and
    ``data_scale`` the volumes — the same two knobs every scenario uses —
    so a production-length trace can be replayed at bench scale.
    """

    records: Tuple[TraceRecord, ...]
    time_scale: float = 1.0
    data_scale: float = 1.0
    start_delay_s: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "records", tuple(self.records))
        validate_trace(self.records, source="TraceReplayPattern")
        if self.time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {self.time_scale}")
        if self.data_scale <= 0:
            raise ValueError(f"data_scale must be positive, got {self.data_scale}")
        if self.start_delay_s < 0:
            raise ValueError(f"start_delay_s must be >= 0, got {self.start_delay_s}")

    def _scaled_bytes(self, nbytes: int) -> int:
        return max(1, int(nbytes * self.data_scale))

    def total_bytes_hint(self) -> int:
        return sum(self._scaled_bytes(record.nbytes) for record in self.records)

    def program(self, io: IoHandle) -> Generator:
        start = io.now + self.start_delay_s
        if self.start_delay_s:
            yield io.sleep(self.start_delay_s)
        for record in self.records:
            due = start + record.t_offset_s * self.time_scale
            if due > io.now:
                yield io.sleep(due - io.now)
            nbytes = self._scaled_bytes(record.nbytes)
            if record.op == "read":
                yield from io.read(nbytes)
            else:
                yield from io.write(nbytes)
