"""I/O pattern primitives.

A pattern is a small immutable object describing *what one client process
does*; its :meth:`~Pattern.program` method returns the generator the client
executes.  Patterns compose into :class:`~repro.workloads.spec.ProcessSpec`
entries, one per Filebench-style process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.lustre.client import IoHandle

__all__ = [
    "Pattern",
    "SequentialWritePattern",
    "BurstPattern",
    "DelayedContinuousPattern",
]


class Pattern:
    """Base class for I/O patterns (duck-typed: only ``program`` matters)."""

    def program(self, io: IoHandle) -> Generator:  # pragma: no cover - abstract
        raise NotImplementedError

    def total_bytes_hint(self) -> Optional[int]:
        """Upper bound on bytes this pattern writes, if statically known."""
        return None


@dataclass(frozen=True)
class SequentialWritePattern(Pattern):
    """File-per-process sequential write of ``total_bytes``.

    The paper's 16-process jobs each write a private 1 GiB file this way.
    An optional ``start_delay_s`` staggers process start.
    """

    total_bytes: int
    start_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ValueError(f"total_bytes must be positive, got {self.total_bytes}")
        if self.start_delay_s < 0:
            raise ValueError(f"start_delay_s must be >= 0, got {self.start_delay_s}")

    def total_bytes_hint(self) -> int:
        return self.total_bytes

    def program(self, io: IoHandle) -> Generator:
        if self.start_delay_s:
            yield io.sleep(self.start_delay_s)
        yield from io.write(self.total_bytes)


@dataclass(frozen=True)
class BurstPattern(Pattern):
    """Periodic short I/O bursts (§IV-E/F job shape).

    The process writes a ``burst_bytes`` chunk sequentially, idles, writes
    the next chunk, … for ``count`` bursts.  ``start_delay_s`` offsets the
    first burst so several jobs' bursts interleave on the server, as the
    paper arranges.

    Two pacing modes:

    ``"gap"`` (default)
        sleep ``interval_s`` *after each burst completes* — the
        write-then-sleep loop a Filebench personality executes.  Faster
        burst service directly shortens the job, which is how the paper's
        Fig. 6/8 bandwidth gains for bursty jobs arise.
    ``"cadence"``
        start bursts at a fixed period of ``interval_s`` regardless of
        service time (a hard-real-time producer); a burst that overruns
        delays subsequent ones (back-pressure).
    """

    burst_bytes: int
    interval_s: float
    count: int
    start_delay_s: float = 0.0
    pace: str = "gap"

    def __post_init__(self) -> None:
        if self.burst_bytes <= 0:
            raise ValueError(f"burst_bytes must be positive, got {self.burst_bytes}")
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {self.interval_s}")
        if self.count <= 0:
            raise ValueError(f"count must be positive, got {self.count}")
        if self.start_delay_s < 0:
            raise ValueError(f"start_delay_s must be >= 0, got {self.start_delay_s}")
        if self.pace not in ("gap", "cadence"):
            raise ValueError(f"pace must be 'gap' or 'cadence', got {self.pace!r}")

    def total_bytes_hint(self) -> int:
        return self.burst_bytes * self.count

    def program(self, io: IoHandle) -> Generator:
        if self.start_delay_s:
            yield io.sleep(self.start_delay_s)
        for i in range(self.count):
            burst_started = io.now
            yield from io.write(self.burst_bytes)
            if i == self.count - 1:
                break
            if self.pace == "gap":
                yield io.sleep(self.interval_s)
            else:  # cadence
                next_start = burst_started + self.interval_s
                if next_start > io.now:
                    yield io.sleep(next_start - io.now)


@dataclass(frozen=True)
class DelayedContinuousPattern(Pattern):
    """Continuous sequential stream that switches on after ``delay_s``.

    This is the §IV-F trigger: jobs 1–3 each have one process that starts
    issuing continuous I/O 20/50/80 s into the run, flipping them from
    lenders into claimants.
    """

    delay_s: float
    total_bytes: int

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.total_bytes <= 0:
            raise ValueError(f"total_bytes must be positive, got {self.total_bytes}")

    def total_bytes_hint(self) -> int:
        return self.total_bytes

    def program(self, io: IoHandle) -> Generator:
        if self.delay_s:
            yield io.sleep(self.delay_s)
        yield from io.write(self.total_bytes)
