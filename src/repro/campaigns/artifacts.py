"""Reproducible campaign artifacts: manifest + rows as JSON and CSV.

One campaign run writes four files into its output directory:

``manifest.json``
    The campaign declaration (canonical form + spec hash) and every cell's
    identity: axis parameters, the full factory kwargs the cell resolved
    with, its derived seed, and a ready-to-paste ``rerun`` command — any
    cell is re-runnable standalone without the campaign engine.
``rows.json``
    The aggregated :class:`~repro.campaigns.aggregate.CellRow` per cell
    plus the cross-cell summary.  Fully deterministic: byte-identical for
    ``--jobs 1`` and ``--jobs N`` runs of the same campaign.
``rows.csv``
    The same rows flattened for spreadsheets/pandas (axis-parameter
    columns, scalar metrics, one ``mib_s:<job>`` column per job).
``timing.json``
    Everything wall-clock — per-cell and total wall time, worker count,
    cells/second — quarantined here so the deterministic files stay
    comparable across runs.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.campaigns.executor import CampaignResult, CellOutcome
from repro.campaigns.spec import CampaignCell

__all__ = ["write_artifacts", "rerun_command"]


def rerun_command(result: CampaignResult, outcome: CellOutcome) -> str:
    """The standalone CLI invocation reproducing one cell's run."""
    campaign = result.campaign
    cell = CampaignCell(
        index=outcome.index, params=outcome.params, seed=outcome.seed
    )
    parts = [f"python -m repro.experiments run {campaign.scenario}"]
    build_params = campaign.build_params(cell)
    # Policy- and workload-level parameters have dedicated CLI flags,
    # not --param.
    mechanism = build_params.pop("mechanism", None)
    mechanism_params = build_params.pop("mechanism_params", None) or {}
    if mechanism is not None:
        parts.append(f"--mechanism {mechanism}")
    for key in sorted(mechanism_params):
        parts.append(f"--mechanism-param {key}={mechanism_params[key]}")
    workload = build_params.pop("workload", None)
    if workload is not None:
        parts.append(f"--workload {workload}")
    backend = build_params.pop("backend", None)
    if backend is not None:
        parts.append(f"--backend {backend}")
    fault = build_params.pop("fault", None)
    fault_params = build_params.pop("fault_params", None) or {}
    if fault is not None:
        parts.append(f"--fault {fault}")
        for key in sorted(fault_params):
            parts.append(f"--fault-param {key}={fault_params[key]}")
    for key in sorted(build_params):
        parts.append(f"--param {key}={build_params[key]}")
    return " ".join(parts)


def _dump(path: Path, payload) -> None:
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _manifest(result: CampaignResult) -> Dict:
    campaign = result.campaign
    return {
        "campaign": campaign.to_json_dict(),
        "spec_hash": campaign.spec_hash(),
        "n_cells": len(result.outcomes),
        "cells": [
            {
                "index": outcome.index,
                "seed": outcome.seed,
                "params": dict(outcome.params),
                "build_params": campaign.build_params(
                    CampaignCell(
                        index=outcome.index,
                        params=outcome.params,
                        seed=outcome.seed,
                    )
                ),
                "rerun": rerun_command(result, outcome),
            }
            for outcome in result.outcomes
        ],
    }


def _rows(result: CampaignResult) -> Dict:
    return {
        "campaign": result.campaign.name,
        "spec_hash": result.campaign.spec_hash(),
        "rows": [
            {
                "index": outcome.index,
                "seed": outcome.seed,
                "params": dict(outcome.params),
                **outcome.row.as_dict(),
            }
            for outcome in result.outcomes
        ],
        "summary": result.summary().as_dict(),
    }


def _timing(result: CampaignResult) -> Dict:
    return {
        "jobs": result.jobs,
        "wall_s": result.wall_s,
        # Executed vs skipped distinguishes a resumed run: cells_per_s
        # counts only the cells this invocation actually simulated.
        "executed": result.executed,
        "skipped": result.skipped,
        "cells_per_s": result.cells_per_s,
        "cells": [
            {"index": outcome.index, "wall_s": outcome.wall_s}
            for outcome in result.outcomes
        ],
    }


def _write_csv(path: Path, result: CampaignResult) -> None:
    param_names: List[str] = sorted(
        {name for outcome in result.outcomes for name in outcome.params}
    )
    job_ids: List[str] = sorted(
        {
            job
            for outcome in result.outcomes
            for job in outcome.row.per_job_mib_s
        }
    )
    scalar_fields = [
        "scenario",
        "mechanism",
        "duration_s",
        "clients_finished",
        "aggregate_mib_s",
        "fairness",
        "ost_utilization",
        "rpcs_completed",
        "latency_p50_ms",
        "latency_p95_ms",
        "latency_p99_ms",
        "rules_created",
        "rules_stopped",
        "rate_changes",
        "rule_churn",
        "rounds_run",
        "rule_lag_s",
        "overshoot_bytes",
        "reservation_util",
    ]
    header = (
        ["index", "seed"]
        + param_names
        + scalar_fields
        + [f"mib_s:{job}" for job in job_ids]
    )
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for outcome in result.outcomes:
            row_dict = outcome.row.as_dict()
            writer.writerow(
                [outcome.index, outcome.seed]
                + [outcome.params.get(name, "") for name in param_names]
                + [row_dict[field] for field in scalar_fields]
                + [
                    outcome.row.per_job_mib_s.get(job, "")
                    for job in job_ids
                ]
            )


def write_artifacts(
    result: CampaignResult, out_dir: Union[str, Path]
) -> Dict[str, Path]:
    """Write the four artifact files under ``out_dir``; returns their paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = {
        "manifest": out / "manifest.json",
        "rows": out / "rows.json",
        "csv": out / "rows.csv",
        "timing": out / "timing.json",
    }
    _dump(paths["manifest"], _manifest(result))
    _dump(paths["rows"], _rows(result))
    _write_csv(paths["csv"], result)
    _dump(paths["timing"], _timing(result))
    return paths
