"""Durable campaign result stores: commit cells once, survive any crash.

A campaign is a set of idempotent cells — each fully determined by the
frozen :class:`~repro.campaigns.spec.CampaignSpec` (its hash) and the cell
index, with the per-cell seed and resolved parameters recorded alongside the
reduced row.  A :class:`ResultStore` persists exactly that unit: committed
:class:`CellRecord` objects keyed by ``(campaign_spec_hash, cell_index)``,
plus the *leases* the work queue uses to hand pending cells to workers and
to reclaim cells orphaned by worker death (a lease that outlives its TTL is
treated as abandoned).

Three implementations share the protocol:

* :class:`NullStore` — in-memory, nothing durable; the default path of
  :func:`~repro.campaigns.executor.run_campaign`, preserving the historical
  fire-and-forget behavior (and its byte-identical artifacts) exactly;
* :class:`JsonlStore` — a directory of append-only JSON-lines files.
  Commits append one canonical JSON line and flush+fsync; a crash mid-write
  leaves at most one partial trailing line, which loading tolerates.  The
  campaign identity (``campaign.json``) is written atomically via
  temp-file + rename;
* :class:`SqliteStore` — one SQLite database in WAL mode; commits are
  transactions, leases are rows, and ``campaign status`` works while a run
  is in flight.

Idempotency contract: the first commit of a cell index wins and later
commits of the same index are ignored — re-executing a committed cell (two
racing workers, a resume overlapping a zombie worker) can never change a
stored row.  Because cells are deterministic, the discarded duplicate is
byte-equal anyway; the keep-first rule just makes that independent of
scheduling.

A mismatched spec hash is *always* a loud error
(:class:`SpecHashMismatchError`): resuming campaign B from campaign A's
store would silently interleave rows from two different sweeps.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple, Union

__all__ = [
    "CellRecord",
    "Lease",
    "ResultStore",
    "NullStore",
    "JsonlStore",
    "SqliteStore",
    "SpecHashMismatchError",
    "StoreError",
    "open_store",
]

#: File suffixes routed to :class:`SqliteStore` by :func:`open_store`.
SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")

#: The 16-byte magic prefix of every SQLite database file.
_SQLITE_MAGIC = b"SQLite format 3\x00"


class StoreError(RuntimeError):
    """A campaign store refused an operation (corrupt/foreign/unbound)."""


class SpecHashMismatchError(StoreError):
    """The store belongs to a different campaign spec than the one given.

    Raised loudly instead of mixing rows from two sweeps: a store directory
    (or database) is bound to exactly one campaign spec hash for its whole
    life.
    """

    def __init__(self, stored: str, given: str, location: str) -> None:
        self.stored = stored
        self.given = given
        self.location = location
        super().__init__(
            f"campaign store at {location} belongs to spec hash {stored}, "
            f"but the campaign being run hashes to {given}; refusing to mix "
            "rows from different sweeps (point --store elsewhere, or rerun "
            "`campaign describe` to see each spec's hash)"
        )


@dataclass(frozen=True)
class CellRecord:
    """One committed cell: identity, provenance and the reduced row.

    ``row`` is the :meth:`~repro.campaigns.aggregate.CellRow.as_dict` form —
    JSON round-trips of Python floats are exact (``repr`` round-trip), so a
    record loaded from disk rebuilds the row bit-identically.
    """

    index: int
    seed: int
    params: Dict[str, Any]
    row: Dict[str, Any]
    wall_s: float

    def to_json(self) -> str:
        return json.dumps(
            {
                "index": self.index,
                "seed": self.seed,
                "params": self.params,
                "row": self.row,
                "wall_s": self.wall_s,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "CellRecord":
        return cls(
            index=int(payload["index"]),
            seed=int(payload["seed"]),
            params=dict(payload["params"]),
            row=dict(payload["row"]),
            wall_s=float(payload["wall_s"]),
        )


@dataclass(frozen=True)
class Lease:
    """A worker's claim on one pending cell, valid until ``expires_at``."""

    index: int
    worker: str
    expires_at: float

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class ResultStore:
    """Protocol (and shared plumbing) for durable campaign result stores.

    Lifecycle: :meth:`begin` binds the store to one campaign spec hash
    (creating or validating the persistent identity), then workers
    :meth:`acquire` leases on pending cells, :meth:`commit` finished
    records (which releases the lease), and :meth:`release` leases of
    failed cells so a resume retries them immediately.  :meth:`load` and
    :meth:`leases` expose the durable state for resume/status.
    """

    #: Short backend tag shown by ``campaign status`` (“jsonl”, “sqlite”…).
    kind: str = "abstract"

    # -- identity ----------------------------------------------------------
    def begin(self, spec_hash: str, campaign: Mapping[str, Any]) -> None:
        """Bind to a campaign: record identity, or validate the stored one.

        Raises :class:`SpecHashMismatchError` when the store already
        belongs to a different spec.
        """
        raise NotImplementedError

    def campaign(self) -> Optional[Tuple[str, Dict[str, Any]]]:
        """``(spec_hash, campaign_json_dict)`` of the bound campaign, if any."""
        raise NotImplementedError

    @property
    def location(self) -> str:
        """Human-readable backing location (path, or ``memory``)."""
        raise NotImplementedError

    # -- committed rows ----------------------------------------------------
    def load(self) -> Dict[int, CellRecord]:
        """Every committed record, keyed by cell index."""
        raise NotImplementedError

    def commit(self, record: CellRecord) -> None:
        """Durably commit one cell and release any lease on it.

        First commit of an index wins; duplicates are ignored (see the
        module idempotency contract).
        """
        raise NotImplementedError

    # -- leases ------------------------------------------------------------
    def acquire(
        self, index: int, worker: str, now: float, ttl: float
    ) -> bool:
        """Try to lease cell ``index`` for ``worker`` until ``now + ttl``.

        Returns False when a live (unexpired) lease from another worker
        holds the cell, or the cell is already committed.  An expired lease
        is reclaimed: acquiring over it succeeds — this is how cells
        orphaned by worker death re-enter the queue.
        """
        raise NotImplementedError

    def release(self, index: int) -> None:
        """Drop any lease on ``index`` (failed cell: retry immediately)."""
        raise NotImplementedError

    def leases(self) -> Dict[int, Lease]:
        """All outstanding leases (expired ones included), by cell index."""
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release backing resources; further calls are undefined."""

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullStore(ResultStore):
    """The no-persistence store: today's fire-and-forget campaign semantics.

    Everything lives in this process; a crash loses all progress, exactly
    as before the store existed.  Kept as a real :class:`ResultStore` so the
    work queue has a single code path — the in-memory queue + null store is
    the default and produces byte-identical artifacts to the historical
    executor.
    """

    kind = "null"

    def __init__(self) -> None:
        self._identity: Optional[Tuple[str, Dict[str, Any]]] = None
        self._records: Dict[int, CellRecord] = {}
        self._leases: Dict[int, Lease] = {}

    @property
    def location(self) -> str:
        return "memory"

    def begin(self, spec_hash: str, campaign: Mapping[str, Any]) -> None:
        if self._identity is not None and self._identity[0] != spec_hash:
            raise SpecHashMismatchError(
                self._identity[0], spec_hash, self.location
            )
        self._identity = (spec_hash, dict(campaign))

    def campaign(self) -> Optional[Tuple[str, Dict[str, Any]]]:
        return self._identity

    def load(self) -> Dict[int, CellRecord]:
        return dict(self._records)

    def commit(self, record: CellRecord) -> None:
        self._records.setdefault(record.index, record)
        self._leases.pop(record.index, None)

    def acquire(
        self, index: int, worker: str, now: float, ttl: float
    ) -> bool:
        if index in self._records:
            return False
        lease = self._leases.get(index)
        if lease is not None and not lease.expired(now):
            return False
        self._leases[index] = Lease(index, worker, now + ttl)
        return True

    def release(self, index: int) -> None:
        self._leases.pop(index, None)

    def leases(self) -> Dict[int, Lease]:
        return dict(self._leases)


class JsonlStore(ResultStore):
    """Append-only JSON-lines directory store.

    Layout under the store directory::

        campaign.json   identity: spec hash + canonical campaign declaration
        rows.jsonl      one committed CellRecord per line (append + fsync)
        leases.jsonl    lease event log: acquire/release lines, replayed

    Atomicity model: ``campaign.json`` is written via temp-file + rename
    (readers never see a partial identity); row/lease commits append one
    ``\\n``-terminated line and fsync, so a crash leaves at most one
    malformed trailing line, which :meth:`load` skips.  The event-log form
    means no file is ever rewritten in place — resume-safety falls out of
    append-only + keep-first dedup rather than locking.

    Concurrency model: one writing process at a time (the campaign run
    coordinating the store), any number of readers (``campaign status``).
    The writer keeps in-memory mirrors of the row/lease state so per-cell
    bookkeeping is O(1), not a re-parse of the whole log; a *fresh*
    :class:`JsonlStore` object always replays the files, which is what
    resume does.  Use :class:`SqliteStore` when several runs must share one
    store concurrently.
    """

    kind = "jsonl"

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._campaign_path = self._root / "campaign.json"
        self._rows_path = self._root / "rows.jsonl"
        self._leases_path = self._root / "leases.jsonl"
        # Lazy single-writer mirrors of the on-disk logs (None = not
        # replayed yet).  Mutators keep them in sync with what they append.
        self._records_mirror: Optional[Dict[int, CellRecord]] = None
        self._leases_mirror: Optional[Dict[int, Lease]] = None

    @property
    def location(self) -> str:
        return str(self._root)

    # -- identity ----------------------------------------------------------
    def begin(self, spec_hash: str, campaign: Mapping[str, Any]) -> None:
        existing = self.campaign()
        if existing is not None:
            if existing[0] != spec_hash:
                raise SpecHashMismatchError(
                    existing[0], spec_hash, self.location
                )
            return
        payload = json.dumps(
            {"spec_hash": spec_hash, "campaign": dict(campaign)},
            sort_keys=True,
            indent=2,
        )
        fd, tmp = tempfile.mkstemp(
            dir=self._root, prefix=".campaign-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self._campaign_path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def campaign(self) -> Optional[Tuple[str, Dict[str, Any]]]:
        if not self._campaign_path.exists():
            return None
        try:
            payload = json.loads(self._campaign_path.read_text("utf-8"))
            return str(payload["spec_hash"]), dict(payload["campaign"])
        except (ValueError, KeyError) as exc:
            raise StoreError(
                f"corrupt campaign identity at {self._campaign_path}: {exc}"
            ) from exc

    # -- committed rows ----------------------------------------------------
    def _append(self, path: Path, line: str) -> None:
        with path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    @staticmethod
    def _iter_jsonl(path: Path) -> "Iterator[Dict[str, Any]]":
        if not path.exists():
            return
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    # A crash mid-append leaves one partial trailing line;
                    # everything before it is intact. Skip, don't fail.
                    continue

    def load(self) -> Dict[int, CellRecord]:
        if self._records_mirror is None:
            records: Dict[int, CellRecord] = {}
            for payload in self._iter_jsonl(self._rows_path):
                record = CellRecord.from_json_dict(payload)
                records.setdefault(record.index, record)  # first commit wins
            self._records_mirror = records
        return dict(self._records_mirror)

    def commit(self, record: CellRecord) -> None:
        self.load()  # materialize the mirror before mutating it
        if record.index in self._records_mirror:
            return  # idempotent: first commit won already
        self._append(self._rows_path, record.to_json())
        self._records_mirror[record.index] = record
        self.release(record.index)

    # -- leases ------------------------------------------------------------
    def acquire(
        self, index: int, worker: str, now: float, ttl: float
    ) -> bool:
        if index in self.load():
            return False
        lease = self.leases().get(index)
        if lease is not None and not lease.expired(now):
            return False
        self._append(
            self._leases_path,
            json.dumps(
                {
                    "op": "acquire",
                    "index": index,
                    "worker": worker,
                    "expires_at": now + ttl,
                },
                sort_keys=True,
                separators=(",", ":"),
            ),
        )
        self._leases_mirror[index] = Lease(index, worker, now + ttl)
        return True

    def release(self, index: int) -> None:
        if self.leases().get(index) is None:
            return
        self._append(
            self._leases_path,
            json.dumps(
                {"op": "release", "index": index},
                sort_keys=True,
                separators=(",", ":"),
            ),
        )
        self._leases_mirror.pop(index, None)

    def leases(self) -> Dict[int, Lease]:
        if self._leases_mirror is None:
            live: Dict[int, Lease] = {}
            for event in self._iter_jsonl(self._leases_path):
                index = int(event["index"])
                if event.get("op") == "release":
                    live.pop(index, None)
                else:
                    live[index] = Lease(
                        index=index,
                        worker=str(event.get("worker", "")),
                        expires_at=float(event["expires_at"]),
                    )
            self._leases_mirror = live
        return dict(self._leases_mirror)


class SqliteStore(ResultStore):
    """SQLite-backed store: one database file, WAL mode, row-per-cell.

    Schema::

        meta(key TEXT PRIMARY KEY, value TEXT)      -- spec_hash, campaign
        cells(idx INTEGER PRIMARY KEY, seed, params, row, wall_s)
        leases(idx INTEGER PRIMARY KEY, worker, expires_at)

    Commits use ``INSERT OR IGNORE`` (first commit wins) plus a lease
    delete in one transaction; WAL journaling lets ``campaign status`` read
    a store another process is actively writing.
    """

    kind = "sqlite"

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        if self._path.parent and not self._path.parent.exists():
            self._path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self._path))
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=FULL")
        with self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                "key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS cells ("
                "idx INTEGER PRIMARY KEY, seed INTEGER NOT NULL, "
                "params TEXT NOT NULL, row TEXT NOT NULL, "
                "wall_s REAL NOT NULL)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS leases ("
                "idx INTEGER PRIMARY KEY, worker TEXT NOT NULL, "
                "expires_at REAL NOT NULL)"
            )

    @property
    def location(self) -> str:
        return str(self._path)

    # -- identity ----------------------------------------------------------
    def _meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def begin(self, spec_hash: str, campaign: Mapping[str, Any]) -> None:
        stored = self._meta("spec_hash")
        if stored is not None:
            if stored != spec_hash:
                raise SpecHashMismatchError(stored, spec_hash, self.location)
            return
        with self._conn:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                ("spec_hash", spec_hash),
            )
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                ("campaign", json.dumps(dict(campaign), sort_keys=True)),
            )

    def campaign(self) -> Optional[Tuple[str, Dict[str, Any]]]:
        spec_hash = self._meta("spec_hash")
        if spec_hash is None:
            return None
        raw = self._meta("campaign")
        try:
            return spec_hash, (json.loads(raw) if raw else {})
        except ValueError as exc:
            raise StoreError(
                f"corrupt campaign identity in {self._path}: {exc}"
            ) from exc

    # -- committed rows ----------------------------------------------------
    def load(self) -> Dict[int, CellRecord]:
        records: Dict[int, CellRecord] = {}
        for idx, seed, params, row, wall_s in self._conn.execute(
            "SELECT idx, seed, params, row, wall_s FROM cells ORDER BY idx"
        ):
            records[idx] = CellRecord(
                index=idx,
                seed=seed,
                params=json.loads(params),
                row=json.loads(row),
                wall_s=wall_s,
            )
        return records

    def commit(self, record: CellRecord) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO cells (idx, seed, params, row, wall_s)"
                " VALUES (?, ?, ?, ?, ?)",
                (
                    record.index,
                    record.seed,
                    json.dumps(record.params, sort_keys=True),
                    json.dumps(record.row, sort_keys=True),
                    record.wall_s,
                ),
            )
            self._conn.execute(
                "DELETE FROM leases WHERE idx = ?", (record.index,)
            )

    # -- leases ------------------------------------------------------------
    def acquire(
        self, index: int, worker: str, now: float, ttl: float
    ) -> bool:
        with self._conn:
            committed = self._conn.execute(
                "SELECT 1 FROM cells WHERE idx = ?", (index,)
            ).fetchone()
            if committed is not None:
                return False
            row = self._conn.execute(
                "SELECT expires_at FROM leases WHERE idx = ?", (index,)
            ).fetchone()
            if row is not None and now < row[0]:
                return False
            self._conn.execute(
                "INSERT OR REPLACE INTO leases (idx, worker, expires_at) "
                "VALUES (?, ?, ?)",
                (index, worker, now + ttl),
            )
            return True

    def release(self, index: int) -> None:
        with self._conn:
            self._conn.execute("DELETE FROM leases WHERE idx = ?", (index,))

    def leases(self) -> Dict[int, Lease]:
        return {
            idx: Lease(index=idx, worker=worker, expires_at=expires_at)
            for idx, worker, expires_at in self._conn.execute(
                "SELECT idx, worker, expires_at FROM leases ORDER BY idx"
            )
        }

    def close(self) -> None:
        self._conn.close()


def open_store(target: Union[str, Path]) -> ResultStore:
    """Open (or create) a persistent store at ``target``.

    Routing: an explicit ``sqlite:PATH`` prefix, a :data:`SQLITE_SUFFIXES`
    file name, or an existing file bearing the SQLite magic header opens a
    :class:`SqliteStore`; anything else is a :class:`JsonlStore` directory
    (created on demand).  ``null`` / ``memory`` name a :class:`NullStore`
    for completeness.
    """
    raw = str(target)
    if raw in ("null", "memory"):
        return NullStore()
    if raw.startswith("sqlite:"):
        return SqliteStore(raw[len("sqlite:"):])
    path = Path(raw)
    if path.suffix.lower() in SQLITE_SUFFIXES:
        return SqliteStore(path)
    if path.is_file():
        with path.open("rb") as handle:
            if handle.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC:
                return SqliteStore(path)
        raise StoreError(
            f"{path} exists but is neither a store directory nor a SQLite "
            "database; pass a directory for a JSON-lines store or a "
            f"{'/'.join(SQLITE_SUFFIXES)} path for SQLite"
        )
    return JsonlStore(path)
