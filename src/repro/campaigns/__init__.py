"""The campaign engine: declarative parameter sweeps over scenarios.

Turns the PR 1 scenario pipeline into a batch system::

    CampaignSpec ──cells()──▶ CampaignCell ──resolve()──▶ ScenarioSpec
          │                                                    │
          └── run_campaign(jobs=N) ── CellRow per cell ◀── run_cell

* :mod:`repro.campaigns.spec` — the frozen :class:`CampaignSpec`: a base
  registered scenario plus parameter axes composed as grid / zip / seeded
  random sampling, with deterministic per-cell seeds;
* :mod:`repro.campaigns.registry` — name → campaign-factory registry
  behind ``python -m repro.experiments campaign run/list/describe``;
* :mod:`repro.campaigns.executor` — multi-process fan-out with a serial
  ``jobs=1`` fallback and cell-index-ordered results;
* :mod:`repro.campaigns.aggregate` — in-worker reduction of each cell to a
  flat summary row (throughput, fairness, rule churn, latency percentiles);
* :mod:`repro.campaigns.artifacts` — manifest + rows as JSON/CSV, spec
  hash and per-cell rerun commands included;
* :mod:`repro.campaigns.builtin` — ``freq-sweep`` (Fig. 9), ``burst-grid``
  and ``scale-osts``, self-registered on import.
"""

from repro.campaigns.aggregate import (
    CELL_METRICS,
    CampaignSummary,
    CellRow,
    percentile,
    run_cell,
)
from repro.campaigns.artifacts import rerun_command, write_artifacts
from repro.campaigns.executor import CampaignResult, CellOutcome, run_campaign
from repro.campaigns.registry import CAMPAIGNS, CampaignRegistry
from repro.campaigns.spec import (
    AXIS_MODES,
    CampaignCell,
    CampaignSpec,
    ParameterAxis,
    derive_cell_seed,
)

# Populate CAMPAIGNS with the built-in campaigns.
from repro.campaigns import builtin as _builtin  # noqa: F401  (side effect)

__all__ = [
    "AXIS_MODES",
    "CAMPAIGNS",
    "CELL_METRICS",
    "CampaignCell",
    "CampaignRegistry",
    "CampaignResult",
    "CampaignSpec",
    "CampaignSummary",
    "CellOutcome",
    "CellRow",
    "ParameterAxis",
    "derive_cell_seed",
    "percentile",
    "rerun_command",
    "run_campaign",
    "run_cell",
    "write_artifacts",
]
