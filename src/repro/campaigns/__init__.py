"""The campaign engine: declarative parameter sweeps over scenarios.

Turns the PR 1 scenario pipeline into a batch system::

    CampaignSpec ──cells()──▶ CampaignCell ──resolve()──▶ ScenarioSpec
          │                                                    │
          └── run_campaign(jobs=N) ── CellRow per cell ◀── run_cell
                      │
            WorkQueue │ lease ▸ execute ▸ commit (incremental, idempotent)
                      ▼
          ResultStore: null (in-memory) │ jsonl (directory) │ sqlite (.db)

* :mod:`repro.campaigns.spec` — the frozen :class:`CampaignSpec`: a base
  registered scenario plus parameter axes composed as grid / zip / seeded
  random sampling, with deterministic per-cell seeds;
* :mod:`repro.campaigns.registry` — name → campaign-factory registry
  behind ``python -m repro.experiments campaign run/list/describe``;
* :mod:`repro.campaigns.store` — durable result stores keyed by
  ``(campaign_spec_hash, cell_index)``: JSON-lines directory and SQLite
  backends behind one :class:`~repro.campaigns.store.ResultStore`
  protocol, plus the in-memory null store preserving fire-and-forget runs;
* :mod:`repro.campaigns.queue` — the work-queue executor: workers lease
  pending cells, execute, and commit rows incrementally; expired leases
  (dead workers) are reclaimed, crash/resume skips committed cells;
* :mod:`repro.campaigns.executor` — :func:`run_campaign` drains the queue
  across N processes with a serial ``jobs=1`` fallback and
  cell-index-ordered results, byte-identical for any worker count and any
  kill/resume point;
* :mod:`repro.campaigns.aggregate` — in-worker reduction of each cell to a
  flat summary row (throughput, fairness, rule churn, latency percentiles);
* :mod:`repro.campaigns.artifacts` — manifest + rows as JSON/CSV, spec
  hash and per-cell rerun commands included;
* :mod:`repro.campaigns.builtin` — ``freq-sweep`` (Fig. 9), ``burst-grid``
  and ``scale-osts``, self-registered on import.
"""

from repro.campaigns.aggregate import (
    CELL_METRICS,
    CampaignSummary,
    CellRow,
    percentile,
    run_cell,
)
from repro.campaigns.artifacts import rerun_command, write_artifacts
from repro.campaigns.executor import (
    CampaignExecutionError,
    CampaignResult,
    CellOutcome,
    run_campaign,
)
from repro.campaigns.queue import (
    DEFAULT_LEASE_TTL,
    CellFailure,
    QueueStatus,
    StoreNotEmptyError,
    WorkQueue,
    queue_status,
)
from repro.campaigns.registry import CAMPAIGNS, CampaignRegistry
from repro.campaigns.spec import (
    AXIS_MODES,
    CampaignCell,
    CampaignSpec,
    ParameterAxis,
    derive_cell_seed,
)
from repro.campaigns.store import (
    CellRecord,
    JsonlStore,
    NullStore,
    ResultStore,
    SpecHashMismatchError,
    SqliteStore,
    StoreError,
    open_store,
)

# Populate CAMPAIGNS with the built-in campaigns.
from repro.campaigns import builtin as _builtin  # noqa: F401  (side effect)

__all__ = [
    "AXIS_MODES",
    "CAMPAIGNS",
    "CELL_METRICS",
    "CampaignCell",
    "CampaignExecutionError",
    "CampaignRegistry",
    "CampaignResult",
    "CampaignSpec",
    "CampaignSummary",
    "CellFailure",
    "CellOutcome",
    "CellRecord",
    "CellRow",
    "DEFAULT_LEASE_TTL",
    "JsonlStore",
    "NullStore",
    "ParameterAxis",
    "QueueStatus",
    "ResultStore",
    "SpecHashMismatchError",
    "SqliteStore",
    "StoreError",
    "StoreNotEmptyError",
    "WorkQueue",
    "derive_cell_seed",
    "open_store",
    "percentile",
    "queue_status",
    "rerun_command",
    "run_campaign",
    "run_cell",
    "write_artifacts",
]
