"""Streaming reduction of campaign cells into flat summary rows.

A parameter sweep only needs a handful of numbers per cell — throughput,
fairness, rule churn, latency percentiles — never the cell's full
:class:`~repro.cluster.experiment.ExperimentResult` (timelines, allocation
histories, per-RPC records).  :func:`run_cell` therefore executes a resolved
spec *and reduces it in place*: metric collection is trimmed to what the row
needs (no allocation history, no utilization-free extras), per-RPC latencies
are folded into percentiles as the run's own completion stream fires, and
only the flat :class:`CellRow` ever leaves the worker process.  The parent
process of a ``--jobs N`` campaign holds one row per cell, not N simulation
histories.

:class:`CampaignSummary` is the matching cross-cell reduction: feed it
outcomes one at a time and read aggregate statistics at the end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.cluster.builder import build
from repro.cluster.experiment import execute
from repro.metrics.summary import jain_index, weighted_jain
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "CELL_METRICS",
    "CellRow",
    "run_cell",
    "percentile",
    "CampaignSummary",
]

#: Metric groups a campaign cell collects — summaries only; timelines are
#: recorded (``summary`` implies them) but histories are skipped entirely.
CELL_METRICS = ("summary", "utilization")

#: Latency percentiles every row reports, in order.
LATENCY_PERCENTILES = (50, 95, 99)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    Returns 0.0 for an empty sequence — a cell that served nothing has no
    latency distribution to speak of.
    """
    if not 0 < q <= 100:
        raise ValueError(f"q must be in (0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class CellRow:
    """The flat, JSON/CSV-ready summary of one executed cell.

    Latency is OSS residence time per RPC — NRS enqueue (``arrived``) to
    OST service completion — i.e. the queueing delay the bandwidth-control
    mechanism actually shapes, excluding client-side network latency.
    """

    scenario: str
    mechanism: str
    duration_s: float
    clients_finished: bool
    aggregate_mib_s: float
    #: Node-weighted Jain index: how closely achieved bandwidth tracks the
    #: paper's priority entitlement (1.0 = perfectly proportional).
    fairness: float
    ost_utilization: float
    per_job_mib_s: Dict[str, float]
    rpcs_completed: int
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    #: Rule churn, summed over every OST's rule daemon.
    rules_created: int
    rules_stopped: int
    rate_changes: int
    #: Allocation rounds run, summed over every OST's controller.
    rounds_run: int
    #: Chaos metrics (zero/identity defaults keep fault-free rows and
    #: pre-fault-axis stores loading unchanged).  Recovery time: seconds
    #: past the disturbance window until aggregate throughput first regains
    #: 90% of its pre-disturbance mean (0.0 when nothing preceded the
    #: window; the remaining run length when it never recovers).
    recovery_s: float = 0.0
    #: Node-weighted Jain over bytes completed during / after the window.
    fairness_during: float = 1.0
    fairness_after: float = 1.0
    #: Crash-aborted in-flight transfers and crash-requeued RPCs.
    rpcs_dropped: int = 0
    rpcs_retried: int = 0
    #: Control-plane columns (zero defaults keep pre-decentralization-axis
    #: stores loading unchanged).  Mean observation → enforcement lag of
    #: applied rule updates, averaged over the handles that reported one.
    rule_lag_s: float = 0.0
    #: Bytes of rate granted beyond live demand at enforcement time,
    #: summed over handles — the staleness-induced overshoot.
    overshoot_bytes: float = 0.0
    #: Used ÷ reserved capacity, averaged over the handles that reserve
    #: anything (0.0 when no mechanism in the cell reserves).
    reservation_util: float = 0.0

    @property
    def rule_churn(self) -> int:
        """Total rule-management operations (created + stopped + re-rated)."""
        return self.rules_created + self.rules_stopped + self.rate_changes

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CellRow":
        """Rebuild a row from its :meth:`as_dict` form, bit-identically.

        The store persists rows as JSON; Python's float JSON round-trip is
        exact, so ``CellRow.from_dict(row.as_dict()) == row`` always holds
        — what crash/resume byte-identity rests on.
        """
        data = dict(payload)
        data.pop("rule_churn", None)  # derived, not a field
        return cls(**data)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "mechanism": self.mechanism,
            "duration_s": self.duration_s,
            "clients_finished": self.clients_finished,
            "aggregate_mib_s": self.aggregate_mib_s,
            "fairness": self.fairness,
            "ost_utilization": self.ost_utilization,
            "per_job_mib_s": dict(self.per_job_mib_s),
            "rpcs_completed": self.rpcs_completed,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "rules_created": self.rules_created,
            "rules_stopped": self.rules_stopped,
            "rate_changes": self.rate_changes,
            "rule_churn": self.rule_churn,
            "rounds_run": self.rounds_run,
            "recovery_s": self.recovery_s,
            "fairness_during": self.fairness_during,
            "fairness_after": self.fairness_after,
            "rpcs_dropped": self.rpcs_dropped,
            "rpcs_retried": self.rpcs_retried,
            "rule_lag_s": self.rule_lag_s,
            "overshoot_bytes": self.overshoot_bytes,
            "reservation_util": self.reservation_util,
        }


class _ChaosProbe:
    """Plain-dict byte bucketing for the fault axis (numpy-free by design).

    Accumulates, per completed RPC, (a) aggregate bytes per timeline bin and
    (b) per-job bytes during and after the disturbance window.  The window is
    known statically (``ClusterTopology.fault_window``) before the run, so
    this is a single pass over the completion stream with no post-hoc
    re-binning — the same streaming discipline :func:`run_cell` applies to
    latencies.
    """

    def __init__(self, window: Any, bin_s: float) -> None:
        self.start, self.end = window
        self.bin_s = bin_s
        self.bins: Dict[int, float] = {}
        self.during: Dict[str, float] = {}
        self.after: Dict[str, float] = {}

    def record(self, rpc) -> None:
        if rpc.completed is None:
            return
        size = float(rpc.size_bytes)
        index = int(rpc.completed / self.bin_s)
        self.bins[index] = self.bins.get(index, 0.0) + size
        if self.start <= rpc.completed < self.end:
            self.during[rpc.job_id] = self.during.get(rpc.job_id, 0.0) + size
        elif rpc.completed >= self.end:
            self.after[rpc.job_id] = self.after.get(rpc.job_id, 0.0) + size

    def recovery_s(self, duration_s: float) -> float:
        """Seconds past the window until 90% of pre-disturbance throughput.

        The pre-disturbance mean is taken over whole bins strictly before
        the window opens; the scan starts at the first whole bin after it
        closes (the bin straddling the window edge is partially disturbed).
        Returns 0.0 when nothing preceded the window and the remaining run
        length when throughput never comes back.
        """
        n_pre = int(self.start / self.bin_s)
        if n_pre <= 0:
            return 0.0
        pre_rate = sum(self.bins.get(i, 0.0) for i in range(n_pre)) / n_pre
        if pre_rate <= 0:
            return 0.0
        first = math.ceil(self.end / self.bin_s)
        last = int(duration_s / self.bin_s)
        for index in range(first, last + 1):
            if self.bins.get(index, 0.0) >= 0.9 * pre_rate:
                return max(0.0, (index + 1) * self.bin_s - self.end)
        return max(0.0, duration_s - self.end)


def run_cell(spec: ScenarioSpec) -> CellRow:
    """Execute ``spec`` with sweep-trimmed collection and reduce to a row.

    The trim (no allocation history, summary+utilization metrics only)
    changes what is *retained*, never the simulated physics: a cell's
    throughput numbers are identical to a full ``run_scenario`` of the same
    spec.
    """
    trimmed = spec.with_policy(keep_history=False).with_run(
        metrics=CELL_METRICS
    )
    cluster = build(trimmed)

    latencies: List[float] = []

    def record_latency(rpc) -> None:
        if rpc.arrived is not None and rpc.completed is not None:
            latencies.append(rpc.completed - rpc.arrived)

    window = cluster.fault_window()
    probe = (
        _ChaosProbe(window, trimmed.bin_s) if window is not None else None
    )
    for oss in cluster.osses:
        oss.on_complete(record_latency)
        if probe is not None:
            oss.on_complete(probe.record)

    result = execute(cluster)

    weights = {job_id: float(n) for job_id, n in trimmed.nodes.items()}
    if probe is not None:
        recovery_s = probe.recovery_s(result.duration_s)
        fairness_during = weighted_jain(probe.during, weights=weights)
        fairness_after = weighted_jain(probe.after, weights=weights)
    else:
        recovery_s, fairness_during, fairness_after = 0.0, 1.0, 1.0
    p50, p95, p99 = (
        percentile(latencies, q) * 1e3 for q in LATENCY_PERCENTILES
    )
    lags = [h.rule_lag_s for h in cluster.handles if h.rule_lag_s > 0]
    utils = [
        h.reservation_util
        for h in cluster.handles
        if h.reservation_util is not None
    ]
    return CellRow(
        scenario=spec.name,
        mechanism=result.mechanism,
        duration_s=result.duration_s,
        clients_finished=result.clients_finished,
        aggregate_mib_s=result.summary.aggregate_mib_s,
        fairness=jain_index(result.summary, weights=weights),
        ost_utilization=result.ost_utilization,
        per_job_mib_s=dict(result.summary.per_job_mib_s),
        rpcs_completed=sum(oss.completed_rpcs for oss in cluster.osses),
        latency_p50_ms=p50,
        latency_p95_ms=p95,
        latency_p99_ms=p99,
        rules_created=sum(h.rules_created for h in cluster.handles),
        rules_stopped=sum(h.rules_stopped for h in cluster.handles),
        rate_changes=sum(h.rate_changes for h in cluster.handles),
        rounds_run=sum(h.rounds_run for h in cluster.handles),
        recovery_s=recovery_s,
        fairness_during=fairness_during,
        fairness_after=fairness_after,
        rpcs_dropped=cluster.rpcs_dropped,
        rpcs_retried=cluster.rpcs_retried,
        rule_lag_s=sum(lags) / len(lags) if lags else 0.0,
        overshoot_bytes=sum(h.overshoot_bytes for h in cluster.handles),
        reservation_util=sum(utils) / len(utils) if utils else 0.0,
    )


@dataclass
class CampaignSummary:
    """Streaming cross-cell statistics: ``add`` outcomes, read at the end."""

    cells: int = 0
    finished_cells: int = 0
    rpcs_completed: int = 0
    rule_churn: int = 0
    wall_s: float = 0.0
    aggregate_sum: float = 0.0
    aggregate_min: float = math.inf
    aggregate_max: float = -math.inf
    fairness_min: float = math.inf
    latency_p99_max_ms: float = 0.0
    best_cell_index: int = -1
    best_cell_params: Dict[str, Any] = field(default_factory=dict)

    def add(self, outcome) -> None:
        """Fold one :class:`~repro.campaigns.executor.CellOutcome` in."""
        row = outcome.row
        self.cells += 1
        self.finished_cells += int(row.clients_finished)
        self.rpcs_completed += row.rpcs_completed
        self.rule_churn += row.rule_churn
        self.wall_s += outcome.wall_s
        self.aggregate_sum += row.aggregate_mib_s
        self.aggregate_min = min(self.aggregate_min, row.aggregate_mib_s)
        self.fairness_min = min(self.fairness_min, row.fairness)
        self.latency_p99_max_ms = max(
            self.latency_p99_max_ms, row.latency_p99_ms
        )
        if row.aggregate_mib_s > self.aggregate_max:
            self.aggregate_max = row.aggregate_mib_s
            self.best_cell_index = outcome.index
            self.best_cell_params = dict(outcome.params)

    @property
    def aggregate_mean(self) -> float:
        return self.aggregate_sum / self.cells if self.cells else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "cells": self.cells,
            "finished_cells": self.finished_cells,
            "rpcs_completed": self.rpcs_completed,
            "rule_churn": self.rule_churn,
            "aggregate_mean_mib_s": self.aggregate_mean,
            "aggregate_min_mib_s": (
                self.aggregate_min if self.cells else 0.0
            ),
            "aggregate_max_mib_s": (
                self.aggregate_max if self.cells else 0.0
            ),
            "fairness_min": self.fairness_min if self.cells else 1.0,
            "latency_p99_max_ms": self.latency_p99_max_ms,
            "best_cell_index": self.best_cell_index,
            "best_cell_params": dict(self.best_cell_params),
        }
