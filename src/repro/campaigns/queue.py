"""The campaign work queue: lease pending cells, execute, commit, reclaim.

This is the scheduling half of the persistence layer
(:mod:`repro.campaigns.store` is the durability half).  A
:class:`WorkQueue` binds one frozen campaign to one
:class:`~repro.campaigns.store.ResultStore` and drains the pending cells:

1. **lease** — before a cell is handed to a worker, the queue acquires a
   TTL lease on it in the store.  A cell whose lease has expired (its
   worker died without committing) is *reclaimed*: acquiring over the dead
   lease succeeds and the cell re-enters the queue;
2. **execute** — the cell runs, serially in-process (``jobs == 1``) or in
   a :class:`~concurrent.futures.ProcessPoolExecutor` fan-out.  Workers
   receive pre-resolved :class:`~repro.scenarios.spec.ScenarioSpec` objects
   (registry lookups stay in the parent) and return only the reduced
   :class:`CellOutcome`;
3. **commit** — the outcome is durably committed the moment it completes
   (incremental: a crash one cell later loses one cell, not the campaign),
   which also releases the lease.  Committed cells are never re-executed —
   the store's keep-first idempotency plus per-cell determinism make
   overlapping executions harmless *and* byte-identical.

Failure semantics: a cell that raises releases its lease (an immediate
retry or resume re-runs it) and is reported in the drain's ``failures``;
a worker process that dies (SIGKILL, OOM) breaks the pool — the queue
releases the leases of every cell the pool will no longer finish and
reports them, leaving the committed prefix intact for ``campaign resume``.
A campaign whose coordinating process is itself killed leaves leases
behind.  Lease worker ids are ``host:pid``, so a resume on the *same*
host probes the pid and reclaims leases of provably dead coordinators
immediately; leases from other hosts (unprobeable) are reclaimed once
they expire after :data:`DEFAULT_LEASE_TTL` (tunable per run).
"""

from __future__ import annotations

import os
import socket
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaigns.aggregate import CellRow, run_cell
from repro.campaigns.spec import CampaignCell, CampaignSpec
from repro.campaigns.store import CellRecord, ResultStore, StoreError
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "DEFAULT_LEASE_TTL",
    "CellOutcome",
    "CellFailure",
    "DrainResult",
    "QueueStatus",
    "StoreNotEmptyError",
    "WorkQueue",
    "queue_status",
]

#: Default seconds a cell lease stays valid without a commit.  Generous —
#: leases exist to survive *death*, not slowness; a live worker only looks
#: slow, and re-running its cell would be wasted (if harmless) work.
DEFAULT_LEASE_TTL = 900.0

#: Signature of the optional progress hook: (outcome, total_cells).
ProgressCallback = Callable[["CellOutcome", int], None]


@dataclass(frozen=True)
class CellOutcome:
    """One executed cell: its identity, reduced row and wall time."""

    index: int
    params: Dict[str, Any]
    seed: int
    row: CellRow
    wall_s: float

    def to_record(self) -> CellRecord:
        return CellRecord(
            index=self.index,
            seed=self.seed,
            params=dict(self.params),
            row=self.row.as_dict(),
            wall_s=self.wall_s,
        )

    @classmethod
    def from_record(cls, record: CellRecord) -> "CellOutcome":
        return cls(
            index=record.index,
            params=dict(record.params),
            seed=record.seed,
            row=CellRow.from_dict(record.row),
            wall_s=record.wall_s,
        )


@dataclass(frozen=True)
class CellFailure:
    """One cell the queue could not commit this drain, and why."""

    index: int
    params: Dict[str, Any]
    error: str


@dataclass
class DrainResult:
    """What one :meth:`WorkQueue.drain` pass did."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    failures: List[CellFailure] = field(default_factory=list)
    #: Cells whose expired leases (dead workers) this drain acquired over.
    reclaimed: int = 0


class StoreNotEmptyError(RuntimeError):
    """A non-resume run hit a store that already holds committed cells.

    Starting “fresh” on a half-finished store is almost always an accident
    (the committed rows would silently be skipped); demanding an explicit
    ``resume`` keeps the two intents distinguishable.
    """

    def __init__(self, location: str, committed: int, total: int) -> None:
        self.location = location
        self.committed = committed
        self.total = total
        super().__init__(
            f"campaign store at {location} already holds {committed} of "
            f"{total} committed cell(s); resume it (CLI: `campaign resume "
            f"{location}` or `campaign run ... --store {location} "
            "--resume`) or point --store at a fresh location"
        )


def _execute_cell(spec: ScenarioSpec, cell: CampaignCell) -> CellOutcome:
    """Run one pre-resolved cell; the worker-side entry point."""
    start = time.perf_counter()  # repro: allow[no-wallclock] reason=wall time recorded into the cell result only; never enters simulation state
    row = run_cell(spec)
    return CellOutcome(
        index=cell.index,
        params=dict(cell.params),
        seed=cell.seed,
        row=row,
        wall_s=time.perf_counter() - start,  # repro: allow[no-wallclock] reason=reporting-only wall time per cell
    )


def _worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


def _lease_is_dead(lease, now: float) -> bool:
    """Expired, or held by a provably dead process on this host.

    The TTL is the only signal for leases from other hosts; for a lease
    taken on *this* host the pid in its ``host:pid`` worker id can be
    probed, so a SIGKILLed coordinator's cells are reclaimed on the very
    next resume instead of after the TTL.  Unprobeable (foreign format,
    other host, permission-denied) leases are conservatively treated as
    alive.
    """
    if lease.expired(now):
        return True
    host, _, pid = lease.worker.rpartition(":")
    if host != socket.gethostname() or not pid.isdigit():
        return False
    try:
        os.kill(int(pid), 0)
    except ProcessLookupError:
        return True
    except (PermissionError, OSError):
        return False
    return False


class WorkQueue:
    """Drains one campaign's pending cells through a result store."""

    def __init__(
        self,
        campaign: CampaignSpec,
        store: ResultStore,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        clock: Callable[[], float] = time.time,  # repro: allow[no-wallclock] reason=lease-TTL clock for crash detection; injectable for tests, outside simulated time
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        self.campaign = campaign
        self.store = store
        self.lease_ttl = lease_ttl
        self.clock = clock
        self.worker = _worker_id()
        # Binds the store to this campaign — raises SpecHashMismatchError
        # if it already belongs to a different sweep.
        store.begin(campaign.spec_hash(), campaign.to_json_dict())

    # -- durable state -----------------------------------------------------
    def committed_outcomes(self) -> List[CellOutcome]:
        """Previously committed cells, rebuilt bit-identically, in order."""
        records = self.store.load()
        return [
            CellOutcome.from_record(records[index])
            for index in sorted(records)
        ]

    def pending_cells(self) -> Tuple[List[CampaignCell], int]:
        """Cells not committed and not under a live lease.

        Returns ``(cells, reclaimable)`` where ``reclaimable`` counts the
        pending cells whose lease marks a dead worker (expired TTL, or a
        dead pid on this host) — included in the list, since acquiring
        over the stale lease is the reclamation.
        """
        committed = self.store.load()
        leases = self.store.leases()
        now = self.clock()
        pending: List[CampaignCell] = []
        reclaimable = 0
        for cell in self.campaign.cells():
            if cell.index in committed:
                continue
            lease = leases.get(cell.index)
            if lease is not None:
                if not _lease_is_dead(lease, now):
                    continue
                reclaimable += 1
            pending.append(cell)
        return pending, reclaimable

    # -- draining ----------------------------------------------------------
    def drain(
        self,
        jobs: int = 1,
        progress: Optional[ProgressCallback] = None,
        max_cells: Optional[int] = None,
    ) -> DrainResult:
        """Lease, execute and commit every pending cell (up to ``max_cells``).

        Completion order feeds ``progress``; the returned outcomes are in
        cell-index order.  Failed cells release their leases and are
        reported, never raised mid-drain — one bad cell doesn't strand the
        rest of the sweep uncommitted.
        """
        if jobs <= 0:
            raise ValueError(f"jobs must be positive, got {jobs}")
        if max_cells is not None and max_cells < 0:
            raise ValueError(f"max_cells must be >= 0, got {max_cells}")
        pending, _ = self.pending_cells()
        if max_cells is not None:
            pending = pending[:max_cells]
        total = self.campaign.n_cells
        # Resolve in the parent: registry lookups and parameter validation
        # fail fast (before any lease or pool), and workers need no
        # registry at all.
        work = [(self.campaign.resolve(cell), cell) for cell in pending]
        result = DrainResult()
        if not work:
            return result
        if jobs == 1 or len(work) == 1:
            self._drain_serial(work, total, progress, result)
        else:
            self._drain_pool(work, jobs, total, progress, result)
        result.outcomes.sort(key=lambda outcome: outcome.index)
        return result

    def _lease(self, cell: CampaignCell, result: DrainResult) -> bool:
        now = self.clock()
        lease = self.store.leases().get(cell.index)
        stale = lease is not None and _lease_is_dead(lease, now)
        if stale and not lease.expired(now):
            # Dead same-host coordinator: its lease would otherwise block
            # until the TTL runs out — drop it so the acquire succeeds.
            self.store.release(cell.index)
        acquired = self.store.acquire(
            cell.index, self.worker, now, self.lease_ttl
        )
        if acquired and stale:
            result.reclaimed += 1
        return acquired

    def _commit(
        self,
        outcome: CellOutcome,
        total: int,
        progress: Optional[ProgressCallback],
        result: DrainResult,
    ) -> None:
        self.store.commit(outcome.to_record())
        result.outcomes.append(outcome)
        if progress is not None:
            progress(outcome, total)

    def _fail(
        self, cell: CampaignCell, error: str, result: DrainResult
    ) -> None:
        self.store.release(cell.index)
        result.failures.append(
            CellFailure(
                index=cell.index, params=dict(cell.params), error=error
            )
        )

    def _drain_serial(self, work, total, progress, result) -> None:
        for spec, cell in work:
            if not self._lease(cell, result):
                continue
            try:
                outcome = _execute_cell(spec, cell)
            except Exception as exc:  # noqa: BLE001 — reported, not raised
                self._fail(cell, f"{type(exc).__name__}: {exc}", result)
                continue
            self._commit(outcome, total, progress, result)

    def _drain_pool(self, work, jobs, total, progress, result) -> None:
        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
            futures = {}
            for spec, cell in work:
                if not self._lease(cell, result):
                    continue
                futures[pool.submit(_execute_cell, spec, cell)] = cell
            try:
                for future in as_completed(futures):
                    cell = futures[future]
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        raise  # a worker died; handled for all cells below
                    except Exception as exc:  # noqa: BLE001
                        self._fail(
                            cell, f"{type(exc).__name__}: {exc}", result
                        )
                        continue
                    self._commit(outcome, total, progress, result)
            except BrokenProcessPool:
                # A worker process died without returning (SIGKILL/OOM):
                # the pool is unusable and every uncommitted future is
                # lost.  Release their leases so a resume retries them
                # immediately instead of waiting out the TTL.
                done = {outcome.index for outcome in result.outcomes}
                failed = {failure.index for failure in result.failures}
                for cell in futures.values():
                    if cell.index not in done and cell.index not in failed:
                        self._fail(
                            cell,
                            "worker process died before returning "
                            "(BrokenProcessPool)",
                            result,
                        )


def queue_status(
    store: ResultStore, now: Optional[float] = None
) -> "QueueStatus":
    """Inspect a store's durable state without touching it.

    Works on a store another process is actively draining (SQLite WAL, or
    a fresh read of the JSONL logs).
    """
    identity = store.campaign()
    if identity is None:
        raise StoreError(
            f"store at {store.location} holds no campaign yet; run "
            "`campaign run <name> --store ...` first"
        )
    spec_hash, campaign_json = identity
    spec = CampaignSpec.from_json_dict(campaign_json)
    committed = store.load()
    leases = store.leases()
    now = time.time() if now is None else now  # repro: allow[no-wallclock] reason=lease-expiry check against worker heartbeats; injectable for tests
    active = sum(
        1
        for lease in leases.values()
        if not _lease_is_dead(lease, now) and lease.index not in committed
    )
    expired = sum(
        1
        for lease in leases.values()
        if _lease_is_dead(lease, now) and lease.index not in committed
    )
    total = spec.n_cells
    return QueueStatus(
        spec_hash=spec_hash,
        campaign=spec,
        store_kind=store.kind,
        location=store.location,
        total=total,
        committed=len(committed),
        leased=active,
        reclaimable=expired,
        pending=total - len(committed) - active,
    )


@dataclass(frozen=True)
class QueueStatus:
    """Durable progress of one campaign store, for ``campaign status``."""

    spec_hash: str
    campaign: CampaignSpec
    store_kind: str
    location: str
    total: int
    committed: int
    #: Cells under a live lease (a run is working on them right now).
    leased: int
    #: Cells whose lease marks a dead worker (expired TTL, or a dead pid
    #: on this host) — orphaned, reclaimed by the next drain.
    reclaimable: int
    #: Cells no run has claimed (reclaimable ones count as pending too).
    pending: int

    def describe(self) -> str:
        campaign = self.campaign
        done = self.committed == self.total
        state = (
            "complete"
            if done
            else f"{self.committed}/{self.total} committed"
        )
        lines = [
            f"store:     {self.store_kind} at {self.location}",
            f"campaign:  {campaign.name!r} over scenario "
            f"{campaign.scenario!r}",
            f"spec hash: {self.spec_hash}",
            f"cells:     {self.total} total — {state}; skipped on resume: "
            f"{self.committed}",
            f"leases:    {self.leased} live, {self.reclaimable} expired "
            "(reclaimed by next resume)",
            f"pending:   {self.pending} to execute",
        ]
        if not done:
            lines.append(
                f"resume:    python -m repro.experiments campaign resume "
                f"{self.location}"
            )
        return "\n".join(lines)
