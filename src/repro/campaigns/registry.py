"""Named campaign registry.

Campaign *factories* — callables taking keyword parameters and returning a
:class:`~repro.campaigns.spec.CampaignSpec` — are registered by name so the
CLI can launch any sweep from a string plus ``k=v`` overrides::

    python -m repro.experiments campaign run freq-sweep --jobs 4

Reuses the generic :class:`~repro.registry.FactoryRegistry` machinery
(schema introspection, CLI coercion, describe), so campaigns, scenarios and
bandwidth mechanisms share one parameter-override idiom.
"""

from __future__ import annotations

from typing import List

from repro.campaigns.spec import CampaignSpec
from repro.registry import FactoryRegistry, RegisteredFactory

__all__ = ["CampaignRegistry", "CAMPAIGNS"]


class CampaignRegistry(FactoryRegistry):
    """Name → campaign-factory mapping behind the ``campaign`` CLI."""

    kind = "campaign"

    def build(self, name: str, **overrides) -> CampaignSpec:
        """Materialize the named campaign's spec with parameter overrides."""
        return self.get(name).build(**overrides)

    def _describe_built(self, entry: RegisteredFactory) -> List[str]:
        return ["", entry.build().describe()]


#: The process-wide default registry; built-in campaigns self-register here
#: on ``import repro.campaigns``.
CAMPAIGNS = CampaignRegistry()
