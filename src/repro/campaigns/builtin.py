"""Built-in campaign registrations.

The paper's evaluation sweeps, declared once through the campaign engine:

* ``freq-sweep``  — Fig. 9's allocation-period axis over the §IV-F workload
  (:mod:`repro.experiments.fig9` runs through this campaign);
* ``burst-grid``  — burst intensity × priority mix over the seeded
  burst-storm scenario (per-cell derived seeds vary the storm);
* ``scale-osts``  — OST count × per-OST capacity over the decentralized
  multi-OST scenario;
* ``mechanism-shootout`` — every registered bandwidth mechanism head-to-head
  on one contended workload: the §IV-C comparison generalized to the whole
  mechanism registry (throughput / fairness / latency per mechanism);
* ``workload-shootout`` — one mechanism across every registered *workload*
  pattern: the reserved ``workload`` axis swaps each cell's demand shape
  (sequential, bursty, Poisson, on/off, diurnal, trace replay, ...) over a
  fixed contention structure;
* ``chaos-shootout`` — every registered mechanism under a registered fault
  (OST crash by default): the reserved ``fault``/``fault_params`` axis
  subjects one contended workload to a disturbance window and ranks the
  mechanisms by recovery time and fairness-under-failure;
* ``decentralization-tax`` — every registered mechanism over a
  control-plane latency × OST count × workload grid: the reserved
  ``mechanism_params`` axis sweeps the centralized ``sdn`` controller's
  latency while the decentralized contenders serve as flat references,
  ranked per latency step by the campaign report.

Axis values arrive as comma-separated factory parameters so any grid is
reshapeable from the CLI (``--param intervals=0.1,0.25``); defaults target
the bench scale so a full campaign finishes in seconds.
"""

from __future__ import annotations

from typing import Tuple

from repro.campaigns.registry import CAMPAIGNS
from repro.campaigns.spec import CampaignSpec, ParameterAxis
from repro.core.mechanism import MECHANISMS
from repro.experiments.fig9 import PAPER_INTERVALS_S
from repro.registry import normalize_name
from repro.workloads.registry import WORKLOADS
from repro.workloads.scenarios import BENCH_SCALE

__all__ = ["CAMPAIGNS"]


def _floats(csv: str, param: str) -> Tuple[float, ...]:
    try:
        values = tuple(float(v) for v in csv.split(",") if v.strip())
    except ValueError:
        raise ValueError(
            f"parameter {param!r}: expected comma-separated numbers, "
            f"got {csv!r}"
        ) from None
    if not values:
        raise ValueError(f"parameter {param!r} must list at least one value")
    return values


def _ints(csv: str, param: str) -> Tuple[int, ...]:
    return tuple(int(v) for v in _floats(csv, param))


@CAMPAIGNS.register(
    "freq-sweep",
    description="Fig. 9: aggregate throughput vs token allocation period",
)
def _freq_sweep(
    intervals: str = "",
    data_scale: float = BENCH_SCALE,
    time_scale: float = BENCH_SCALE,
    heavy_procs: int = 16,
    window: int = 8,
    capacity_mib_s: float = 1024.0,
    seed: int = 0,
) -> CampaignSpec:
    """§IV-H through the campaign engine: one cell per observation period.

    ``intervals`` lists the allocation periods in simulated seconds,
    already scaled; when empty, the paper's 100 ms – 2 s axis is scaled by
    ``time_scale`` (matching how Fig. 9 keeps the ratio of control period
    to burst cadence).
    """
    if intervals.strip():
        values = _floats(intervals, "intervals")
    else:
        values = tuple(i * time_scale for i in PAPER_INTERVALS_S)
    return CampaignSpec(
        name="freq-sweep",
        scenario="recompensation",
        axes=(ParameterAxis("interval_s", values),),
        base_params={
            "data_scale": data_scale,
            "time_scale": time_scale,
            "heavy_procs": heavy_procs,
            "window": window,
            "capacity_mib_s": capacity_mib_s,
        },
        seed=seed,
        description=(
            "Fig. 9 reproduction: the §IV-F workload per allocation period"
        ),
    )


@CAMPAIGNS.register(
    "burst-grid",
    description="burst intensity × priority mix over the seeded burst storm",
)
def _burst_grid(
    scales: str = "0.05,0.1",
    tenants: str = "4,8",
    with_hog: bool = True,
    duration_s: float = 40.0,
    time_scale: float = BENCH_SCALE,
    capacity_mib_s: float = 1024.0,
    seed: int = 0,
) -> CampaignSpec:
    """Grid over burst volume (``data_scale``) × tenant count (``n_jobs``).

    Each cell's storm is drawn from its own derived seed, so the grid also
    samples different randomized priority mixes; pin one mix by registering
    with ``seed`` in ``base_params`` instead.
    """
    return CampaignSpec(
        name="burst-grid",
        scenario="burst-storm",
        axes=(
            ParameterAxis("data_scale", _floats(scales, "scales")),
            ParameterAxis("n_jobs", _ints(tenants, "tenants")),
        ),
        base_params={
            "with_hog": with_hog,
            "duration_s": duration_s,
            "time_scale": time_scale,
            "capacity_mib_s": capacity_mib_s,
        },
        seed=seed,
        description=(
            "many-tenant contention: burst volume × tenant count, one "
            "seeded storm per cell"
        ),
    )


@CAMPAIGNS.register(
    "scale-osts",
    description="decentralization scaling: OST count × per-OST capacity",
)
def _scale_osts(
    osts: str = "1,2,4",
    capacities: str = "128,256",
    file_mib: float = 64.0,
    procs: int = 4,
    science_nodes: int = 6,
    duration: float = 3.0,
    seed: int = 0,
) -> CampaignSpec:
    """Grid over ``n_osts`` × ``capacity_mib_s`` on the multi-OST scenario.

    One independent controller per OST (§II-B), so this maps how aggregate
    throughput and fairness scale as targets are added or sped up.
    """
    return CampaignSpec(
        name="scale-osts",
        scenario="multiost",
        axes=(
            ParameterAxis("n_osts", _ints(osts, "osts")),
            ParameterAxis("capacity_mib_s", _floats(capacities, "capacities")),
        ),
        base_params={
            "stripe_count": 1,
            "file_mib": file_mib,
            "procs": procs,
            "science_nodes": science_nodes,
            "duration": duration,
        },
        seed=seed,
        description=(
            "per-OST decentralization: cluster width × target speed grid"
        ),
    )


@CAMPAIGNS.register(
    "mechanism-shootout",
    description="every registered bandwidth mechanism on one workload",
)
def _mechanism_shootout(
    mechanisms: str = "",
    scenario: str = "recompensation",
    data_scale: float = BENCH_SCALE,
    time_scale: float = BENCH_SCALE,
    capacity_mib_s: float = 1024.0,
    seed: int = 0,
) -> CampaignSpec:
    """One cell per mechanism on the §IV-F contended workload (by default).

    ``mechanisms`` lists registry names (comma-separated); empty means
    *every* registered mechanism, so new contenders join the shootout the
    moment they register.  The campaign report is the per-mechanism
    throughput/fairness/latency comparison table.
    """
    if mechanisms.strip():
        names = tuple(
            normalize_name(m) for m in mechanisms.split(",") if m.strip()
        )
        for name in names:
            MECHANISMS.get(name)  # fail fast on unknown contenders
    else:
        names = tuple(MECHANISMS.names())
    if not names:
        raise ValueError("parameter 'mechanisms' must list at least one name")
    # Scenarios differ in scale knobs; forward only what this one accepts
    # so any registered scenario can host the shootout.
    from repro.scenarios import REGISTRY

    accepted = REGISTRY.get(scenario).params
    base = {
        key: value
        for key, value in (
            ("data_scale", data_scale),
            ("time_scale", time_scale),
            ("capacity_mib_s", capacity_mib_s),
        )
        if key in accepted
    }
    return CampaignSpec(
        name="mechanism-shootout",
        scenario=scenario,
        axes=(ParameterAxis("mechanism", names),),
        base_params=base,
        seed=seed,
        description=(
            "head-to-head mechanism comparison: throughput, fairness and "
            "tail latency per registered mechanism"
        ),
    )


@CAMPAIGNS.register(
    "chaos-shootout",
    description="every registered mechanism under a registered fault",
)
def _chaos_shootout(
    mechanisms: str = "",
    fault: str = "ost-crash",
    fault_start_s: float = 0.4,
    fault_duration_s: float = 0.4,
    scenario: str = "quickstart",
    duration_s: float = 4.0,
    seed: int = 0,
) -> CampaignSpec:
    """One cell per mechanism, each run through the same disturbance.

    The reserved ``fault`` axis attaches the named registered injector to
    every cell (:data:`~repro.faults.FAULTS`; seeded injectors inherit each
    cell's derived seed), so the sweep answers the question §IV's steady
    workloads cannot: which mechanism re-converges fastest when an OST
    crashes, degrades, or the network partitions mid-run?  The campaign
    report is the ranked recovery-time / fairness-under-failure table, and
    rows are byte-identical across ``--jobs`` like any other campaign.

    Parameters
    ----------
    mechanisms:
        Comma-separated mechanism registry names; empty pits *every*
        registered mechanism against the fault.
    fault:
        Registered fault injector every cell runs under.
    fault_start_s / fault_duration_s:
        Disturbance window, forwarded as ``fault_params`` overrides
        (injectors share the ``start_s``/``duration_s`` vocabulary).
    scenario:
        Base registered scenario providing the contended workload.
    duration_s:
        Simulated-duration cap so a cell whose clients never re-finish
        (e.g. under a long partition) still terminates; 0 disables it.
    seed:
        Campaign seed; derives each cell's seed (churn victim draws).
    """
    if mechanisms.strip():
        names = tuple(
            normalize_name(m) for m in mechanisms.split(",") if m.strip()
        )
        for name in names:
            MECHANISMS.get(name)  # fail fast on unknown contenders
    else:
        names = tuple(MECHANISMS.names())
    if not names:
        raise ValueError("parameter 'mechanisms' must list at least one name")
    from repro.faults import FAULTS

    entry = FAULTS.get(fault)  # fail fast on unknown faults
    fault_params = {
        key: value
        for key, value in (
            ("start_s", fault_start_s),
            ("duration_s", fault_duration_s),
        )
        if key in entry.params
    }
    from repro.scenarios import REGISTRY

    accepted = REGISTRY.get(scenario).params
    base = {"fault": entry.name, "fault_params": fault_params}
    if duration_s:
        if "duration" in accepted:
            base["duration"] = duration_s
        elif "duration_s" in accepted:
            base["duration_s"] = duration_s
        else:
            raise ValueError(
                f"scenario {scenario!r} takes no duration cap, so "
                f"duration_s={duration_s:g} cannot be applied; pass "
                "duration_s=0 to run cells to client completion"
            )
    return CampaignSpec(
        name="chaos-shootout",
        scenario=scenario,
        axes=(ParameterAxis("mechanism", names),),
        base_params=base,
        seed=seed,
        description=(
            f"fault tolerance head-to-head: every mechanism under "
            f"{entry.name!r} on scenario {scenario!r} (recovery time, "
            "fairness under failure, dropped/retried RPCs)"
        ),
    )


@CAMPAIGNS.register(
    "decentralization-tax",
    description=(
        "control-plane latency × OST count × workload, every mechanism "
        "as contrast"
    ),
)
def _decentralization_tax(
    mechanisms: str = "",
    latencies: str = "0.0,0.05,0.2",
    osts: str = "2",
    workloads: str = "native,burst",
    duration_s: float = 3.0,
    seed: int = 0,
) -> CampaignSpec:
    """The figure the paper doesn't have: what centralization actually costs.

    Every registered mechanism runs the same contended multi-OST cells
    while a ``mechanism_params`` axis sweeps the centralized controller's
    control-plane latency.  The swept ``{"ctrl_latency_s": …}`` override
    only bites mechanisms that have the knob (``sdn``); the decentralized
    contenders ride the same axis unchanged and serve as the flat
    reference lines.  The campaign report ranks mechanisms per latency
    step — the ``sdn`` rows slide down the ranking as the control plane
    slows, which *is* the decentralization tax, quantified per cell by
    the ``rule_lag_s`` / ``overshoot_bytes`` / ``reservation_util``
    columns.

    Parameters
    ----------
    mechanisms:
        Comma-separated mechanism registry names; empty means *every*
        registered mechanism, so new contenders join automatically.
    latencies:
        One-way control-plane latencies (simulated seconds) for the
        ``mechanism_params`` axis.
    osts:
        OST counts for the cluster-width axis (one controller per OST for
        the decentralized mechanisms; one shared controller for ``sdn``).
    workloads:
        Registered workload patterns per cell — the steady/bursty
        contrast decides how much a stale view costs.  The special name
        ``native`` keeps the scenario's own mixed workload (axis value
        ``None``: the reserved ``workload`` param skips the rebuild).
    duration_s:
        Simulated-duration cap per cell (0 runs cells to completion).
    seed:
        Campaign seed; derives each cell's workload seed.
    """
    if mechanisms.strip():
        names = tuple(
            normalize_name(m) for m in mechanisms.split(",") if m.strip()
        )
        for name in names:
            MECHANISMS.get(name)  # fail fast on unknown contenders
    else:
        names = tuple(MECHANISMS.names())
    if not names:
        raise ValueError("parameter 'mechanisms' must list at least one name")
    workload_names = tuple(
        None if normalize_name(w) == "native" else normalize_name(w)
        for w in workloads.split(",")
        if w.strip()
    )
    if not workload_names:
        raise ValueError("parameter 'workloads' must list at least one name")
    for name in workload_names:
        if name is not None:
            WORKLOADS.get(name)  # fail fast on unknown patterns
    latency_values = tuple(
        {"ctrl_latency_s": value}
        for value in _floats(latencies, "latencies")
    )
    base = {"duration": duration_s} if duration_s else {}
    return CampaignSpec(
        name="decentralization-tax",
        scenario="multiost",
        axes=(
            ParameterAxis("mechanism", names),
            ParameterAxis("mechanism_params", latency_values),
            ParameterAxis("n_osts", _ints(osts, "osts")),
            ParameterAxis("workload", workload_names),
        ),
        base_params=base,
        seed=seed,
        description=(
            "the decentralization tax, measured: every mechanism over a "
            "control-plane latency × cluster width × demand-shape grid"
        ),
    )


@CAMPAIGNS.register(
    "workload-shootout",
    description="one mechanism across every registered workload pattern",
)
def _workload_shootout(
    workloads: str = "",
    scenario: str = "quickstart",
    mechanism: str = "adaptbf",
    duration_s: float = 6.0,
    seed: int = 0,
) -> CampaignSpec:
    """One cell per workload pattern over a fixed contention structure.

    The reserved ``workload`` axis rebuilds every process of the base
    scenario from the named :data:`~repro.workloads.registry.WORKLOADS`
    entry (factory defaults, with each cell's derived seed flowing into
    seeded patterns), so the sweep answers "how does the mechanism behave
    as demand turns sequential / bursty / memoryless / phased?" — the
    irregular-demand evaluation the paper's fixed Filebench shapes could
    not express.

    Parameters
    ----------
    workloads:
        Comma-separated workload registry names; empty sweeps *every*
        registered workload, so new patterns join the shootout the moment
        they register.
    scenario:
        Base registered scenario providing the job/priority structure.
    mechanism:
        Bandwidth mechanism every cell runs under.
    duration_s:
        Simulated-duration cap applied to every cell (open-ended
        workloads would otherwise run to completion at whatever volume
        their defaults imply).  The base scenario must expose a
        ``duration``/``duration_s`` knob to receive it; scenarios
        without one are rejected unless the cap is disabled with 0.
    seed:
        Campaign seed; each cell derives its own workload seed from it.
    """
    if workloads.strip():
        names = tuple(
            normalize_name(w) for w in workloads.split(",") if w.strip()
        )
        for name in names:
            WORKLOADS.get(name)  # fail fast on unknown patterns
    else:
        names = tuple(WORKLOADS.names())
    if not names:
        raise ValueError("parameter 'workloads' must list at least one name")
    from repro.scenarios import REGISTRY

    accepted = REGISTRY.get(scenario).params
    base = {"mechanism": mechanism}
    if duration_s:
        if "duration" in accepted:
            base["duration"] = duration_s
        elif "duration_s" in accepted:
            base["duration_s"] = duration_s
        else:
            raise ValueError(
                f"scenario {scenario!r} takes no duration cap, so "
                f"duration_s={duration_s:g} cannot be applied; pass "
                "duration_s=0 to run cells to workload completion"
            )
    return CampaignSpec(
        name="workload-shootout",
        scenario=scenario,
        axes=(ParameterAxis("workload", names),),
        base_params=base,
        seed=seed,
        description=(
            "demand-shape sweep: every registered workload pattern on "
            f"scenario {scenario!r} under {mechanism!r}"
        ),
    )
