"""The declarative campaign specification: a parameter sweep over a scenario.

A :class:`CampaignSpec` is a frozen description of a whole *family* of runs —
the batch-system counterpart of PR 1's single-run ``ScenarioSpec``.  It names
a base registered scenario and composes one or more :class:`ParameterAxis`
objects into cells:

* ``grid`` — the Cartesian product of all axes (Fig. 9's interval axis,
  burst-intensity × priority-mix grids, OST-count × capacity scaling);
* ``zip``  — axes advanced in lockstep (paired parameters);
* ``random`` — ``samples`` cells drawn per-axis from a
  ``random.Random(seed)`` stream (Monte-Carlo style coverage).

Each :class:`CampaignCell` resolves to a concrete
:class:`~repro.scenarios.spec.ScenarioSpec` through the scenario registry's
parameter-override machinery — exactly what ``run <scenario> --param k=v``
does — so any cell is re-runnable standalone from its recorded parameters.
Several parameters are *reserved*: they apply to the resolved spec rather
than the scenario factory (unless the factory itself takes the name), so
any campaign can sweep them as axes without every scenario factory growing
the knob.  :data:`POLICY_PARAMS` (``mechanism``/``mechanism_params``) swaps the
bandwidth mechanism and its factory overrides via
:meth:`~repro.scenarios.spec.ScenarioSpec.with_policy` (the
``mechanism-shootout`` and ``decentralization-tax`` built-ins), :data:`WORKLOAD_PARAMS` (``workload``)
rebuilds every process's pattern from the named
:data:`~repro.workloads.registry.WORKLOADS` entry via
:meth:`~repro.scenarios.spec.ScenarioSpec.with_workload` (the
``workload-shootout`` built-in), :data:`RUN_PARAMS` (``backend``) sweeps
the kernel backend, and :data:`FAULT_PARAMS` (``fault``/``fault_params``)
attaches a registered disturbance via
:meth:`~repro.scenarios.spec.ScenarioSpec.with_fault` (the
``chaos-shootout`` built-in).
Cells carry a deterministic RNG seed derived from the campaign seed and the
cell index (:func:`derive_cell_seed`); scenarios that take a ``seed``
parameter (e.g. ``burst-storm``) receive it automatically unless the
campaign pins one.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Tuple

from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "AXIS_MODES",
    "POLICY_PARAMS",
    "WORKLOAD_PARAMS",
    "RUN_PARAMS",
    "FAULT_PARAMS",
    "ParameterAxis",
    "CampaignCell",
    "CampaignSpec",
    "derive_cell_seed",
]

#: How a campaign's axes compose into cells; see :class:`CampaignSpec`.
AXIS_MODES = ("grid", "zip", "random")

#: Cell parameters applied to the resolved spec's policy rather than passed
#: to the scenario factory (unless the factory itself takes the name).
#: ``mechanism`` swaps the bandwidth mechanism; ``mechanism_params`` carries
#: (JSON-representable) factory overrides for it.  Because the mechanism
#: axis sweeps *heterogeneous* factories, override keys a cell's mechanism
#: does not accept are dropped at resolve time — one ``mechanism_params``
#: axis (say, ``{"ctrl_latency_s": …}``) can ride along every contender and
#: only bite the mechanisms that have the knob (the ``decentralization-tax``
#: built-in leans on exactly this).
POLICY_PARAMS = ("mechanism", "mechanism_params")

#: Cell parameters applied to the resolved spec's workload axis
#: (``ScenarioSpec.with_workload``) rather than the scenario factory.
WORKLOAD_PARAMS = ("workload",)

#: Cell parameters applied to the resolved spec's run spec
#: (``ScenarioSpec.with_run``) rather than the scenario factory —
#: ``backend`` sweeps the kernel backend, which is how a campaign
#: cross-checks that results are backend-invariant (they are bit-identical
#: by the engine's determinism contract) while comparing wall-clock cost.
RUN_PARAMS = ("backend",)

#: Cell parameters applied to the resolved spec's fault axis
#: (``ScenarioSpec.with_fault``) rather than the scenario factory —
#: ``fault`` names a registered injector and ``fault_params`` carries its
#: (JSON-representable) overrides, so any campaign can subject any
#: scenario to the chaos axis (the ``chaos-shootout`` built-in).  Both
#: survive ``to_json_dict``/``from_json_dict`` verbatim, which is what
#: lets ``campaign resume`` rebuild a mid-fault-window sweep registry-free
#: from the store.
FAULT_PARAMS = ("fault", "fault_params")

#: ``describe()`` previews at most this many cells.
_DESCRIBE_CELLS = 8


def _filter_mechanism_params(
    mechanism: str, overrides: Mapping[str, Any]
) -> Dict[str, Any]:
    """Keep only the override keys ``mechanism``'s factory accepts.

    The mechanism axis sweeps factories with different schemas, so a swept
    ``mechanism_params`` value legitimately names knobs most contenders
    lack; silently dropping the inapplicable keys (in sorted order, for
    deterministic spec content) is what makes the shared axis composable.
    Typos against a *single* mechanism still fail fast: the CLI's
    ``--mechanism-param`` path validates against the factory directly.
    """
    from repro.core.mechanism import MECHANISMS

    accepted = MECHANISMS.get(mechanism).params
    return {
        key: overrides[key] for key in sorted(overrides) if key in accepted
    }


def derive_cell_seed(campaign_seed: int, index: int) -> int:
    """Deterministic per-cell seed from the campaign seed + cell index.

    Hash-derived (not ``campaign_seed + index``) so neighbouring cells get
    uncorrelated workload streams, and stable across processes and Python
    versions — workers and re-runs always agree.
    """
    digest = hashlib.sha256(f"{campaign_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFF


@dataclass(frozen=True)
class ParameterAxis:
    """One swept scenario parameter and the values it takes."""

    param: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.param:
            raise ValueError("axis parameter name must be non-empty")
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.param!r} needs at least one value")


@dataclass(frozen=True)
class CampaignCell:
    """One point of the sweep: parameter overrides plus its derived seed."""

    index: int
    params: Mapping[str, Any]
    seed: int


@dataclass(frozen=True)
class CampaignSpec:
    """A frozen, validated sweep declaration.

    Parameters
    ----------
    name:
        Campaign name (registry key).
    scenario:
        The base *registered scenario* every cell builds on.
    axes:
        Swept parameters; composition follows ``mode``.
    mode:
        ``"grid"`` (Cartesian product, the default), ``"zip"`` (lockstep,
        all axes equal length) or ``"random"`` (``samples`` seeded draws).
    base_params:
        Fixed overrides applied to every cell (axis params must not repeat
        here).  Pin ``seed`` here to make all cells share one workload seed
        instead of the derived per-cell seeds.
    samples:
        Cell count for ``random`` mode (rejected otherwise).
    seed:
        Campaign seed: feeds the ``random``-mode draws and every cell's
        :func:`derive_cell_seed`.
    """

    name: str
    scenario: str
    axes: Tuple[ParameterAxis, ...]
    mode: str = "grid"
    base_params: Mapping[str, Any] = field(default_factory=dict)
    samples: int = 0
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if not self.scenario:
            raise ValueError("campaign must name a base scenario")
        object.__setattr__(self, "axes", tuple(self.axes))
        if not self.axes:
            raise ValueError("campaign needs at least one parameter axis")
        if self.mode not in AXIS_MODES:
            raise ValueError(
                f"unknown campaign mode {self.mode!r}; options: {AXIS_MODES}"
            )
        names = [axis.param for axis in self.axes]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(
                f"duplicate axis parameter(s): {sorted(duplicates)}"
            )
        object.__setattr__(self, "base_params", dict(self.base_params))
        overlap = set(names) & set(self.base_params)
        if overlap:
            raise ValueError(
                f"parameter(s) {sorted(overlap)} appear both as an axis "
                "and in base_params"
            )
        if self.mode == "zip":
            lengths = sorted({len(axis.values) for axis in self.axes})
            if len(lengths) > 1:
                raise ValueError(
                    f"zip mode needs equal-length axes, got lengths {lengths}"
                )
        if self.mode == "random":
            if self.samples <= 0:
                raise ValueError("random mode needs samples > 0")
        elif self.samples:
            raise ValueError("samples applies to random mode only")

    # -- cell enumeration --------------------------------------------------
    @property
    def n_cells(self) -> int:
        if self.mode == "grid":
            count = 1
            for axis in self.axes:
                count *= len(axis.values)
            return count
        if self.mode == "zip":
            return len(self.axes[0].values)
        return self.samples

    def _combinations(self) -> Iterator[Dict[str, Any]]:
        names = [axis.param for axis in self.axes]
        if self.mode == "grid":
            for combo in itertools.product(*(a.values for a in self.axes)):
                yield dict(zip(names, combo))
        elif self.mode == "zip":
            for combo in zip(*(a.values for a in self.axes)):
                yield dict(zip(names, combo))
        else:
            rng = random.Random(self.seed)  # repro: allow[no-raw-random] reason=seeded stdlib draw keeps campaign grids numpy-free; RngStreams requires numpy
            for _ in range(self.samples):
                yield {a.param: rng.choice(a.values) for a in self.axes}

    def cells(self) -> Tuple[CampaignCell, ...]:
        """Every cell of the sweep, in deterministic index order."""
        return tuple(
            CampaignCell(
                index=index,
                params=params,
                seed=derive_cell_seed(self.seed, index),
            )
            for index, params in enumerate(self._combinations())
        )

    # -- resolution --------------------------------------------------------
    def build_params(self, cell: CampaignCell) -> Dict[str, Any]:
        """The exact factory kwargs ``resolve`` hands to the registry.

        ``base_params`` overlaid with the cell's axis values, plus the
        derived cell seed whenever the scenario accepts a ``seed``
        parameter that the campaign did not pin — recording this dict is
        enough to re-run the cell standalone via ``run <scenario> --param``.
        """
        from repro.scenarios import REGISTRY

        entry = REGISTRY.get(self.scenario)
        params = dict(self.base_params)
        params.update(cell.params)
        if "seed" in entry.params:
            params.setdefault("seed", cell.seed)
        return params

    def resolve(self, cell: CampaignCell) -> ScenarioSpec:
        """Materialize one cell into a concrete :class:`ScenarioSpec`.

        Parameters the scenario factory accepts go to the factory; the
        reserved :data:`POLICY_PARAMS` are applied to the built spec's
        policy (``mechanism`` swaps the bandwidth mechanism under test),
        the reserved :data:`WORKLOAD_PARAMS` to its workload axis
        (``workload`` rebuilds every process's pattern from the registry),
        and the reserved :data:`RUN_PARAMS` to its run spec (``backend``
        sweeps the kernel backend).  Anything else is rejected with the
        factory's own error.
        """
        from repro.scenarios import REGISTRY

        entry = REGISTRY.get(self.scenario)
        params = self.build_params(cell)
        policy_overrides = {
            key: params.pop(key)
            for key in POLICY_PARAMS
            if key in params and key not in entry.params
        }
        workload_overrides = {
            key: params.pop(key)
            for key in WORKLOAD_PARAMS
            if key in params and key not in entry.params
        }
        run_overrides = {
            key: params.pop(key)
            for key in RUN_PARAMS
            if key in params and key not in entry.params
        }
        fault_overrides = {
            key: params.pop(key)
            for key in FAULT_PARAMS
            if key in params and key not in entry.params
        }
        if fault_overrides.get("fault_params") and not fault_overrides.get(
            "fault"
        ):
            raise ValueError("fault_params given without a fault name")
        spec = entry.build(**params)
        if "mechanism_params" in policy_overrides:
            target = policy_overrides.get("mechanism") or spec.policy.mechanism
            policy_overrides["mechanism_params"] = _filter_mechanism_params(
                target, policy_overrides["mechanism_params"] or {}
            )
        if policy_overrides:
            spec = spec.with_policy(**policy_overrides)
        if run_overrides:
            spec = spec.with_run(**run_overrides)
        if spec.run.seed != cell.seed:
            # Stamp the derived seed into the run spec for provenance even
            # when the scenario factory itself takes no seed.
            spec = spec.with_run(seed=cell.seed)
        if workload_overrides.get("workload"):
            # After seed stamping, so seeded workload factories inherit the
            # cell's derived seed through with_workload.
            spec = spec.with_workload(workload_overrides["workload"])
        if fault_overrides.get("fault"):
            # Likewise after seed stamping: seeded injectors (client-churn
            # victim selection) inherit the cell's derived seed.
            spec = spec.with_fault(
                fault_overrides["fault"],
                fault_overrides.get("fault_params") or (),
            )
        return spec

    # -- identity ----------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-ready canonical form (drives :meth:`spec_hash`)."""
        return {
            "name": self.name,
            "scenario": self.scenario,
            "mode": self.mode,
            "seed": self.seed,
            "samples": self.samples,
            "description": self.description,
            "base_params": dict(self.base_params),
            "axes": [
                {"param": axis.param, "values": list(axis.values)}
                for axis in self.axes
            ],
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from its :meth:`to_json_dict` canonical form.

        Round-trip exactness (``rebuilt.spec_hash() == original``) is what
        lets a persistent store resume a campaign without the original
        factory: the store records the canonical form at first run and
        ``campaign resume`` rebuilds the identical spec from it.  (Axis
        values and ``base_params`` must be JSON-representable for the
        round trip to be exact — true of every CLI-reachable campaign.)
        """
        return cls(
            name=payload["name"],
            scenario=payload["scenario"],
            axes=tuple(
                ParameterAxis(axis["param"], tuple(axis["values"]))
                for axis in payload["axes"]
            ),
            mode=payload.get("mode", "grid"),
            base_params=dict(payload.get("base_params", {})),
            samples=payload.get("samples", 0),
            seed=payload.get("seed", 0),
            description=payload.get("description", ""),
        )

    def spec_hash(self) -> str:
        """Stable content hash of the campaign declaration."""
        canonical = json.dumps(
            self.to_json_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # -- description -------------------------------------------------------
    def describe(self) -> str:
        """Human-readable multi-line summary of the sweep."""
        lines = [f"campaign: {self.name}"]
        if self.description:
            lines.append(f"  {self.description}")
        lines += [
            f"scenario: {self.scenario}",
            f"mode:     {self.mode}, seed={self.seed}, "
            f"cells={self.n_cells}, hash={self.spec_hash()}",
            "axes:",
        ]
        for axis in self.axes:
            rendered = ", ".join(f"{v!r}" for v in axis.values)
            lines.append(f"  {axis.param}: [{rendered}]")
        if self.base_params:
            lines.append("base parameters:")
            for key in sorted(self.base_params):
                lines.append(f"  {key} = {self.base_params[key]!r}")
        cells = self.cells()
        lines.append("cells:")
        for cell in cells[:_DESCRIBE_CELLS]:
            pairs = " ".join(
                f"{k}={v!r}" for k, v in sorted(cell.params.items())
            )
            lines.append(f"  [{cell.index}] {pairs} (seed={cell.seed})")
        if len(cells) > _DESCRIBE_CELLS:
            lines.append(f"  ... (+{len(cells) - _DESCRIBE_CELLS} more)")
        return "\n".join(lines)
