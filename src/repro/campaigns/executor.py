"""Campaign execution: drain cells through the work queue, durably or not.

:func:`run_campaign` is the one public entry point for executing a
campaign.  Since the persistence layer landed it is a thin shell over
:class:`~repro.campaigns.queue.WorkQueue` +
:class:`~repro.campaigns.store.ResultStore`:

* the default (no ``store``) drains through an in-memory
  :class:`~repro.campaigns.store.NullStore` — the historical
  fire-and-forget behavior, byte-identical artifacts included;
* with a persistent store (:func:`~repro.campaigns.store.open_store`), every
  completed cell is committed the moment it finishes, a killed run can be
  resumed (``resume=True`` skips committed cells and reclaims expired
  leases), and the finished result is byte-identical to an uninterrupted
  run for any worker count and any kill point — per-cell determinism plus
  keep-first commits make resumption invisible in the rows.

Cells are resolved to concrete :class:`ScenarioSpec` objects in the
*parent* process and shipped to workers as small frozen dataclasses — no
worker ever consults the scenario registry, so campaigns over scenarios
registered at runtime (outside ``repro.scenarios.builtin``) work under any
multiprocessing start method, spawn included.  Only the reduced
:class:`~repro.campaigns.aggregate.CellRow` travels back; full simulation
state never crosses processes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.campaigns.aggregate import CampaignSummary, CellRow
from repro.campaigns.queue import (
    DEFAULT_LEASE_TTL,
    CellFailure,
    CellOutcome,
    ProgressCallback,
    StoreNotEmptyError,
    WorkQueue,
)
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import NullStore, ResultStore

__all__ = [
    "CellOutcome",
    "CampaignResult",
    "CampaignExecutionError",
    "run_campaign",
]


@dataclass
class CampaignResult:
    """All outcomes of one campaign run, in cell-index order.

    For a resumed run, ``outcomes`` holds *every* cell — the ``skipped``
    ones loaded back from the store plus the cells executed by this
    invocation — so artifacts written from a resumed result are
    byte-identical to an uninterrupted run's.
    """

    campaign: CampaignSpec
    jobs: int
    outcomes: List[CellOutcome]
    #: Total wall time of this invocation (includes pool startup).
    wall_s: float
    #: Cells loaded from the store and skipped (committed by earlier runs).
    skipped: int = 0

    @property
    def rows(self) -> List[CellRow]:
        return [outcome.row for outcome in self.outcomes]

    @property
    def executed(self) -> int:
        """Cells actually executed by *this* invocation."""
        return len(self.outcomes) - self.skipped

    @property
    def complete(self) -> bool:
        """True when every cell of the campaign has an outcome."""
        return len(self.outcomes) == self.campaign.n_cells

    @property
    def cells_per_s(self) -> float:
        """Execution throughput of this invocation.

        Counts only cells executed here — committed-and-skipped cells cost
        this run no simulation time, so including them would make resumed
        runs look impossibly fast.
        """
        return self.executed / self.wall_s if self.wall_s > 0 else 0.0

    def summary(self) -> CampaignSummary:
        reduced = CampaignSummary()
        for outcome in self.outcomes:
            reduced.add(outcome)
        return reduced


class CampaignExecutionError(RuntimeError):
    """Some cells failed to commit; everything that finished is durable.

    Carries the partial :class:`CampaignResult` (``result``) and the
    per-cell failures (``failures``).  With a persistent store the
    committed cells survive, so fixing the cause and resuming loses
    nothing.
    """

    def __init__(
        self, failures: List[CellFailure], result: CampaignResult
    ):
        self.failures = failures
        self.result = result
        detail = "; ".join(
            f"cell {failure.index} ({failure.error})"
            for failure in failures[:4]
        )
        if len(failures) > 4:
            detail += f"; ... (+{len(failures) - 4} more)"
        super().__init__(
            f"{len(failures)} of {result.campaign.n_cells} campaign "
            f"cell(s) failed: {detail}. Committed cells are preserved; "
            "resume to retry the failures."
        )


def run_campaign(
    campaign: CampaignSpec,
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    max_cells: Optional[int] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
) -> CampaignResult:
    """Run every pending cell of ``campaign`` across ``jobs`` workers.

    The aggregated rows are independent of ``jobs`` *and* of any
    crash/resume history: cells are resolved from the same frozen spec,
    executed by the same deterministic simulator, committed first-wins,
    and re-ordered by cell index after collection.

    Parameters
    ----------
    store:
        A :class:`~repro.campaigns.store.ResultStore` to commit cells into
        (default: in-memory null store — nothing durable).  The store must
        belong to this campaign's spec hash; anything else raises
        :class:`~repro.campaigns.store.SpecHashMismatchError`.
    resume:
        Allow the store to already hold committed cells; they are loaded
        back (bit-identical) and skipped.  Without it a non-empty store is
        a loud :class:`~repro.campaigns.queue.StoreNotEmptyError`.
    max_cells:
        Execute at most this many cells this invocation, then return an
        incomplete result (``result.complete`` is False) — incremental
        grinding of a large sweep across many invocations.
    lease_ttl:
        Seconds a worker's claim on a cell stays valid without a commit;
        leases orphaned by worker death are reclaimed after expiry.

    Raises
    ------
    CampaignExecutionError
        If any executed cell failed.  Committed cells are already durable;
        the partial result rides on the exception.
    """
    if jobs <= 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    start = time.perf_counter()  # repro: allow[no-wallclock] reason=wall time recorded into timing.json only; never enters simulation state
    owns_store = store is None
    if store is None:
        store = NullStore()
    try:
        queue = WorkQueue(campaign, store, lease_ttl=lease_ttl)
        prior = queue.committed_outcomes()
        if prior and not resume:
            raise StoreNotEmptyError(
                store.location, len(prior), campaign.n_cells
            )
        drained = queue.drain(jobs=jobs, progress=progress, max_cells=max_cells)
        outcomes = sorted(
            prior + drained.outcomes, key=lambda outcome: outcome.index
        )
        result = CampaignResult(
            campaign=campaign,
            jobs=jobs,
            outcomes=outcomes,
            wall_s=time.perf_counter() - start,  # repro: allow[no-wallclock] reason=reporting-only wall time for timing.json
            skipped=len(prior),
        )
        if drained.failures:
            raise CampaignExecutionError(drained.failures, result)
        return result
    finally:
        if owns_store:
            store.close()
