"""Campaign execution: fan cells out across worker processes.

AdapTBF's per-OST decentralization makes campaign cells embarrassingly
parallel — each is an independent simulation — so the executor is a thin
:class:`~concurrent.futures.ProcessPoolExecutor` fan-out:

* ``jobs == 1`` runs every cell serially in-process (no pool, no pickling,
  fully deterministic — the configuration tests and figure ports use);
* ``jobs > 1`` submits one task per cell and collects results as they
  complete (a ``progress`` callback sees completion order), then restores
  cell-index order, so the aggregated output is identical to a serial run.

Cells are resolved to concrete :class:`ScenarioSpec` objects in the
*parent* process and shipped to workers as small frozen dataclasses — no
worker ever consults the scenario registry, so campaigns over scenarios
registered at runtime (outside ``repro.scenarios.builtin``) work under any
multiprocessing start method, spawn included.  Only the reduced
:class:`~repro.campaigns.aggregate.CellRow` travels back; full simulation
state never crosses processes.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.campaigns.aggregate import CampaignSummary, CellRow, run_cell
from repro.campaigns.spec import CampaignCell, CampaignSpec
from repro.scenarios.spec import ScenarioSpec

__all__ = ["CellOutcome", "CampaignResult", "run_campaign"]

#: Signature of the optional progress hook: (outcome, total_cells).
ProgressCallback = Callable[["CellOutcome", int], None]


@dataclass(frozen=True)
class CellOutcome:
    """One executed cell: its identity, reduced row and wall time."""

    index: int
    params: Dict[str, Any]
    seed: int
    row: CellRow
    wall_s: float


@dataclass
class CampaignResult:
    """All outcomes of one campaign run, in cell-index order."""

    campaign: CampaignSpec
    jobs: int
    outcomes: List[CellOutcome]
    #: Total wall time of the campaign (includes pool startup).
    wall_s: float

    @property
    def rows(self) -> List[CellRow]:
        return [outcome.row for outcome in self.outcomes]

    @property
    def cells_per_s(self) -> float:
        return len(self.outcomes) / self.wall_s if self.wall_s > 0 else 0.0

    def summary(self) -> CampaignSummary:
        reduced = CampaignSummary()
        for outcome in self.outcomes:
            reduced.add(outcome)
        return reduced


def _execute_cell(spec: ScenarioSpec, cell: CampaignCell) -> CellOutcome:
    """Run one pre-resolved cell; the worker-side entry point."""
    start = time.perf_counter()
    row = run_cell(spec)
    return CellOutcome(
        index=cell.index,
        params=dict(cell.params),
        seed=cell.seed,
        row=row,
        wall_s=time.perf_counter() - start,
    )


def run_campaign(
    campaign: CampaignSpec,
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> CampaignResult:
    """Run every cell of ``campaign`` across ``jobs`` worker processes.

    The aggregated rows are independent of ``jobs``: cells are resolved
    from the same frozen spec, executed by the same deterministic
    simulator, and re-ordered by cell index after parallel collection.
    """
    if jobs <= 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    cells = campaign.cells()
    total = len(cells)
    start = time.perf_counter()
    # Resolve in the parent: registry lookups and parameter validation fail
    # fast (before any pool spins up), and workers need no registry at all.
    resolved = [(campaign.resolve(cell), cell) for cell in cells]
    outcomes: List[CellOutcome] = []

    if jobs == 1 or total <= 1:
        for spec, cell in resolved:
            outcome = _execute_cell(spec, cell)
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome, total)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, total)) as pool:
            futures = [
                pool.submit(_execute_cell, spec, cell)
                for spec, cell in resolved
            ]
            for future in as_completed(futures):
                outcome = future.result()
                outcomes.append(outcome)
                if progress is not None:
                    progress(outcome, total)
        outcomes.sort(key=lambda outcome: outcome.index)

    return CampaignResult(
        campaign=campaign,
        jobs=jobs,
        outcomes=outcomes,
        wall_s=time.perf_counter() - start,
    )
