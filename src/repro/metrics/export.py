"""CSV export of experiment results.

Writes the raw data behind each figure so downstream users can plot with
their tool of choice (the repository itself renders text-only).  All
writers return the path written, create parent directories as needed, and
use plain ``csv`` — no extra dependencies.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.experiment import ExperimentResult
    from repro.metrics.timeline import Timeline

__all__ = ["export_timeline", "export_summary", "export_records", "export_all"]

PathLike = Union[str, Path]


def _prepare(path: PathLike) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def export_timeline(
    timeline: "Timeline", path: PathLike, jobs: Iterable[str] | None = None
) -> Path:
    """Per-bin throughput series: ``time_s, <job1>, <job2>, ..., aggregate``.

    Values are MiB/s, zero-filled — exactly the Fig. 3/5 plotting input.
    """
    path = _prepare(path)
    job_ids = list(jobs) if jobs is not None else timeline.jobs
    horizon = timeline.horizon_s
    series = {job: timeline.series(job, until=horizon)[1] for job in job_ids}
    times = timeline.series(job_ids[0], until=horizon)[0] if job_ids else []
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s"] + job_ids + ["aggregate"])
        for i, t in enumerate(times):
            row = [f"{t:.3f}"]
            total = 0.0
            for job in job_ids:
                value = float(series[job][i])
                total += value
                row.append(f"{value:.3f}")
            row.append(f"{total:.3f}")
            writer.writerow(row)
    return path


def export_summary(
    summaries: Dict[str, "object"], path: PathLike
) -> Path:
    """Fig. 4(a)-style table: one row per mechanism, columns per job."""
    path = _prepare(path)
    jobs = sorted(
        {job for s in summaries.values() for job in s.per_job_mib_s}
    )
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["mechanism"] + jobs + ["aggregate_mib_s"])
        for mechanism, summary in summaries.items():
            writer.writerow(
                [mechanism]
                + [f"{summary.job(j):.3f}" for j in jobs]
                + [f"{summary.aggregate_mib_s:.3f}"]
            )
    return path


def export_records(result: "ExperimentResult", path: PathLike) -> Path:
    """Fig. 7 input: per-round record and demand per job (AdapTBF runs)."""
    path = _prepare(path)
    jobs = sorted(
        {job for round_ in result.history for job in round_.records}
    )
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        header = ["time_s"]
        for job in jobs:
            header += [f"{job}_record", f"{job}_demand"]
        writer.writerow(header)
        for round_ in result.history:
            row = [f"{round_.time:.3f}"]
            for job in jobs:
                row.append(str(round_.records.get(job, 0)))
                row.append(str(round_.demands.get(job, 0)))
            writer.writerow(row)
    return path


def export_all(
    results: Dict[str, "ExperimentResult"], directory: PathLike, prefix: str
) -> Dict[str, Path]:
    """Dump timelines for every mechanism + the summary + AdapTBF records."""
    directory = Path(directory)
    written: Dict[str, Path] = {}
    for mechanism, result in results.items():
        written[f"timeline_{mechanism}"] = export_timeline(
            result.timeline, directory / f"{prefix}_timeline_{mechanism}.csv"
        )
    written["summary"] = export_summary(
        {m: r.summary for m, r in results.items()},
        directory / f"{prefix}_summary.csv",
    )
    for mechanism, result in results.items():
        if result.history:
            written[f"records_{mechanism}"] = export_records(
                result, directory / f"{prefix}_records_{mechanism}.csv"
            )
    return written
