"""Experiment summaries: achieved bandwidth and gains versus a baseline.

These produce the numbers behind the paper's bar charts:

* Fig. 4(a)/6(a)/8(a): achieved I/O bandwidth per job and overall, per
  mechanism;
* Fig. 4(b)/6(b)/8(b): AdapTBF's per-job throughput gain/loss relative to a
  baseline, in percent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.metrics.timeline import Timeline

__all__ = [
    "BandwidthSummary",
    "summarize",
    "gains_versus",
    "jain_index",
    "weighted_jain",
]

MIB = 1 << 20


@dataclass(frozen=True)
class BandwidthSummary:
    """Achieved bandwidth of one experiment run."""

    mechanism: str
    duration_s: float
    per_job_mib_s: Dict[str, float]
    aggregate_mib_s: float

    def job(self, job_id: str) -> float:
        return self.per_job_mib_s.get(job_id, 0.0)


def summarize(
    mechanism: str,
    timeline: Timeline,
    duration_s: Optional[float] = None,
    jobs: Optional[List[str]] = None,
    job_completion_s: Optional[Dict[str, float]] = None,
) -> BandwidthSummary:
    """Compute per-job and aggregate mean bandwidth.

    A job's bandwidth is averaged over *its own* active span — from t=0 to
    its completion (or the experiment duration if it never finished).  This
    matches the paper's Fig. 4(a) reading: in a run-to-completion experiment
    where every job writes the same volume, a higher-priority job that
    finishes sooner achieves higher bandwidth even though total bytes are
    equal.  The aggregate is total bytes over the experiment duration — the
    storage server's overall delivered throughput.
    """
    span = duration_s if duration_s is not None else timeline.horizon_s
    if span <= 0:
        raise ValueError(f"duration must be positive, got {span}")
    job_ids = jobs if jobs is not None else timeline.jobs
    completions = job_completion_s or {}
    per_job: Dict[str, float] = {}
    for job in job_ids:
        job_span = min(completions.get(job, span), span)
        job_span = max(job_span, 1e-12)
        per_job[job] = timeline.total_bytes(job) / job_span / MIB
    return BandwidthSummary(
        mechanism=mechanism,
        duration_s=span,
        per_job_mib_s=per_job,
        aggregate_mib_s=timeline.total_bytes() / span / MIB,
    )


def weighted_jain(
    per_job: Dict[str, float], weights: Optional[Dict[str, float]] = None
) -> float:
    """Jain's fairness index over weighted per-job quantities.

    The raw-mapping core of :func:`jain_index`, usable on any per-job
    measure (bandwidth, bytes in a disturbance window, ...).  1.0 =
    perfectly proportional to the weights; 1/n = one job gets everything;
    the all-zero mapping reports 1.0 by convention (nothing served is
    vacuously fair).  Pure Python — the fault axis computes
    fairness-under-failure from it on the numpy-free path.
    """
    values = []
    for job, quantity in per_job.items():
        weight = (weights or {}).get(job, 1.0)
        if weight <= 0:
            raise ValueError(f"weight for {job!r} must be positive")
        values.append(quantity / weight)
    if not values or all(v == 0 for v in values):
        return 1.0
    numerator = sum(values) ** 2
    denominator = len(values) * sum(v * v for v in values)
    return numerator / denominator


def jain_index(
    summary: BandwidthSummary, weights: Optional[Dict[str, float]] = None
) -> float:
    """Jain's fairness index over (optionally weighted) per-job bandwidth.

    1.0 = perfectly proportional; 1/n = one job gets everything.  With
    ``weights`` set to the jobs' priorities, the index measures *weighted*
    fairness — how closely achieved bandwidth tracks the paper's
    node-proportional entitlement (``x_i = bw_i / weight_i``).
    """
    return weighted_jain(summary.per_job_mib_s, weights)


def gains_versus(
    subject: BandwidthSummary, baseline: BandwidthSummary
) -> Dict[str, float]:
    """Per-job percentage gain (+) / loss (−) of ``subject`` vs ``baseline``.

    Jobs absent from the baseline (zero bandwidth there) report ``inf`` gain
    when the subject served them at all.
    """
    gains: Dict[str, float] = {}
    jobs = set(subject.per_job_mib_s) | set(baseline.per_job_mib_s)
    for job in sorted(jobs):
        subject_bw = subject.job(job)
        baseline_bw = baseline.job(job)
        if baseline_bw == 0.0:
            gains[job] = float("inf") if subject_bw > 0 else 0.0
        else:
            gains[job] = 100.0 * (subject_bw - baseline_bw) / baseline_bw
    gains["aggregate"] = (
        100.0
        * (subject.aggregate_mib_s - baseline.aggregate_mib_s)
        / baseline.aggregate_mib_s
        if baseline.aggregate_mib_s > 0
        else 0.0
    )
    return gains
