"""Generic scenario-run reporting.

The figure adapters format paper-specific tables; everything else — new
registered scenarios, ad-hoc CLI runs, sweeps — shares this one renderer,
which turns a :class:`~repro.scenarios.runner.RunResult` into the standard
text block: spec header, per-job achieved bandwidth/share/completion,
aggregate, utilization, and the controller's final ledger.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.tables import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.campaigns.executor import CampaignResult
    from repro.scenarios.runner import RunResult

__all__ = [
    "format_run_report",
    "format_campaign_report",
    "format_mechanism_table",
    "format_chaos_table",
    "format_decentralization_table",
]


def format_run_report(result: "RunResult") -> str:
    """Render one pipeline run as a plain-text report."""
    spec = result.spec
    parts = []
    if spec is not None:
        parts += [spec.describe(), ""]

    summary = result.summary
    aggregate = summary.aggregate_mib_s
    job_ids = spec.job_ids if spec is not None else sorted(summary.per_job_mib_s)
    mib = 1 << 20
    rows = []
    for job in job_ids:
        done = result.job_completion_s.get(job)
        rows.append(
            [
                job,
                f"{summary.job(job):.1f}",
                f"{result.timeline.total_bytes(job) / mib:.0f}",
                f"{done:.2f}" if done is not None else "-",
            ]
        )
    parts.append(
        format_table(
            ["job", "MiB/s", "MiB_written", "completed_s"],
            rows,
            title=f"achieved bandwidth ({result.mechanism})",
        )
    )
    parts.append("")
    parts.append(
        f"aggregate: {aggregate:.1f} MiB/s over {result.duration_s:.2f}s "
        f"simulated; mean OST utilization {result.ost_utilization:.2f}; "
        f"all clients finished: {result.clients_finished}"
    )
    if result.per_ost_histories:
        rounds = ", ".join(
            f"OST{i:04d}: {len(h)}" for i, h in enumerate(result.per_ost_histories)
        )
        parts.append(f"controller rounds per OST: {rounds}")
        final = result.history[-1].records if result.history else {}
        if final:
            ledger = ", ".join(
                f"{job}: {tokens:+d}" for job, tokens in sorted(final.items())
            )
            parts.append(f"final lending ledger (first OST): {ledger}")
    return "\n".join(parts)


def format_campaign_report(result: "CampaignResult") -> str:
    """Render a campaign run: one row per cell plus cross-cell summary."""
    campaign = result.campaign
    param_names = sorted(
        {name for outcome in result.outcomes for name in outcome.params}
    )
    rows = []
    for outcome in result.outcomes:
        row = outcome.row
        rows.append(
            [outcome.index]
            + [repr(outcome.params.get(name, "")) for name in param_names]
            + [
                f"{row.aggregate_mib_s:.1f}",
                f"{row.fairness:.3f}",
                f"{row.latency_p99_ms:.1f}",
                row.rule_churn,
                f"{outcome.wall_s:.2f}",
            ]
        )
    summary = result.summary()
    parts = [
        format_table(
            ["cell"]
            + param_names
            + ["MiB/s", "fairness", "p99 ms", "churn", "wall s"],
            rows,
            title=(
                f"campaign {campaign.name!r} over scenario "
                f"{campaign.scenario!r} ({len(result.outcomes)} cells, "
                f"jobs={result.jobs})"
            ),
        ),
        "",
        f"aggregate MiB/s: mean {summary.aggregate_mean:.1f}, "
        f"min {summary.aggregate_min:.1f}, max {summary.aggregate_max:.1f} "
        f"(best cell {summary.best_cell_index}: "
        + " ".join(
            f"{k}={v!r}" for k, v in sorted(summary.best_cell_params.items())
        )
        + ")",
        f"wall: {result.wall_s:.2f}s total, {result.cells_per_s:.2f} cells/s "
        f"with {result.jobs} worker(s)"
        + (
            f"; executed {result.executed}, skipped "
            f"{result.skipped} already-committed"
            if result.skipped
            else ""
        )
        + f"; spec hash {campaign.spec_hash()}",
    ]
    return "\n".join(parts)


def format_mechanism_table(result: "CampaignResult") -> str:
    """Per-mechanism comparison: throughput, fairness, latency, churn.

    The shootout view of a campaign whose cells sweep ``mechanism``: one
    row per mechanism (cells of the same mechanism averaged), ranked by
    aggregate throughput so the head-to-head ordering is immediate.
    """
    buckets: "dict" = {}
    for outcome in result.outcomes:
        mechanism = outcome.params.get("mechanism", outcome.row.mechanism)
        buckets.setdefault(mechanism, []).append(outcome.row)

    def mean(values):
        return sum(values) / len(values) if values else 0.0

    ranked = sorted(
        buckets.items(),
        key=lambda item: -mean([r.aggregate_mib_s for r in item[1]]),
    )
    rows = []
    for mechanism, cell_rows in ranked:
        rows.append(
            [
                mechanism,
                f"{mean([r.aggregate_mib_s for r in cell_rows]):.1f}",
                f"{mean([r.fairness for r in cell_rows]):.3f}",
                f"{mean([r.latency_p50_ms for r in cell_rows]):.1f}",
                f"{mean([r.latency_p99_ms for r in cell_rows]):.1f}",
                f"{mean([r.rule_churn for r in cell_rows]):.0f}",
                f"{mean([r.ost_utilization for r in cell_rows]):.2f}",
            ]
        )
    return format_table(
        [
            "mechanism",
            "MiB/s",
            "fairness",
            "p50 ms",
            "p99 ms",
            "churn",
            "util",
        ],
        rows,
        title=(
            f"mechanism shootout over scenario "
            f"{result.campaign.scenario!r} (ranked by throughput)"
        ),
    )


def format_decentralization_table(result: "CampaignResult") -> str:
    """Mechanisms ranked per control-plane latency step.

    The decentralization-tax view of a campaign sweeping both ``mechanism``
    and ``mechanism_params``: one block per swept ``ctrl_latency_s`` value
    (ascending), mechanisms within a block ranked by fairness with
    throughput as the tiebreaker.  Decentralized mechanisms ignore the
    latency override, so their rows repeat across blocks as flat reference
    lines — the tax is how far the centralized rows slide down the ranking
    as the latency grows, itemized by the ``lag``/``overshoot``/``resv
    util`` columns.
    """
    buckets: "dict" = {}
    for outcome in result.outcomes:
        overrides = outcome.params.get("mechanism_params") or {}
        latency = float(overrides.get("ctrl_latency_s", 0.0))
        mechanism = outcome.params.get("mechanism", outcome.row.mechanism)
        buckets.setdefault(latency, {}).setdefault(mechanism, []).append(
            outcome.row
        )

    def mean(values):
        return sum(values) / len(values) if values else 0.0

    mib = float(1 << 20)
    rows = []
    for latency in sorted(buckets):
        ranked = sorted(
            buckets[latency].items(),
            key=lambda item: (
                -mean([r.fairness for r in item[1]]),
                -mean([r.aggregate_mib_s for r in item[1]]),
            ),
        )
        for rank, (mechanism, cell_rows) in enumerate(ranked, start=1):
            rows.append(
                [
                    f"{latency:g}",
                    rank,
                    mechanism,
                    f"{mean([r.fairness for r in cell_rows]):.3f}",
                    f"{mean([r.aggregate_mib_s for r in cell_rows]):.1f}",
                    f"{mean([r.latency_p99_ms for r in cell_rows]):.1f}",
                    f"{mean([r.rule_lag_s for r in cell_rows]) * 1e3:.1f}",
                    f"{mean([r.overshoot_bytes for r in cell_rows]) / mib:.1f}",
                    f"{mean([r.reservation_util for r in cell_rows]):.2f}",
                ]
            )
    return format_table(
        [
            "ctrl lat s",
            "rank",
            "mechanism",
            "fairness",
            "MiB/s",
            "p99 ms",
            "lag ms",
            "overshoot MiB",
            "resv util",
        ],
        rows,
        title=(
            f"decentralization tax over scenario "
            f"{result.campaign.scenario!r} (ranked by fairness per "
            "control-plane latency)"
        ),
    )


def format_chaos_table(result: "CampaignResult") -> str:
    """Per-mechanism fault-tolerance comparison, ranked by recovery time.

    The chaos view of a campaign whose cells carry a fault: one row per
    mechanism (cells averaged), ordered fastest-recovering first with
    fairness-during-failure as the tiebreaker — the mechanism that both
    re-converges quickly and stays proportional while degraded wins.
    """
    buckets: "dict" = {}
    for outcome in result.outcomes:
        mechanism = outcome.params.get("mechanism", outcome.row.mechanism)
        buckets.setdefault(mechanism, []).append(outcome.row)

    def mean(values):
        return sum(values) / len(values) if values else 0.0

    ranked = sorted(
        buckets.items(),
        key=lambda item: (
            mean([r.recovery_s for r in item[1]]),
            -mean([r.fairness_during for r in item[1]]),
        ),
    )
    rows = []
    for mechanism, cell_rows in ranked:
        rows.append(
            [
                mechanism,
                f"{mean([r.recovery_s for r in cell_rows]):.2f}",
                f"{mean([r.fairness_during for r in cell_rows]):.3f}",
                f"{mean([r.fairness_after for r in cell_rows]):.3f}",
                f"{mean([r.aggregate_mib_s for r in cell_rows]):.1f}",
                f"{mean([r.rpcs_dropped for r in cell_rows]):.0f}",
                f"{mean([r.rpcs_retried for r in cell_rows]):.0f}",
            ]
        )
    fault = result.campaign.base_params.get("fault") or next(
        (o.params["fault"] for o in result.outcomes if o.params.get("fault")),
        "?",
    )
    return format_table(
        [
            "mechanism",
            "recovery s",
            "fair during",
            "fair after",
            "MiB/s",
            "dropped",
            "retried",
        ],
        rows,
        title=(
            f"chaos shootout under fault {fault!r} over scenario "
            f"{result.campaign.scenario!r} (ranked by recovery time)"
        ),
    )
