"""Generic scenario-run reporting.

The figure adapters format paper-specific tables; everything else — new
registered scenarios, ad-hoc CLI runs, sweeps — shares this one renderer,
which turns a :class:`~repro.scenarios.runner.RunResult` into the standard
text block: spec header, per-job achieved bandwidth/share/completion,
aggregate, utilization, and the controller's final ledger.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.tables import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios.runner import RunResult

__all__ = ["format_run_report"]


def format_run_report(result: "RunResult") -> str:
    """Render one pipeline run as a plain-text report."""
    spec = result.spec
    parts = []
    if spec is not None:
        parts += [spec.describe(), ""]

    summary = result.summary
    aggregate = summary.aggregate_mib_s
    job_ids = spec.job_ids if spec is not None else sorted(summary.per_job_mib_s)
    mib = 1 << 20
    rows = []
    for job in job_ids:
        done = result.job_completion_s.get(job)
        rows.append(
            [
                job,
                f"{summary.job(job):.1f}",
                f"{result.timeline.total_bytes(job) / mib:.0f}",
                f"{done:.2f}" if done is not None else "-",
            ]
        )
    parts.append(
        format_table(
            ["job", "MiB/s", "MiB_written", "completed_s"],
            rows,
            title=f"achieved bandwidth ({result.mechanism})",
        )
    )
    parts.append("")
    parts.append(
        f"aggregate: {aggregate:.1f} MiB/s over {result.duration_s:.2f}s "
        f"simulated; mean OST utilization {result.ost_utilization:.2f}; "
        f"all clients finished: {result.clients_finished}"
    )
    if result.per_ost_histories:
        rounds = ", ".join(
            f"OST{i:04d}: {len(h)}" for i, h in enumerate(result.per_ost_histories)
        )
        parts.append(f"controller rounds per OST: {rounds}")
        final = result.history[-1].records if result.history else {}
        if final:
            ledger = ", ".join(
                f"{job}: {tokens:+d}" for job, tokens in sorted(final.items())
            )
            parts.append(f"final lending ledger (first OST): {ledger}")
    return "\n".join(parts)
