"""Measurement and reporting utilities.

* :mod:`repro.metrics.timeline` — per-job throughput binned at the paper's
  100 ms observation granularity (the Fig. 3/5 series);
* :mod:`repro.metrics.summary` — per-job and aggregate achieved bandwidth
  plus gain/loss percentages versus a baseline (the Fig. 4/6/8 bars);
* :mod:`repro.metrics.tables` — plain-text tables and series renderings used
  by the benchmark harness to print the rows the paper reports.
"""

from repro.metrics.report import format_run_report
from repro.metrics.summary import BandwidthSummary, gains_versus, summarize
from repro.metrics.tables import format_series, format_table
from repro.metrics.timeline import Timeline

__all__ = [
    "BandwidthSummary",
    "Timeline",
    "format_run_report",
    "format_series",
    "format_table",
    "gains_versus",
    "summarize",
]
