"""Plain-text rendering of experiment outputs.

The benchmark harness prints every figure's underlying rows/series with
these helpers, so a bench run reproduces the paper's reported data as text.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as np
except ImportError:  # pragma: no cover
    # Keeps `import repro` working without numpy (the kernel runs without
    # it); rendering actual series data still requires the arrays.
    np = None

__all__ = ["format_table", "format_series", "format_gains"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table; floats rendered with one decimal."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            if value == float("inf"):
                return "inf"
            return f"{value:.1f}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows))
        if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    label: str,
    times: np.ndarray,
    values: np.ndarray,
    resample_s: float = 1.0,
    width_unit: float = 10.0,
) -> str:
    """One-line-per-sample rendering of a throughput series.

    The series is resampled (mean) to ``resample_s`` so the output stays
    readable, with a crude bar of '#' characters (one per ``width_unit``)
    so timeline *shapes* — bursts, plateaus, step-downs — are visible in
    bench logs without plotting.
    """
    if len(times) == 0:
        return f"{label}: (empty)"
    step = max(1, int(round(resample_s / (times[1] - times[0])))) if len(times) > 1 else 1
    lines = [f"{label} (MiB/s, {resample_s:.1f}s buckets)"]
    for start in range(0, len(values), step):
        chunk = values[start : start + step]
        mean = float(np.mean(chunk))
        bar = "#" * int(mean / width_unit)
        lines.append(f"  t={times[start]:7.1f}s  {mean:8.1f}  {bar}")
    return "\n".join(lines)


def format_gains(gains: Dict[str, float], title: str) -> str:
    """Render a per-job gain/loss map as a table."""
    rows: List[List[object]] = [
        [job, gains[job]] for job in sorted(gains) if job != "aggregate"
    ]
    if "aggregate" in gains:
        rows.append(["aggregate", gains["aggregate"]])
    return format_table(["job", "gain_%"], rows, title=title)
