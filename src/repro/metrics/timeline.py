"""Binned per-job throughput timelines.

Mirrors the paper's measurement method: "observation collected at every
100 ms" (Fig. 3).  Bytes are credited to the bin containing the RPC's
*completion* time — that is when the OST actually moved the data.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as np
except ImportError:  # pragma: no cover
    # Keeps `import repro` working without numpy (the kernel runs without
    # it); materializing binned timelines still requires the arrays.
    np = None

from repro.lustre.rpc import Rpc

__all__ = ["Timeline"]

MIB = 1 << 20


class Timeline:
    """Accumulates per-job served bytes into fixed-width time bins.

    Parameters
    ----------
    bin_s:
        Bin width in seconds (paper: 0.1).
    """

    def __init__(self, bin_s: float = 0.1) -> None:
        if bin_s <= 0:
            raise ValueError(f"bin_s must be positive, got {bin_s}")
        self.bin_s = float(bin_s)
        self._bins: Dict[str, Dict[int, float]] = {}
        self._total_bytes: Dict[str, float] = {}
        self._last_time = 0.0

    # -- recording ---------------------------------------------------------
    def record(self, job_id: str, time: float, nbytes: float) -> None:
        """Credit ``nbytes`` served for ``job_id`` at ``time``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        index = int(time / self.bin_s)
        self._bins.setdefault(job_id, {})
        self._bins[job_id][index] = self._bins[job_id].get(index, 0.0) + nbytes
        self._total_bytes[job_id] = self._total_bytes.get(job_id, 0.0) + nbytes
        self._last_time = max(self._last_time, time)

    def record_rpc(self, rpc: Rpc) -> None:
        """Convenience hook for ``Oss.on_complete``."""
        self.record(rpc.job_id, rpc.completed, rpc.size_bytes)

    # -- observation --------------------------------------------------------
    @property
    def jobs(self) -> List[str]:
        return sorted(self._bins)

    @property
    def horizon_s(self) -> float:
        """Latest recorded completion time."""
        return self._last_time

    def total_bytes(self, job_id: Optional[str] = None) -> float:
        if job_id is None:
            return sum(self._total_bytes.values())
        return self._total_bytes.get(job_id, 0.0)

    def series(
        self, job_id: str, until: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(bin_start_times, throughput_MiB_per_s)`` for one job.

        The series is dense (zero-filled) from t=0 to ``until`` (default:
        the last recorded completion), matching how the paper plots idle
        phases as zero throughput.
        """
        horizon = self._last_time if until is None else until
        n = max(1, int(np.ceil(horizon / self.bin_s)))
        times = np.arange(n) * self.bin_s
        values = np.zeros(n)
        for index, nbytes in self._bins.get(job_id, {}).items():
            if index < n:
                values[index] = nbytes
        return times, values / (self.bin_s * MIB)

    def aggregate_series(
        self, until: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, MiB/s)`` summed over all jobs."""
        horizon = self._last_time if until is None else until
        n = max(1, int(np.ceil(horizon / self.bin_s)))
        times = np.arange(n) * self.bin_s
        values = np.zeros(n)
        for job in self._bins:
            _, series = self.series(job, until=horizon)
            values[: len(series)] += series
        return times, values

    def mean_throughput(
        self, job_id: Optional[str] = None, duration: Optional[float] = None
    ) -> float:
        """Average MiB/s over ``duration`` (default: full horizon)."""
        span = self._last_time if duration is None else duration
        if span <= 0:
            return 0.0
        return self.total_bytes(job_id) / span / MIB
