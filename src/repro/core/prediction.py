"""Pluggable demand estimators (paper §IV-E future-work hook).

Eq. 11 estimates next-period demand as ``d̄^{t+Δt}_x = d^t_x`` — last value
carried forward — and the paper notes that pattern hints could make the
re-compensation step better informed ("beyond the scope of the current
study").  This module implements that extension point: a
:class:`DemandEstimator` maps a job's observed demand history to the
``d̄`` used in the future-utilization score (Eq. 12), leaving every other
part of the algorithm untouched.

Estimators provided:

* :class:`LastValueEstimator` — the paper's assumption (default);
* :class:`EwmaEstimator` — exponentially weighted moving average, smooths
  one-period spikes so a single idle interval doesn't zero a lender's
  claim;
* :class:`PeakHoldEstimator` — recent-window maximum, a conservative
  estimate for periodic burst patterns (claims enough for the *next*
  burst even while idle between bursts).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Protocol

__all__ = [
    "DemandEstimator",
    "LastValueEstimator",
    "EwmaEstimator",
    "PeakHoldEstimator",
]


class DemandEstimator(Protocol):
    """Maps observed demand to the estimate used in Eq. 12."""

    def observe(self, job_id: str, demand: int) -> None:
        """Feed one period's observed demand ``d^t_x``."""
        ...

    def estimate(self, job_id: str) -> float:
        """Return ``d̄^{t+Δt}_x`` for the re-compensation step."""
        ...


class LastValueEstimator:
    """The paper's Eq. 11: next demand = this period's demand."""

    def __init__(self) -> None:
        self._last: Dict[str, int] = {}

    def observe(self, job_id: str, demand: int) -> None:
        self._last[job_id] = demand

    def estimate(self, job_id: str) -> float:
        return float(self._last.get(job_id, 0))


class EwmaEstimator:
    """Exponentially weighted moving average of demand.

    Parameters
    ----------
    alpha:
        Weight of the newest observation; 1.0 degenerates to
        :class:`LastValueEstimator`.
    """

    def __init__(self, alpha: float = 0.4) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: Dict[str, float] = {}

    def observe(self, job_id: str, demand: int) -> None:
        previous = self._value.get(job_id)
        if previous is None:
            self._value[job_id] = float(demand)
        else:
            self._value[job_id] = (
                self.alpha * demand + (1.0 - self.alpha) * previous
            )

    def estimate(self, job_id: str) -> float:
        return self._value.get(job_id, 0.0)


class PeakHoldEstimator:
    """Maximum demand over the last ``window`` periods.

    Suited to periodic bursts: between bursts the estimate stays at the
    burst magnitude, so the lender's future claim anticipates the next
    burst instead of evaporating during the quiet phase.
    """

    def __init__(self, window: int = 10) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._history: Dict[str, Deque[int]] = {}

    def observe(self, job_id: str, demand: int) -> None:
        history = self._history.setdefault(job_id, deque(maxlen=self.window))
        history.append(demand)

    def estimate(self, job_id: str) -> float:
        history = self._history.get(job_id)
        return float(max(history)) if history else 0.0
