"""The pluggable bandwidth-mechanism API: protocol, registry, built-ins.

The paper's core claim is comparative — AdapTBF vs *No BW* vs *Static BW*
(§IV-C) — and this module makes the mechanism axis first-class instead of a
closed enum: a :class:`BandwidthMechanism` describes *how one OSS/OST pair
is bandwidth-controlled*, and the :data:`MECHANISMS` registry resolves
mechanisms by name with ``--param``-style overrides, exactly like scenarios
and campaigns.  Adding a contender is one registration — no builder, spec
or CLI edits::

    @MECHANISMS.register("my-mech", description="...")
    def _my_mech(gain: float = 0.5) -> BandwidthMechanism: ...

    spec.with_policy(mechanism="my-mech", mechanism_params={"gain": 0.8})

Lifecycle
---------
The cluster builder asks the mechanism for one NRS policy per OSS
(:meth:`BandwidthMechanism.nrs_policy`) and then calls
:meth:`BandwidthMechanism.install` once per (OSS, OST) pair — decentralized
by construction, mirroring the paper's one-controller-per-OST deployment
(§II-B).  ``install`` returns a :class:`MechanismHandle` exposing the
per-round control cycle as three explicit hooks:

* :meth:`MechanismHandle.observe`  — read demand/queue state off the OSS;
* :meth:`MechanismHandle.allocate` — turn observations into per-job token
  rates (tokens/second);
* :meth:`MechanismHandle.apply`    — push those rates into live TBF rules.

Self-clocked mechanisms (AdapTBF's own controller loop) drive the cycle
from their existing simulation process; loop-driven mechanisms reuse
:class:`PeriodicDriver`, which calls the three hooks every ``interval_s``
with the spec's simulated ``overhead_s`` between decision and enforcement.
Handles also expose uniform introspection (``history``, rule-churn
counters, ``rounds_run``) so the experiment executor and campaign reducer
treat every mechanism identically, and :meth:`MechanismHandle.teardown`
stops the loop and removes managed rules.

Built-ins registered here: ``none``, ``static``, ``adaptbf`` (with its
ablation variants) and ``adaptbf-ewma`` (the §IV-E demand-prediction
extension); the control-theoretic ``pid`` contender lives in
:mod:`repro.core.pid`.
"""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
)

from repro.core.ablation import VARIANTS
from repro.core.baselines import install_static_rules
from repro.core.framework import AdapTbf
from repro.core.prediction import EwmaEstimator
from repro.core.types import AllocationInput, AllocationResult, AllocationRound
from repro.lustre.nrs import FifoPolicy, NrsPolicy, TbfPolicy
from repro.lustre.oss import Oss
from repro.registry import FactoryRegistry, RegisteredFactory

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios.spec import ScenarioSpec
    from repro.sim.engine import Environment

__all__ = [
    "MechanismHandle",
    "BandwidthMechanism",
    "PeriodicDriver",
    "MechanismRegistry",
    "MECHANISMS",
    "NoBandwidthControl",
    "StaticBandwidthControl",
    "AdapTbfMechanism",
]


class MechanismHandle(ABC):
    """One mechanism installed on one (OSS, OST) pair.

    Subclasses override the per-round hooks they need; the defaults
    describe a mechanism that decides everything at install time (the
    *Static BW* shape) or not at all (*No BW*).  The introspection surface
    (``history``, churn counters, ``rounds_run``) defaults to "nothing to
    report" so reducers can sum over heterogeneous handles safely.
    """

    def __init__(self, mechanism: "BandwidthMechanism", oss: Oss, ost_index: int) -> None:
        self.mechanism = mechanism
        self.oss = oss
        self.ost_index = ost_index

    # -- per-round control cycle -------------------------------------------
    def observe(self) -> Dict[str, int]:
        """Read this period's per-job demand signal off the OSS."""
        return {}

    def allocate(self, demands: Mapping[str, int]) -> Dict[str, float]:
        """Turn observed demands into per-job token rates (tokens/s)."""
        return {}

    def apply(self, rates: Mapping[str, float]) -> None:
        """Enforce the decided rates (create/re-rate/stop TBF rules)."""

    def teardown(self) -> None:
        """Stop any control loop and remove this handle's managed rules."""

    # -- uniform introspection ---------------------------------------------
    @property
    def history(self) -> Optional[Sequence[AllocationRound]]:
        """Retained allocation rounds, or None if the mechanism keeps none."""
        return None

    @property
    def static_rates(self) -> Optional[Dict[str, float]]:
        """Fixed per-job rule rates, for install-once mechanisms."""
        return None

    @property
    def adaptbf(self) -> Optional[AdapTbf]:
        """The wrapped :class:`AdapTbf` facade, for AdapTBF-family handles."""
        return None

    @property
    def rules_created(self) -> int:
        return 0

    @property
    def rules_stopped(self) -> int:
        return 0

    @property
    def rate_changes(self) -> int:
        return 0

    @property
    def rounds_run(self) -> int:
        """Control rounds the mechanism has completed on this OST."""
        return 0

    @property
    def rule_lag_s(self) -> float:
        """Mean observation → enforcement lag of applied rule updates.

        0.0 for mechanisms that decide locally (their lag is only the
        spec's ``overhead_s``); centralized mechanisms report the full
        control-plane round trip here — the decentralization-tax column.
        """
        return 0.0

    @property
    def overshoot_bytes(self) -> float:
        """Bytes of rate granted beyond live demand at enforcement time.

        Measures staleness: how much capacity the mechanism's view
        allocated to demand that had already moved on.  0.0 for
        mechanisms whose decisions act on fresh local state.
        """
        return 0.0

    @property
    def reservation_util(self) -> Optional[float]:
        """Used ÷ reserved capacity, or None if nothing is reserved.

        Only reservation-based mechanisms (virtual circuits) report a
        value; the campaign reducer averages the non-None handles.
        """
        return None


class BandwidthMechanism(ABC):
    """A bandwidth-control mechanism, resolvable by name from the registry.

    Instances are cheap, stateless factories for per-OST machinery: state
    lives in the :class:`MechanismHandle` each :meth:`install` returns, so
    one mechanism instance can serve every OST of a cluster without any
    cross-OST coupling.
    """

    #: Registry name; stamped by :meth:`MechanismRegistry.build`.
    name: str = "?"
    #: Resolved factory parameters; stamped by :meth:`MechanismRegistry.build`.
    params: Mapping[str, Any] = {}

    def nrs_policy(self, env: "Environment") -> NrsPolicy:
        """The NRS scheduler each OSS needs (default: classful TBF)."""
        return TbfPolicy(env)

    @abstractmethod
    def install(
        self,
        env: "Environment",
        oss: Oss,
        spec: "ScenarioSpec",
        ost_index: int = 0,
        algorithm_factory=None,
    ) -> MechanismHandle:
        """Attach the mechanism to one OSS/OST pair and return its handle.

        ``spec`` supplies the shared policy knobs (``interval_s``,
        ``overhead_s``, ``bucket_depth``, ``keep_history``) and the
        job → nodes map; ``algorithm_factory`` is the experiment hook for
        injecting a custom token-allocation build (AdapTBF family only —
        other mechanisms ignore it).
        """

    def describe(self) -> str:
        """Human-readable summary: what the mechanism does and its knobs."""
        from repro.sim.engine import Environment

        doc = (inspect.getdoc(type(self)) or "").split("\n\n")[0]
        lines = [f"mechanism: {self.name}"]
        if doc:
            lines.append(f"  {doc}")
        # Probe the mechanism's own hook so overriding nrs_policy is enough.
        nrs = type(self.nrs_policy(Environment())).__name__
        lines.append(f"nrs: {nrs.removesuffix('Policy').lower()}")
        if self.params:
            lines.append("resolved parameters:")
            for key in sorted(self.params):
                lines.append(f"  {key} = {self.params[key]!r}")
        else:
            lines.append("resolved parameters: (none)")
        return "\n".join(lines)


class PeriodicDriver:
    """Generic observe → allocate → apply loop for loop-driven mechanisms.

    Mirrors the timing of AdapTBF's System Stats Controller: one cycle per
    ``interval_s`` of simulated time, with ``overhead_s`` elapsing between
    the allocation decision and its enforcement (the measured cost of the
    real prototype's procfs round trips, §IV-G).
    """

    def __init__(
        self,
        env: "Environment",
        handle: MechanismHandle,
        interval_s: float,
        overhead_s: float = 0.0,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        if not 0 <= overhead_s < interval_s:
            raise ValueError(
                "overhead must be in [0, interval_s) "
                f"(got {overhead_s} vs {interval_s})"
            )
        self.env = env
        self.handle = handle
        self.interval_s = float(interval_s)
        self.overhead_s = float(overhead_s)
        self.rounds_run = 0
        self._stopped = False
        self.process = env.process(
            self._loop(), name=f"mechanism.{handle.mechanism.name}"
        )

    def stop(self) -> None:
        """Halt the loop; the process exits at its next wake-up."""
        self._stopped = True

    def _loop(self):
        env = self.env
        while True:
            yield env.timeout(self.interval_s)
            if self._stopped:
                return
            demands = self.handle.observe()
            rates = self.handle.allocate(demands)
            if self.overhead_s:
                yield env.timeout(self.overhead_s)
            self.handle.apply(rates)
            self.rounds_run += 1


class MechanismRegistry(FactoryRegistry):
    """Name → mechanism-factory mapping behind ``--mechanism`` everywhere."""

    kind = "mechanism"
    override_flag = "--mechanism-param"

    def build(self, name: str, **overrides) -> BandwidthMechanism:
        """Resolve a mechanism instance, stamping its name and parameters."""
        entry = self.get(name)
        mechanism = entry.build(**overrides)
        mechanism.name = entry.name
        resolved = dict(entry.params)
        resolved.update(overrides)
        mechanism.params = resolved
        return mechanism

    def _describe_built(self, entry: RegisteredFactory) -> List[str]:
        return ["", self.build(entry.name).describe()]


#: The process-wide default registry; built-in mechanisms self-register on
#: ``import repro.core`` (which also pulls in :mod:`repro.core.pid`).
MECHANISMS = MechanismRegistry()


# ---------------------------------------------------------------------------
# Built-in mechanisms: the paper's three contenders + the §IV-E extension.
# ---------------------------------------------------------------------------


class NoBandwidthControl(BandwidthMechanism):
    """*No BW* (§IV-C): FIFO scheduling, no rate control at all.

    RPCs are served strictly first-come-first-serve; a single aggressive
    job can monopolise the OST — the failure mode the paper's introduction
    motivates.
    """

    def nrs_policy(self, env: "Environment") -> NrsPolicy:
        return FifoPolicy(env)

    def install(
        self,
        env: "Environment",
        oss: Oss,
        spec: "ScenarioSpec",
        ost_index: int = 0,
        algorithm_factory=None,
    ) -> MechanismHandle:
        return _InertHandle(self, oss, ost_index)


class _InertHandle(MechanismHandle):
    """Nothing installed, nothing to drive — the *No BW* handle."""


class StaticBandwidthControl(BandwidthMechanism):
    """*Static BW* (§IV-C): TBF rules fixed at global node share.

    One rule per job, rate ``T_i · n_x / Σn`` over **all** jobs in the
    system, installed at build time and never adapted — the "strict
    proportional limit" whose inefficiency motivates the paper.
    """

    def install(
        self,
        env: "Environment",
        oss: Oss,
        spec: "ScenarioSpec",
        ost_index: int = 0,
        algorithm_factory=None,
    ) -> MechanismHandle:
        rates = install_static_rules(
            oss.policy,
            nodes=spec.nodes,
            max_token_rate=spec.topology.max_token_rate(ost_index),
            bucket_depth=spec.policy.bucket_depth,
        )
        return _StaticHandle(self, oss, ost_index, rates)


class _StaticHandle(MechanismHandle):
    """Install-once: the whole mechanism is the fixed rate table."""

    def __init__(self, mechanism, oss, ost_index, rates: Dict[str, float]) -> None:
        super().__init__(mechanism, oss, ost_index)
        self._rates = dict(rates)

    def allocate(self, demands: Mapping[str, int]) -> Dict[str, float]:
        # The static scheme ignores demand by design.
        return dict(self._rates)

    def teardown(self) -> None:
        for job_id in self._rates:
            name = f"static_{job_id}"
            if name in self.oss.policy.rule_names():
                self.oss.policy.stop_rule(name)

    @property
    def static_rates(self) -> Optional[Dict[str, float]]:
        return dict(self._rates)


class AdapTbfMechanism(BandwidthMechanism):
    """The paper's framework: adaptive token borrowing, one controller per OST.

    Wraps the :class:`~repro.core.framework.AdapTbf` facade (stats tracker,
    three-step token allocation, rule daemon, system stats controller).
    The controller's own simulation process drives the observe/allocate/
    apply cycle; the handle's hooks expose the same cycle for externally
    driven operation and tests.
    """

    def __init__(self, variant: str = "") -> None:
        if variant and variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; options: {sorted(VARIANTS)}"
            )
        #: Algorithm variant override; empty string defers to
        #: ``spec.policy.variant`` (the pipeline's ablation knob).
        self.variant = variant

    def _algorithm(self, spec: "ScenarioSpec", algorithm_factory):
        factory = algorithm_factory or VARIANTS[self.variant or spec.policy.variant]
        return factory()

    def install(
        self,
        env: "Environment",
        oss: Oss,
        spec: "ScenarioSpec",
        ost_index: int = 0,
        algorithm_factory=None,
    ) -> MechanismHandle:
        controller = AdapTbf(
            env,
            oss,
            nodes=spec.nodes,
            max_token_rate=spec.topology.max_token_rate(ost_index),
            interval_s=spec.policy.interval_s,
            overhead_s=spec.policy.overhead_s,
            bucket_depth=spec.policy.bucket_depth,
            algorithm=self._algorithm(spec, algorithm_factory),
            keep_history=spec.policy.keep_history,
        )
        return AdapTbfHandle(self, oss, ost_index, controller)


class AdapTbfHandle(MechanismHandle):
    """Handle over one :class:`AdapTbf` instance.

    The wrapped System Stats Controller is self-clocked; ``observe`` /
    ``allocate`` / ``apply`` run the identical round pieces on demand so
    harnesses (and the protocol's conformance tests) can single-step the
    mechanism without simulated time.
    """

    def __init__(self, mechanism, oss, ost_index, controller: AdapTbf) -> None:
        super().__init__(mechanism, oss, ost_index)
        self._adaptbf = controller
        self._last_result: Optional[AllocationResult] = None

    def observe(self) -> Dict[str, int]:
        return self._adaptbf.controller.current_demands()

    def allocate(self, demands: Mapping[str, int]) -> Dict[str, float]:
        ctrl = self._adaptbf.controller
        known = {j: int(d) for j, d in demands.items() if j in ctrl.nodes}
        if not known:
            self._last_result = None
            return {}
        result = self._adaptbf.algorithm.allocate(
            AllocationInput(
                interval_s=ctrl.interval_s,
                max_token_rate=ctrl.max_token_rate,
                demands=known,
                nodes=ctrl.nodes,
            )
        )
        self._last_result = result
        return {
            job: tokens / ctrl.interval_s
            for job, tokens in result.allocations.items()
        }

    def apply(self, rates: Mapping[str, float]) -> None:
        if self._last_result is not None:
            self._adaptbf.daemon.apply(
                self._last_result, self._adaptbf.controller.interval_s
            )
            self._last_result = None

    def teardown(self) -> None:
        ctrl = self._adaptbf.controller
        ctrl.stop()
        daemon = self._adaptbf.daemon
        for name in list(daemon.policy.rule_names()):
            if name.startswith(daemon.rule_prefix):
                daemon.policy.stop_rule(name)

    @property
    def history(self) -> Sequence[AllocationRound]:
        return self._adaptbf.history

    @property
    def adaptbf(self) -> AdapTbf:
        return self._adaptbf

    @property
    def rules_created(self) -> int:
        return self._adaptbf.daemon.rules_created

    @property
    def rules_stopped(self) -> int:
        return self._adaptbf.daemon.rules_stopped

    @property
    def rate_changes(self) -> int:
        return self._adaptbf.daemon.rate_changes

    @property
    def rounds_run(self) -> int:
        return self._adaptbf.algorithm.rounds_run


class EwmaAdapTbfMechanism(AdapTbfMechanism):
    """AdapTBF with EWMA demand prediction (§IV-E pattern-hint extension).

    Identical token-borrowing pipeline, but the re-compensation step's
    future-utilization score (Eq. 11–12) uses an exponentially weighted
    moving average of each job's demand instead of last-value-carried-
    forward, so one idle interval doesn't zero a lender's claim.
    """

    def __init__(self, alpha: float = 0.4, variant: str = "") -> None:
        super().__init__(variant=variant)
        # Fail fast at resolve time, not on the first allocation round.
        EwmaEstimator(alpha)
        self.alpha = alpha

    def _algorithm(self, spec: "ScenarioSpec", algorithm_factory):
        algorithm = super()._algorithm(spec, algorithm_factory)
        if algorithm_factory is None:
            algorithm.demand_estimator = EwmaEstimator(self.alpha)
        return algorithm


@MECHANISMS.register(
    "none", description="No BW baseline: FIFO scheduling, no rate control"
)
def _none() -> NoBandwidthControl:
    return NoBandwidthControl()


@MECHANISMS.register(
    "static",
    description="Static BW baseline: fixed node-proportional TBF rules",
)
def _static() -> StaticBandwidthControl:
    return StaticBandwidthControl()


@MECHANISMS.register(
    "adaptbf",
    description="the paper's adaptive token borrowing (variants via policy)",
)
def _adaptbf(variant: str = "") -> AdapTbfMechanism:
    """The paper's adaptive token-borrowing framework.

    Parameters
    ----------
    variant:
        Algorithm ablation variant ("full", "priority_only",
        "no_recompensation", "priority_blind_df"); empty defers to the
        policy spec's ``variant`` knob.
    """
    return AdapTbfMechanism(variant=variant)


@MECHANISMS.register(
    "adaptbf-ewma",
    description="AdapTBF with EWMA demand prediction (paper §IV-E extension)",
)
def _adaptbf_ewma(alpha: float = 0.4, variant: str = "") -> EwmaAdapTbfMechanism:
    """AdapTBF with EWMA demand prediction in the re-compensation step.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor in (0, 1]; higher weighs the latest
        demand observation more (1.0 degenerates to last-value).
    variant:
        Algorithm ablation variant; empty defers to the policy spec.
    """
    return EwmaAdapTbfMechanism(alpha=alpha, variant=variant)
