"""Fractional-token remainder accounting (paper §III-C4, Eq. 21–25).

Token rates are integers per observation period, but every distribution step
(priority allocation, surplus shares, reclaim shares) produces fractional raw
amounts.  Discarding fractions would systematically starve low-priority jobs
(their fair share may be < 1 token per period), so AdapTBF:

1. carries a per-job remainder ``ρ_x`` across *all* distribution steps
   (Eq. 21–22 define one series per job spanning the sub-steps);
2. floors ``raw + ρ`` at each step (Eq. 23) and keeps the new fraction
   (Eq. 24 — implemented in the conserving form
   ``ρ' = raw + ρ − floor(raw + ρ)``; the printed equation drops the carried
   ``ρ``, which would leak tokens — see DESIGN.md deviation 3);
3. applies a **largest-remainder** correction so the step's integer total
   exactly matches the budget: the job with the largest remainder is first
   to gain a leftover token or give back an excess one, adjusting its
   remainder in the opposite direction so per-job conservation
   ``raw + ρ = granted + ρ'`` always holds.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = ["RemainderStore"]

_EPS = 1e-9


class RemainderStore:
    """Per-job remainder state shared by all distribution steps."""

    def __init__(self) -> None:
        self._rho: Dict[str, float] = {}

    def get(self, job_id: str) -> float:
        return self._rho.get(job_id, 0.0)

    def snapshot(self) -> Dict[str, float]:
        return dict(self._rho)

    def drop(self, job_id: str) -> None:
        """Forget a job's remainder (used when a job is retired)."""
        self._rho.pop(job_id, None)

    def integerize(self, raw: Mapping[str, float], total: int) -> Dict[str, int]:
        """Turn fractional ``raw`` grants into integers summing to ``total``.

        Parameters
        ----------
        raw:
            ``{job → fractional grant}``; the values should sum to ``total``
            up to floating-point error (each step's raw shares do by
            construction).
        total:
            The integer token budget this step must hand out exactly.

        Returns
        -------
        ``{job → integer grant}`` with ``sum == total``; the internal
        remainders absorb the difference so that for every job
        ``raw + ρ_before == granted + ρ_after``.
        """
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        if not raw:
            if total != 0:
                raise ValueError(f"cannot distribute {total} tokens to no jobs")
            return {}
        raw_sum = sum(raw.values())
        if abs(raw_sum - total) > 1e-6 * max(1.0, total):
            raise ValueError(
                f"raw grants sum to {raw_sum!r}, expected total {total}"
            )

        granted: Dict[str, int] = {}
        for job in sorted(raw):  # deterministic iteration
            value = raw[job] + self._rho.get(job, 0.0)
            floored = int(value + _EPS)  # floor with fp guard
            # A deeply negative remainder could push `value` below 0; a
            # grant can never be negative, so clamp and carry the debt.
            if floored < 0:
                floored = 0
            granted[job] = floored
            self._rho[job] = value - floored

        # Largest-remainder correction (paper: adjust the job with the
        # largest remainder first, ±1 at a time, until the budget matches).
        # Implemented as sorted passes — one sort serves up to len(raw)
        # single-token adjustments, keeping a round O(n log n) overall
        # instead of O(n² log n) with a fresh argmax per token.
        diff = total - sum(granted.values())
        while diff > 0:  # leftover: grant extra tokens, largest ρ first
            order = sorted(granted, key=lambda j: (-self._rho[j], j))
            for job in order:
                if diff == 0:
                    break
                granted[job] += 1
                self._rho[job] -= 1.0
                diff -= 1
        while diff < 0:  # excess: withdraw tokens, largest ρ first
            order = [
                j
                for j in sorted(granted, key=lambda j: (-self._rho[j], j))
                if granted[j] > 0
            ]
            if not order:  # pragma: no cover - budget can't be negative
                raise RuntimeError("excess correction with no withdrawable job")
            for job in order:
                if diff == 0:
                    break
                if granted[job] > 0:
                    granted[job] -= 1
                    self._rho[job] += 1.0
                    diff += 1
        return granted
