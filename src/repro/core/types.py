"""Shared types and notation for the AdapTBF core.

The names follow Table I of the paper:

=============  =================================================================
Notation       Meaning
=============  =================================================================
``S_i``        Object Storage Target *i* (one allocator instance per OST)
``T_i``        Maximum token rate (tokens/s) of ``S_i``
``Δt``         Observation period (``interval_s``)
``J^Δt_i``     Active jobs on ``S_i`` during the period (issued ≥ 1 RPC)
``n_x``        Compute nodes allocated to job *x*
``p_x``        Priority of job *x* (node share among active jobs, Eq. 1)
``r_x``        Record of job *x* (+ lent / − borrowed)
``d_x``        Observed I/O demand of *x* (RPCs issued during the period)
``u_x``        Utilization score ``d_x / α^{t-1}_x`` (Eq. 3)
``α_x``        Allocated tokens of *x* for the next period
``ρ_x``        Fractional-token remainder of *x* (Eq. 22)
=============  =================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

__all__ = [
    "JobInfo",
    "AllocationInput",
    "JobAllocation",
    "AllocationResult",
    "AllocationRound",
]


@dataclass(frozen=True)
class JobInfo:
    """Static description of one job as the scheduler knows it.

    Parameters
    ----------
    job_id:
        Lustre JobID (the TBF classification key).
    nodes:
        Compute nodes allocated to the job — the paper's ``n_x``, the sole
        input to priority.
    """

    job_id: str
    nodes: int

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError(
                f"job {self.job_id!r}: nodes must be positive, got {self.nodes}"
            )


@dataclass(frozen=True)
class AllocationInput:
    """Everything one allocation round consumes — local to one OST.

    Parameters
    ----------
    interval_s:
        Observation period ``Δt`` in seconds.
    max_token_rate:
        ``T_i`` in tokens/second.
    demands:
        ``{job_id: d_x}`` — RPCs issued during the elapsed period.  The key
        set *is* the active-job set ``J^Δt_i``.
    nodes:
        ``{job_id: n_x}`` for (at least) every active job.
    """

    interval_s: float
    max_token_rate: float
    demands: Mapping[str, int]
    nodes: Mapping[str, int]

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError(f"interval must be positive, got {self.interval_s}")
        if self.max_token_rate <= 0:
            raise ValueError(
                f"max_token_rate must be positive, got {self.max_token_rate}"
            )
        for job, demand in self.demands.items():
            if demand <= 0:
                raise ValueError(
                    f"job {job!r}: active jobs must have positive demand, "
                    f"got {demand} (inactive jobs are simply omitted)"
                )
        missing = set(self.demands) - set(self.nodes)
        if missing:
            raise ValueError(f"nodes unknown for active jobs: {sorted(missing)}")
        for job in self.demands:
            if self.nodes[job] <= 0:
                raise ValueError(f"job {job!r}: nodes must be positive")

    @property
    def total_tokens(self) -> int:
        """Integer token budget for the next period: ``⌊T_i · Δt⌋``."""
        return int(self.max_token_rate * self.interval_s + 1e-9)


@dataclass(frozen=True)
class JobAllocation:
    """Full per-job trace of one allocation round (for analysis/tests)."""

    job_id: str
    priority: float  # p_x
    demand: int  # d_x
    utilization: float  # u_x
    initial: int  # α_x after priority allocation
    surplus: int  # T^x_s handed to the pool
    redistribution_share: int  # tokens received from the surplus pool
    after_redistribution: int  # α_x,RD
    reclaimed: int  # T^x_R taken from this job (J− only)
    recompensation_share: int  # tokens received back (J+ only)
    final: int  # α_x,RC — what the rule daemon applies
    record_before: int  # r_x at the start of the round
    record_after: int  # r_x,RC at the end of the round


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of one allocation round."""

    allocations: Dict[str, int]  # job → final tokens for the next Δt
    per_job: Dict[str, JobAllocation]
    total_tokens: int  # the budget that was distributed
    surplus_pool: int  # T_s
    reclaimed_pool: int  # T_R

    def rate_for(self, job_id: str, interval_s: float) -> float:
        """Token rate (tokens/s) to program into the job's TBF rule."""
        return self.allocations[job_id] / interval_s


@dataclass
class AllocationRound:
    """One controller iteration, as kept in the framework history.

    ``records`` is a snapshot of the ledger *after* the round, which is what
    paper Fig. 7 plots over time.
    """

    time: float
    demands: Dict[str, int]
    result: AllocationResult
    records: Dict[str, int] = field(default_factory=dict)
