"""Ablated allocator variants.

The paper motivates three design elements (§III-C); each variant here
removes exactly one so the ablation bench (`benchmarks/bench_ablation.py`)
can quantify its contribution:

* ``priority_only``     — step 1 only: adapts to the active set, but no
  borrowing (not work-conserving under bursty demand).
* ``no_recompensation`` — steps 1–2: work-conserving borrowing, but lenders
  are never paid back (long-term fairness lost).
* ``priority_blind_df`` — full pipeline, but the distribution factor ignores
  priority (``DF_x = u_x``): spare tokens flow to whoever is hungriest,
  letting low-priority hogs out-borrow important jobs.
"""

from __future__ import annotations

from repro.core.allocation import TokenAllocationAlgorithm

__all__ = [
    "priority_only",
    "no_recompensation",
    "priority_blind_df",
    "VARIANTS",
]


def priority_only() -> TokenAllocationAlgorithm:
    """Step 1 only (dynamic proportional shares, no borrowing)."""
    return TokenAllocationAlgorithm(
        enable_redistribution=False,
        enable_recompensation=False,
    )


def no_recompensation() -> TokenAllocationAlgorithm:
    """Steps 1–2 (borrowing without repayment)."""
    return TokenAllocationAlgorithm(enable_recompensation=False)


def priority_blind_df() -> TokenAllocationAlgorithm:
    """Full pipeline with a priority-blind distribution factor."""
    return TokenAllocationAlgorithm(df_priority_aware=False)


#: Name → factory for every variant, including the full algorithm.
VARIANTS = {
    "full": TokenAllocationAlgorithm,
    "priority_only": priority_only,
    "no_recompensation": no_recompensation,
    "priority_blind_df": priority_blind_df,
}
