"""Evaluation baselines (paper §IV-C).

* **No BW** — no bandwidth control at all: build the OSS with a
  :class:`~repro.lustre.nrs.FifoPolicy`; there is nothing to configure here.
* **Static BW** — TBF rules installed once, rates proportional to each job's
  share of *total system* compute nodes, never adapted afterwards.  This is
  the "strict proportional limit" whose inefficiency motivates the paper.

:class:`StaticBwAllocator` also exposes the static scheme through the same
allocator interface as :class:`~repro.core.allocation.TokenAllocationAlgorithm`
so experiment code can treat mechanisms uniformly.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.core.types import AllocationInput, AllocationResult, JobAllocation
from repro.lustre.nrs import TbfPolicy
from repro.lustre.tbf import DEFAULT_BUCKET_DEPTH, TbfRule

__all__ = ["install_static_rules", "StaticBwAllocator"]


def install_static_rules(
    policy: TbfPolicy,
    nodes: Mapping[str, int],
    max_token_rate: float,
    bucket_depth: float = DEFAULT_BUCKET_DEPTH,
    rule_prefix: str = "static_",
) -> Dict[str, float]:
    """Install one fixed-rate rule per job; returns ``{job → rate}``.

    Rates are ``T_i · n_x / Σn`` over **all** jobs in ``nodes`` (the paper's
    "proportion of allocated resources relative to the total resources
    available in the system"), independent of which jobs are active.
    """
    if max_token_rate <= 0:
        raise ValueError(f"max_token_rate must be positive, got {max_token_rate}")
    if not nodes:
        raise ValueError("nodes must not be empty")
    total = sum(nodes.values())
    if total <= 0:
        raise ValueError("total nodes must be positive")
    rates: Dict[str, float] = {}
    ordered = sorted(nodes, key=lambda j: (-nodes[j], j))
    rank_of = {job: rank for rank, job in enumerate(ordered)}
    for job, n in nodes.items():
        if n <= 0:
            raise ValueError(f"job {job!r}: nodes must be positive")
        rate = max_token_rate * n / total
        rates[job] = rate
        policy.start_rule(
            TbfRule(
                name=f"{rule_prefix}{job}",
                job_id=job,
                rate=rate,
                depth=bucket_depth,
                rank=rank_of[job],
            )
        )
    return rates


class StaticBwAllocator:
    """The static scheme behind the allocator interface (for harness reuse).

    ``allocate`` always returns the same node-proportional split of the token
    budget, ignoring demand — which is exactly why Static BW wastes tokens on
    idle jobs and cannot absorb bursts.
    """

    def __init__(self, nodes: Mapping[str, int]) -> None:
        if not nodes:
            raise ValueError("nodes must not be empty")
        self.nodes = dict(nodes)
        self._total_nodes = sum(nodes.values())

    def allocate(self, inputs: AllocationInput) -> AllocationResult:
        total = inputs.total_tokens
        allocations: Dict[str, int] = {}
        per_job: Dict[str, JobAllocation] = {}
        for job, n in self.nodes.items():
            share = n / self._total_nodes
            tokens = int(total * share)
            demand = int(inputs.demands.get(job, 0))
            allocations[job] = tokens
            # Mirror TokenAllocationAlgorithm._utilization's fallback chain
            # (DESIGN.md §1): a zero-token grant falls back to 1 token, so a
            # job with positive demand reports a finite deficit (u > 0)
            # instead of masquerading as idle with u = 0.
            per_job[job] = JobAllocation(
                job_id=job,
                priority=share,
                demand=demand,
                utilization=demand / tokens if tokens > 0 else float(demand),
                initial=tokens,
                surplus=0,
                redistribution_share=0,
                after_redistribution=tokens,
                reclaimed=0,
                recompensation_share=0,
                final=tokens,
                record_before=0,
                record_after=0,
            )
        return AllocationResult(
            allocations=allocations,
            per_job=per_job,
            total_tokens=total,
            surplus_pool=0,
            reclaimed_pool=0,
        )
