"""Guaranteed-bandwidth virtual circuits with overbooked admission control.

The second centralized-era contender for the decentralization-tax
comparison (related work: Freemon, *long fat networks* — end-to-end
reserved-bandwidth circuits): each job requests a **static guaranteed
rate** up front, an admission controller accepts requests in priority
order until an **overbooked** budget is exhausted, and admitted circuits
keep their reservation for the whole run.  This is the opposite design
point from AdapTBF's per-round borrowing:

* reservations are decided once, from declared (not observed) demand —
  there is no control plane to be late, but also no adaptation;
* ``overbook`` inflates the admission budget past the OST's token rate,
  the classic trick for recovering utilization from bursty reservations —
  the :attr:`~VirtualCircuitTable.reservation_util` column measures how
  much of the reserved capacity was actually used;
* a slow **audit loop** (the only dynamic part) preempts circuits that
  have sat idle for ``idle_rounds`` consecutive rounds *when a denied
  request is waiting with backlog*, and admits waiters into the freed
  budget — admission/preemption bookkeeping, not rate adaptation.

Jobs denied a circuit are not dropped: they fall through to the TBF
fallback queue and are served opportunistically (the same no-starvation
path the paper's fallback rule provides), so every client always
finishes — just without a guarantee.

Everything is per-OST and deterministic: admission order is the fixed
priority order ``(-nodes, job)``, audits run on the shared
:class:`~repro.core.mechanism.PeriodicDriver` clock, and the reservation
ledger (a time-integral of reserved tokens) advances only at simulated
event times.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional

from repro.core.mechanism import (
    MECHANISMS,
    BandwidthMechanism,
    MechanismHandle,
    PeriodicDriver,
)
from repro.lustre.oss import Oss
from repro.lustre.rpc import Rpc
from repro.lustre.tbf import TbfRule

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios.spec import ScenarioSpec
    from repro.sim.engine import Environment

__all__ = ["VirtualCircuitMechanism", "VirtualCircuitTable"]

#: Managed rules are named ``vc_{job_id}``.
RULE_PREFIX = "vc_"

#: Float slack for admission-budget comparisons.
_EPS = 1e-9


class VirtualCircuitMechanism(BandwidthMechanism):
    """Static guaranteed-bandwidth reservations with overbooked admission.

    Parameters
    ----------
    overbook:
        Admission budget as a multiple of the OST token rate; > 1 admits
        more guaranteed rate than physically exists, betting (like every
        circuit provider) that reservations are not all busy at once.
    request_factor:
        Each job requests this multiple of its node-proportional share —
        circuits are sized for peaks, not averages.
    idle_rounds:
        Consecutive idle audit rounds after which a circuit may be
        preempted in favour of a waiting (denied) request with backlog.
    """

    def __init__(
        self,
        overbook: float = 1.2,
        request_factor: float = 1.5,
        idle_rounds: int = 2,
    ) -> None:
        if overbook < 1:
            raise ValueError(f"overbook must be >= 1, got {overbook}")
        if request_factor <= 0:
            raise ValueError(
                f"request_factor must be positive, got {request_factor}"
            )
        if int(idle_rounds) != idle_rounds or idle_rounds < 1:
            raise ValueError(
                f"idle_rounds must be a positive integer, got {idle_rounds}"
            )
        self.overbook = float(overbook)
        self.request_factor = float(request_factor)
        self.idle_rounds = int(idle_rounds)

    def install(
        self,
        env: "Environment",
        oss: Oss,
        spec: "ScenarioSpec",
        ost_index: int = 0,
        algorithm_factory: Optional[Any] = None,
    ) -> MechanismHandle:
        handle = VirtualCircuitTable(
            self,
            oss,
            ost_index,
            env,
            nodes=spec.nodes,
            max_token_rate=spec.topology.max_token_rate(ost_index),
            bucket_depth=spec.policy.bucket_depth,
            rpc_size=spec.topology.rpc_size,
        )
        handle.driver = PeriodicDriver(
            env,
            handle,
            interval_s=spec.policy.interval_s,
            overhead_s=spec.policy.overhead_s,
        )
        # Reservations are static: circuits are provisioned at install
        # time, before any I/O, not discovered by the audit loop.
        handle.apply(handle.admit_initial())
        return handle


class VirtualCircuitTable(MechanismHandle):
    """Per-OST circuit table: reservations, waitlist, and the usage ledger."""

    def __init__(
        self,
        mechanism: VirtualCircuitMechanism,
        oss: Oss,
        ost_index: int,
        env: "Environment",
        nodes: Mapping[str, int],
        max_token_rate: float,
        bucket_depth: float,
        rpc_size: int,
    ) -> None:
        super().__init__(mechanism, oss, ost_index)
        self.env = env
        self.nodes = dict(nodes)
        self.max_token_rate = float(max_token_rate)
        self.bucket_depth = float(bucket_depth)
        self.rpc_size = int(rpc_size)
        self.driver: PeriodicDriver = None  # type: ignore[assignment]
        #: Guaranteed rate each job requested (fixed at install).
        self.requests: Dict[str, float] = {}
        #: Live circuits: job → reserved rate (tokens/s).
        self.admitted: Dict[str, float] = {}
        #: Denied requests, in denial order — the admission waitlist.
        self.waiting: List[str] = []
        self.circuits_admitted = 0
        self.circuits_denied = 0
        self.circuits_preempted = 0
        self._idle: Dict[str, int] = {}
        self._rules_created = 0
        self._rules_stopped = 0
        self._rate_changes = 0
        # Reservation ledger: time-integral of reserved tokens vs bytes
        # actually moved by circuit holders — the utilization metric.
        self._reserved_rate = 0.0
        self._reserved_integral = 0.0
        self._last_change = float(env.now)
        self._served_bytes = 0
        oss.on_complete(self._record_served)

    # -- admission control --------------------------------------------------
    def admit_initial(self) -> Dict[str, float]:
        """Size every job's request and admit in priority order."""
        mechanism = self._mechanism()
        total_nodes = sum(self.nodes.values())
        for job in self._priority_order(self.nodes):
            self.requests[job] = (
                mechanism.request_factor
                * self.max_token_rate
                * self.nodes[job]
                / total_nodes
            )
        budget = mechanism.overbook * self.max_token_rate
        for job in self._priority_order(self.requests):
            rate = self.requests[job]
            if self._reserved_sum() + rate <= budget + _EPS:
                self.admitted[job] = rate
                self.circuits_admitted += 1
            else:
                self.waiting.append(job)
                self.circuits_denied += 1
        return dict(self.admitted)

    # -- per-round audit cycle ----------------------------------------------
    def observe(self) -> Dict[str, int]:
        """Demand per job (served + outstanding), clearing the period."""
        tracker = self.oss.jobstats
        snapshot = tracker.snapshot()
        demands: Dict[str, int] = {}
        jobs = set(snapshot) | set(tracker.jobs_with_outstanding())
        for job in jobs:
            served = snapshot[job].served if job in snapshot else 0
            demand = served + tracker.outstanding(job)
            if demand > 0:
                demands[job] = demand
        tracker.clear()
        return demands

    def allocate(self, demands: Mapping[str, int]) -> Dict[str, float]:
        """One audit round: idle accounting, preemption, waitlist admission.

        Rates never adapt — a circuit's rate is its reservation.  The only
        moves are bookkeeping: a circuit idle for ``idle_rounds``
        consecutive audits is preempted *iff* a waiting request has
        backlog, and freed budget admits waiters in waitlist order.
        """
        mechanism = self._mechanism()
        for job in self._priority_order(self.admitted):
            if demands.get(job, 0) > 0:
                self._idle[job] = 0
            else:
                self._idle[job] = self._idle.get(job, 0) + 1
        backlogged = [job for job in self.waiting if demands.get(job, 0) > 0]
        if backlogged:
            for job in self._priority_order(self.admitted):
                if self._idle.get(job, 0) >= mechanism.idle_rounds:
                    del self.admitted[job]
                    self._idle.pop(job, None)
                    self.waiting.append(job)
                    self.circuits_preempted += 1
        budget = mechanism.overbook * self.max_token_rate
        still_waiting: List[str] = []
        for job in self.waiting:
            rate = self.requests[job]
            if (
                demands.get(job, 0) > 0
                and self._reserved_sum() + rate <= budget + _EPS
            ):
                self.admitted[job] = rate
                self._idle[job] = 0
                self.circuits_admitted += 1
            else:
                still_waiting.append(job)
        self.waiting = still_waiting
        return dict(self.admitted)

    def apply(self, rates: Mapping[str, float]) -> None:
        """Reconcile live ``vc_*`` rules with the circuit table."""
        policy = self.oss.policy
        ranks = self._ranks(rates)
        for name in list(policy.rule_names()):
            if not name.startswith(RULE_PREFIX):
                continue
            if name[len(RULE_PREFIX):] not in rates:
                policy.stop_rule(name)
                self._rules_stopped += 1
        for job_id in sorted(rates):
            rate = rates[job_id]
            name = f"{RULE_PREFIX}{job_id}"
            if policy.has_rule_for_job(job_id):
                rule = policy.get_rule(name)
                if rule.rate != rate or rule.rank != ranks[job_id]:
                    policy.change_rate(name, rate, rank=ranks[job_id])
                    self._rate_changes += 1
            else:
                policy.start_rule(
                    TbfRule(
                        name=name,
                        job_id=job_id,
                        rate=rate,
                        depth=self.bucket_depth,
                        rank=ranks[job_id],
                    )
                )
                self._rules_created += 1
        self._settle_ledger(sum(rates.values()))

    def teardown(self) -> None:
        if self.driver is not None:
            self.driver.stop()
        policy = self.oss.policy
        for name in list(policy.rule_names()):
            if name.startswith(RULE_PREFIX):
                policy.stop_rule(name)
        self._settle_ledger(0.0)

    # -- ledger --------------------------------------------------------------
    def _record_served(self, rpc: Rpc) -> None:
        if rpc.job_id in self.admitted:
            self._served_bytes += rpc.size_bytes

    def _settle_ledger(self, new_rate: float) -> None:
        now = float(self.env.now)
        self._reserved_integral += self._reserved_rate * (
            now - self._last_change
        )
        self._last_change = now
        self._reserved_rate = new_rate

    # -- helpers --------------------------------------------------------------
    def _mechanism(self) -> VirtualCircuitMechanism:
        mechanism = self.mechanism
        assert isinstance(mechanism, VirtualCircuitMechanism)
        return mechanism

    def _reserved_sum(self) -> float:
        return sum(self.admitted.values())

    def _priority_order(self, jobs: Mapping[str, Any]) -> List[str]:
        return sorted(jobs, key=lambda j: (-self.nodes.get(j, 0), j))

    def _ranks(self, rates: Mapping[str, float]) -> Dict[str, int]:
        ordered = self._priority_order(rates)
        return {job: rank for rank, job in enumerate(ordered)}

    # -- introspection ---------------------------------------------------------
    @property
    def rules_created(self) -> int:
        return self._rules_created

    @property
    def rules_stopped(self) -> int:
        return self._rules_stopped

    @property
    def rate_changes(self) -> int:
        return self._rate_changes

    @property
    def rounds_run(self) -> int:
        return self.driver.rounds_run if self.driver is not None else 0

    @property
    def reservation_util(self) -> Optional[float]:
        """Bytes moved by circuit holders ÷ bytes their reservations bought.

        The denominator is the ledger's time-integral of reserved tokens
        (converted to bytes at the topology RPC size) up to the current
        simulated time; overbooked-but-idle circuits pull this toward 0.
        """
        integral = self._reserved_integral + self._reserved_rate * (
            float(self.env.now) - self._last_change
        )
        reserved_bytes = integral * self.rpc_size
        if reserved_bytes <= 0:
            return 0.0
        return self._served_bytes / reserved_bytes


@MECHANISMS.register(
    "vc",
    description=(
        "static guaranteed-bandwidth virtual circuits with overbooked "
        "admission and idle preemption"
    ),
)
def _vc(
    overbook: float = 1.2,
    request_factor: float = 1.5,
    idle_rounds: int = 2,
) -> VirtualCircuitMechanism:
    """Static reserved-rate circuits behind an overbooked admission gate.

    Parameters
    ----------
    overbook:
        Admission budget as a multiple of the OST token rate (>= 1);
        higher values admit more guaranteed rate than exists, trading
        isolation for utilization.
    request_factor:
        Each job's requested rate as a multiple of its node-proportional
        share — circuits are provisioned for peak, not average, demand.
    idle_rounds:
        Consecutive idle audit rounds before a circuit may be preempted
        in favour of a waiting request with backlog.
    """
    return VirtualCircuitMechanism(
        overbook=overbook,
        request_factor=request_factor,
        idle_rounds=idle_rounds,
    )
