"""Centralized SDN bandwidth controller (the decentralization-tax contrast).

AdapTBF's headline claim is comparative: *decentralized* token borrowing —
one controller per OST, no cross-OST communication — beats centralized
control once the control plane has real latency.  This module supplies the
centralized contender that claim needs: a single software-defined
controller process with **full cluster visibility** (related work: Tavakoli
et al., software-defined QoS management for HPC storage) that recomputes
per-OST/per-job rate rules every control round and pushes them to the data
plane through a configurable control-plane model:

* ``ctrl_latency_s`` — one-way flight time of the control plane, paid twice
  per decision (observations travel to the controller, rule updates travel
  back);
* ``staleness_s``    — additional observation age beyond the flight time
  (collection pipelines, database refresh);
* ``batch_rounds``   — update batching: the controller acts on every
  ``batch_rounds``-th observation tick instead of every one.

All three are sweepable factory parameters, which is exactly what the
``decentralization-tax`` campaign sweeps.  Every control-plane effect is
modeled through ordinary simulation timeouts, so observations and rule
pushes land at deterministic ``(time, priority, seq)`` positions — traces
stay bit-identical across kernel backends and campaign rows byte-identical
across ``--jobs`` fan-out.

The controller allocates each OST's token budget by **water-filling**:
node-weighted shares capped at each job's observed demand rate (times
``demand_slack``), surplus redistributed to still-unsatisfied jobs, and a
``headroom`` fraction left unallocated so demand the stale view has not
seen yet can drain through the TBF fallback queue.  With a zero-latency
control plane this is an oracle allocator — it sees exact demand and wastes
nothing — and the mechanism matches or beats the decentralized contenders.
As latency grows the view ages: rates chase demand that has moved on,
``overshoot_bytes`` (tokens granted beyond live backlog) climbs, and the
decentralization tax becomes measurable.

Crash semantics: an offline OST reports no observations and receives no
updates — an in-flight rule push addressed to a dead OST is **dropped**
(counted in ``stale_drops``), never applied, so recovery always starts
from the live rule table and the next round re-converges the rates.
"""

from __future__ import annotations

from collections import deque
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.core.mechanism import (
    MECHANISMS,
    BandwidthMechanism,
    MechanismHandle,
)
from repro.lustre.oss import Oss
from repro.lustre.tbf import TbfRule

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios.spec import ScenarioSpec
    from repro.sim.engine import Environment

__all__ = ["SdnControllerMechanism", "SdnOstAgent", "CentralController"]

#: Managed rules are named ``sdn_{job_id}``.
RULE_PREFIX = "sdn_"

#: Float slack for budget/cap comparisons in the water-filling loop.
_EPS = 1e-9

#: One cluster-wide observation: per-OST, per-job demand counts.
Observation = Dict[int, Dict[str, int]]


class SdnControllerMechanism(BandwidthMechanism):
    """Global QoS controller with a modeled (lossy-in-time) control plane.

    One central controller process per cluster recomputes every OST's
    per-job TBF rates each control round from a cluster-wide demand view
    that is ``ctrl_latency_s + staleness_s`` old, and pushes the rule
    updates back across the same ``ctrl_latency_s`` flight — the inverse
    of the paper's one-controller-per-OST deployment, priced explicitly.
    """

    def __init__(
        self,
        ctrl_latency_s: float = 0.0,
        staleness_s: float = 0.0,
        batch_rounds: int = 1,
        headroom: float = 0.02,
        demand_slack: float = 1.5,
    ) -> None:
        if ctrl_latency_s < 0:
            raise ValueError(
                f"ctrl_latency_s must be >= 0, got {ctrl_latency_s}"
            )
        if staleness_s < 0:
            raise ValueError(f"staleness_s must be >= 0, got {staleness_s}")
        if int(batch_rounds) != batch_rounds or batch_rounds < 1:
            raise ValueError(
                f"batch_rounds must be a positive integer, got {batch_rounds}"
            )
        if not 0 <= headroom < 1:
            raise ValueError(f"headroom must be in [0, 1), got {headroom}")
        if demand_slack < 1:
            raise ValueError(
                f"demand_slack must be >= 1, got {demand_slack}"
            )
        self.ctrl_latency_s = float(ctrl_latency_s)
        self.staleness_s = float(staleness_s)
        self.batch_rounds = int(batch_rounds)
        self.headroom = float(headroom)
        self.demand_slack = float(demand_slack)
        #: One central controller per environment (i.e. per built cluster);
        #: handles register with it at install and the last teardown drops
        #: it.  Keyed by the environment so a mechanism instance reused
        #: across builds never leaks state between clusters.
        self._controllers: Dict["Environment", CentralController] = {}

    def install(
        self,
        env: "Environment",
        oss: Oss,
        spec: "ScenarioSpec",
        ost_index: int = 0,
        algorithm_factory: Optional[Any] = None,
    ) -> MechanismHandle:
        controller = self._controllers.get(env)
        if controller is None:
            controller = CentralController(env, self, spec)
            self._controllers[env] = controller
        agent = SdnOstAgent(
            self,
            oss,
            ost_index,
            controller,
            nodes=spec.nodes,
            max_token_rate=spec.topology.max_token_rate(ost_index),
            bucket_depth=spec.policy.bucket_depth,
            rpc_size=spec.topology.rpc_size,
        )
        controller.register(agent)
        return agent

    def _drop_controller(self, env: "Environment") -> None:
        self._controllers.pop(env, None)


class CentralController:
    """The one controller process serving every OST of a cluster.

    Each ``interval_s`` it samples every online OST's demand (the sample is
    taken locally and *aged* before use — the flight to the controller),
    recomputes per-OST water-filled rates from the newest sufficiently old
    view, and spawns a delivery process that sleeps the return flight and
    applies the updates.  Deliveries addressed to OSTs that crashed while
    the update was in flight are dropped, never applied.
    """

    def __init__(
        self,
        env: "Environment",
        mechanism: SdnControllerMechanism,
        spec: "ScenarioSpec",
    ) -> None:
        self.env = env
        self.mechanism = mechanism
        self.interval_s = float(spec.policy.interval_s)
        self.overhead_s = float(spec.policy.overhead_s)
        self.agents: Dict[int, "SdnOstAgent"] = {}
        #: Decision rounds the controller has completed (cluster-wide).
        self.rounds_run = 0
        self._tick = 0
        self._stopped = False
        view_age = mechanism.ctrl_latency_s + mechanism.staleness_s
        self._samples: Deque[Tuple[float, Observation]] = deque(
            maxlen=int(view_age / self.interval_s) + 2
        )
        self.process = env.process(self._loop(), name="mechanism.sdn")

    # -- registration ------------------------------------------------------
    def register(self, agent: "SdnOstAgent") -> None:
        self.agents[agent.ost_index] = agent

    def unregister(self, agent: "SdnOstAgent") -> None:
        self.agents.pop(agent.ost_index, None)
        if not self.agents:
            self._stopped = True
            self.mechanism._drop_controller(self.env)

    # -- the control loop --------------------------------------------------
    def _loop(self) -> Iterator[object]:
        env = self.env
        mechanism = self.mechanism
        while True:
            yield env.timeout(self.interval_s)
            if self._stopped:
                return
            sample: Observation = {}
            for index in sorted(self.agents):
                agent = self.agents[index]
                if agent.oss.offline:
                    continue  # a dead OST reports nothing
                sample[index] = agent.observe()
            self._samples.append((env.now, sample))
            self._tick += 1
            if self._tick % mechanism.batch_rounds:
                continue  # batching: act on every batch_rounds-th tick
            view = self._view(env.now)
            if view is None:
                continue  # nothing old enough has reached the controller
            obs_time, observed = view
            decisions: Dict[int, Dict[str, float]] = {}
            for index in sorted(observed):
                agent_for = self.agents.get(index)
                if agent_for is None:
                    continue
                decisions[index] = self.allocate_ost(
                    agent_for, observed[index]
                )
            self.rounds_run += 1
            env.process(
                self._deliver(obs_time, decisions), name="mechanism.sdn.push"
            )

    def _view(self, now: float) -> Optional[Tuple[float, Observation]]:
        """Newest sample old enough to have reached the controller."""
        age = self.mechanism.ctrl_latency_s + self.mechanism.staleness_s
        newest: Optional[Tuple[float, Observation]] = None
        for when, sample in self._samples:
            if when <= now - age + _EPS:
                newest = (when, sample)
        return newest

    def _deliver(
        self, obs_time: float, decisions: Dict[int, Dict[str, float]]
    ) -> Iterator[object]:
        """The return flight: rules land ``ctrl_latency_s`` after deciding."""
        yield self.env.timeout(
            self.mechanism.ctrl_latency_s + self.overhead_s
        )
        if self._stopped:
            return
        for index in sorted(decisions):
            agent = self.agents.get(index)
            if agent is None:
                continue
            agent.deliver(decisions[index], obs_time)

    # -- allocation --------------------------------------------------------
    def allocate_ost(
        self, agent: "SdnOstAgent", demands: Mapping[str, int]
    ) -> Dict[str, float]:
        """Water-fill one OST's budget over its (viewed) active jobs.

        Node-weighted shares of ``(1 - headroom) · T_i``, capped at each
        job's observed demand rate times ``demand_slack``; the surplus of
        capped jobs is redistributed to the still-unsatisfied until the
        budget or the demand runs out.  Allocated rates therefore never
        exceed the budget (token conservation) and never exceed what the
        view says a job can use (which is precisely what goes wrong, by
        measurable degrees, as the view ages).
        """
        mechanism = self.mechanism
        nodes = agent.nodes
        active = sorted(
            job for job, d in demands.items() if d > 0 and job in nodes
        )
        if not active:
            return {}
        budget = (1.0 - mechanism.headroom) * agent.max_token_rate
        caps = {
            job: mechanism.demand_slack * demands[job] / self.interval_s
            for job in active
        }
        rates = dict.fromkeys(active, 0.0)
        unsatisfied: List[str] = list(active)
        remaining = budget
        while unsatisfied and remaining > _EPS:
            total_nodes = sum(nodes[job] for job in unsatisfied)
            capped = [
                job
                for job in unsatisfied
                if rates[job] + remaining * nodes[job] / total_nodes
                >= caps[job] - _EPS
            ]
            if not capped:
                for job in unsatisfied:
                    rates[job] += remaining * nodes[job] / total_nodes
                break
            for job in capped:
                remaining -= caps[job] - rates[job]
                rates[job] = caps[job]
            remaining = max(0.0, remaining)
            unsatisfied = [job for job in unsatisfied if job not in capped]
        return rates


class SdnOstAgent(MechanismHandle):
    """The data-plane agent on one OSS/OST pair.

    Owns no policy: it reports demand when the controller samples, applies
    whatever rule updates arrive, and keeps the lag/overshoot accounting
    the decentralization-tax columns are built from.
    """

    def __init__(
        self,
        mechanism: SdnControllerMechanism,
        oss: Oss,
        ost_index: int,
        controller: CentralController,
        nodes: Mapping[str, int],
        max_token_rate: float,
        bucket_depth: float,
        rpc_size: int,
    ) -> None:
        super().__init__(mechanism, oss, ost_index)
        self.controller = controller
        self.nodes = dict(nodes)
        self.max_token_rate = float(max_token_rate)
        self.bucket_depth = float(bucket_depth)
        self.rpc_size = int(rpc_size)
        #: Rule pushes dropped because this OST was offline when they landed.
        self.stale_drops = 0
        self._rounds = 0
        self._rules_created = 0
        self._rules_stopped = 0
        self._rate_changes = 0
        self._lag_total_s = 0.0
        self._updates = 0
        self._overshoot_bytes = 0.0

    # -- per-round control cycle -------------------------------------------
    def observe(self) -> Dict[str, int]:
        """Demand per job (served + outstanding), clearing the period."""
        tracker = self.oss.jobstats
        snapshot = tracker.snapshot()
        demands: Dict[str, int] = {}
        jobs = set(snapshot) | set(tracker.jobs_with_outstanding())
        for job in jobs:
            served = snapshot[job].served if job in snapshot else 0
            demand = served + tracker.outstanding(job)
            if demand > 0:
                demands[job] = demand
        tracker.clear()
        return demands

    def allocate(self, demands: Mapping[str, int]) -> Dict[str, float]:
        """Single-step hook: the central allocation on this OST's demands."""
        return self.controller.allocate_ost(self, demands)

    def apply(self, rates: Mapping[str, float]) -> None:
        """Reconcile live ``sdn_*`` rules with the decided rates."""
        policy = self.oss.policy
        ranks = self._ranks(rates)
        for name in list(policy.rule_names()):
            if not name.startswith(RULE_PREFIX):
                continue
            if name[len(RULE_PREFIX):] not in rates:
                policy.stop_rule(name)
                self._rules_stopped += 1
        for job_id in sorted(rates):
            rate = rates[job_id]
            name = f"{RULE_PREFIX}{job_id}"
            if policy.has_rule_for_job(job_id):
                policy.change_rate(name, rate, rank=ranks[job_id])
                self._rate_changes += 1
            else:
                policy.start_rule(
                    TbfRule(
                        name=name,
                        job_id=job_id,
                        rate=rate,
                        depth=self.bucket_depth,
                        rank=ranks[job_id],
                    )
                )
                self._rules_created += 1

    def deliver(self, rates: Mapping[str, float], obs_time: float) -> None:
        """One rule push landing from the controller.

        A push addressed to an offline OST is dropped (the stale update
        must never be applied over a crash); otherwise the lag and
        overshoot accounting runs against the *live* state before the
        rules change.
        """
        if self.oss.offline:
            self.stale_drops += 1
            return
        env = self.controller.env
        self._lag_total_s += env.now - obs_time
        self._updates += 1
        self._record_overshoot(rates)
        self.apply(rates)
        self._rounds += 1

    def _record_overshoot(self, rates: Mapping[str, float]) -> None:
        """Tokens granted beyond each job's live demand, in bytes.

        The grant was computed from a view ``rule_lag_s`` old; whatever
        exceeds the job's *current* outstanding work is capacity reserved
        for demand that no longer exists — the measurable staleness cost.
        """
        tracker = self.oss.jobstats
        interval = self.controller.interval_s
        for job in sorted(rates):
            granted_tokens = rates[job] * interval
            live_tokens = float(tracker.outstanding(job))
            if granted_tokens > live_tokens:
                self._overshoot_bytes += (
                    granted_tokens - live_tokens
                ) * self.rpc_size

    def teardown(self) -> None:
        self.controller.unregister(self)
        policy = self.oss.policy
        for name in list(policy.rule_names()):
            if name.startswith(RULE_PREFIX):
                policy.stop_rule(name)

    def _ranks(self, rates: Mapping[str, float]) -> Dict[str, int]:
        ordered = sorted(rates, key=lambda j: (-self.nodes.get(j, 0), j))
        return {job: rank for rank, job in enumerate(ordered)}

    # -- introspection ------------------------------------------------------
    @property
    def rules_created(self) -> int:
        return self._rules_created

    @property
    def rules_stopped(self) -> int:
        return self._rules_stopped

    @property
    def rate_changes(self) -> int:
        return self._rate_changes

    @property
    def rounds_run(self) -> int:
        return self._rounds

    @property
    def rule_lag_s(self) -> float:
        return self._lag_total_s / self._updates if self._updates else 0.0

    @property
    def overshoot_bytes(self) -> float:
        return self._overshoot_bytes


@MECHANISMS.register(
    "sdn",
    description=(
        "centralized SDN controller with a modeled control plane "
        "(latency, staleness, batching)"
    ),
)
def _sdn(
    ctrl_latency_s: float = 0.0,
    staleness_s: float = 0.0,
    batch_rounds: int = 1,
    headroom: float = 0.02,
    demand_slack: float = 1.5,
) -> SdnControllerMechanism:
    """One global controller recomputing every OST's rules per round.

    Parameters
    ----------
    ctrl_latency_s:
        One-way control-plane latency in simulated seconds, paid twice
        per decision (observation flight + rule-update flight).  0 makes
        the controller an oracle; the decentralization-tax campaign
        sweeps this axis.
    staleness_s:
        Extra age of the demand view beyond the flight time (collection
        and aggregation pipelines).
    batch_rounds:
        The controller acts on every Nth observation tick, batching rule
        updates between decisions (1 = act every round).
    headroom:
        Fraction of each OST's token rate left unallocated so demand the
        stale view has not seen drains through the TBF fallback queue.
    demand_slack:
        Per-job rate cap as a multiple of the observed demand rate;
        larger values trust the stale view less.
    """
    return SdnControllerMechanism(
        ctrl_latency_s=ctrl_latency_s,
        staleness_s=staleness_s,
        batch_rounds=batch_rounds,
        headroom=headroom,
        demand_slack=demand_slack,
    )
