"""AdapTBF — adaptive token-borrowing bandwidth control (the paper's core).

The package mirrors the architecture of paper Fig. 2:

* :mod:`repro.core.allocation` — the three-step Token Allocation Algorithm
  (priority-based initial allocation, surplus redistribution, borrowed-token
  re-compensation; Eq. 1–20);
* :mod:`repro.core.remainders` — fractional-token remainder accounting with
  largest-remainder correction (Eq. 21–25);
* :mod:`repro.core.records` — the per-job lending/borrowing ledger;
* :mod:`repro.core.controller` — the System Stats Controller driving the
  observation loop;
* :mod:`repro.core.rule_daemon` — the Rule Management Daemon translating
  allocations into TBF rules;
* :mod:`repro.core.framework` — the :class:`AdapTbf` facade wiring one
  controller per OST (decentralized: no cross-OST communication);
* :mod:`repro.core.baselines` — the paper's §IV-C comparison points
  (*No BW*, *Static BW*);
* :mod:`repro.core.ablation` — allocator variants that disable individual
  design elements, used by the ablation benches;
* :mod:`repro.core.mechanism` — the pluggable bandwidth-mechanism protocol
  and the :data:`MECHANISMS` registry every contender resolves through;
* :mod:`repro.core.pid` — the control-theoretic PID rate controller
  (a registered contender from outside the paper);
* :mod:`repro.core.sdn` — the centralized SDN controller with a modeled
  control plane (the decentralization-tax contrast);
* :mod:`repro.core.vc` — guaranteed-bandwidth virtual circuits with
  overbooked admission control.
"""

from repro.core.allocation import TokenAllocationAlgorithm
from repro.core.baselines import StaticBwAllocator, install_static_rules
from repro.core.controller import SystemStatsController
from repro.core.framework import AdapTbf
from repro.core.mechanism import (
    MECHANISMS,
    BandwidthMechanism,
    MechanismHandle,
    MechanismRegistry,
    PeriodicDriver,
)
from repro.core.pid import PidRateMechanism  # noqa: F401  (self-registers "pid")
from repro.core.records import JobRecords
from repro.core.sdn import SdnControllerMechanism  # noqa: F401  (self-registers "sdn")
from repro.core.remainders import RemainderStore
from repro.core.rule_daemon import RuleManagementDaemon
from repro.core.types import (
    AllocationInput,
    AllocationResult,
    AllocationRound,
    JobAllocation,
    JobInfo,
)
from repro.core.vc import VirtualCircuitMechanism  # noqa: F401  (self-registers "vc")

__all__ = [
    "AdapTbf",
    "BandwidthMechanism",
    "MECHANISMS",
    "MechanismHandle",
    "MechanismRegistry",
    "PeriodicDriver",
    "PidRateMechanism",
    "SdnControllerMechanism",
    "VirtualCircuitMechanism",
    "AllocationInput",
    "AllocationResult",
    "AllocationRound",
    "JobAllocation",
    "JobInfo",
    "JobRecords",
    "RemainderStore",
    "RuleManagementDaemon",
    "StaticBwAllocator",
    "SystemStatsController",
    "TokenAllocationAlgorithm",
    "install_static_rules",
]
