"""The AdapTBF facade: one self-contained controller per OST.

:class:`AdapTbf` wires together the pieces of paper Fig. 2 — stats tracker
(owned by the OSS), token allocation algorithm, rule management daemon and
system stats controller — for a single OST.  Decentralization falls out of
the construction: an :class:`AdapTbf` instance touches nothing beyond its own
OSS/OST, so a multi-target deployment is simply one instance per target.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence

from repro.core.allocation import TokenAllocationAlgorithm
from repro.core.controller import SystemStatsController
from repro.core.rule_daemon import RuleManagementDaemon
from repro.core.types import AllocationRound
from repro.lustre.nrs import TbfPolicy
from repro.lustre.oss import Oss
from repro.lustre.tbf import DEFAULT_BUCKET_DEPTH

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["AdapTbf"]


class AdapTbf:
    """Adaptive token-borrowing bandwidth control for one OST.

    Parameters
    ----------
    env:
        Simulation environment.
    oss:
        The OSS fronting the controlled OST.  Its NRS policy **must** be a
        :class:`~repro.lustre.nrs.TbfPolicy` (AdapTBF extends TBF; it cannot
        control a FIFO scheduler).
    nodes:
        ``{job_id → compute nodes}`` — scheduler knowledge used for priority.
    max_token_rate:
        ``T_i`` in tokens/second.  A natural choice is OST capacity divided
        by RPC size so tokens map 1:1 onto deliverable RPCs.
    interval_s:
        Observation period ``Δt``; the paper settles on 100 ms (§IV-H).
    overhead_s:
        Simulated per-round overhead (0 by default; §IV-G measured ~25 ms).
    bucket_depth:
        TBF bucket depth for managed rules.
    algorithm:
        Optionally inject a pre-configured/ablated allocation algorithm.
    keep_history:
        Controller round-history retention: ``True`` keeps every round
        (default), an ``int`` caps to the most recent N rounds, ``False``
        keeps none.  See :class:`~repro.core.controller.SystemStatsController`.
    """

    def __init__(
        self,
        env: "Environment",
        oss: Oss,
        nodes: Mapping[str, int],
        max_token_rate: float,
        interval_s: float = 0.1,
        overhead_s: float = 0.0,
        bucket_depth: float = DEFAULT_BUCKET_DEPTH,
        algorithm: TokenAllocationAlgorithm | None = None,
        keep_history: bool | int = True,
    ) -> None:
        if not isinstance(oss.policy, TbfPolicy):
            raise TypeError(
                "AdapTBF requires a TbfPolicy NRS; got "
                f"{type(oss.policy).__name__}"
            )
        self.env = env
        self.oss = oss
        self.algorithm = algorithm or TokenAllocationAlgorithm()
        self.daemon = RuleManagementDaemon(oss.policy, bucket_depth=bucket_depth)
        self.controller = SystemStatsController(
            env,
            jobstats=oss.jobstats,
            algorithm=self.algorithm,
            daemon=self.daemon,
            nodes=nodes,
            max_token_rate=max_token_rate,
            interval_s=interval_s,
            overhead_s=overhead_s,
            keep_history=keep_history,
        )

    # -- convenience passthroughs ------------------------------------------------
    @property
    def history(self) -> Sequence[AllocationRound]:
        """Retained allocation rounds (Fig. 7 is plotted from this)."""
        return self.controller.history

    @property
    def records(self) -> Dict[str, int]:
        """Current lending/borrowing ledger snapshot."""
        return self.algorithm.records.snapshot()

    def register_job(self, job_id: str, nodes: int) -> None:
        """Introduce a job that arrives after construction."""
        self.controller.register_job(job_id, nodes)

    def record_series(self, job_id: str) -> List[tuple]:
        """``[(time, record)]`` for one job across all rounds (Fig. 7)."""
        return [
            (round_.time, round_.records.get(job_id, 0))
            for round_ in self.history
        ]

    def demand_series(self, job_id: str) -> List[tuple]:
        """``[(time, demand_rpcs)]`` for one job across all rounds (Fig. 7)."""
        return [
            (round_.time, round_.demands.get(job_id, 0))
            for round_ in self.history
        ]
