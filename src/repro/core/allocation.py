"""The three-step Token Allocation Algorithm (paper §III-C).

One instance runs per OST, fully decentralized: it sees only that OST's
active-job demands and produces the token allocation for the next observation
period.  The three sequential steps are:

**1. Priority-based initial allocation** (Eq. 1–2)
    ``p_x = n_x / Σ n`` over active jobs; ``α_x = T_i · p_x · Δt``.

**2. Redistribution of surplus tokens** (Eq. 3–8)
    Utilization ``u_x = d_x / α^{t-1}_x``; surplus ``T^x_s = max(0, α_x − d_x)``
    is pooled and redistributed by the distribution factor

    .. math:: DF_x = \\begin{cases} u_x + u_x p_x & u_x > 1 \\\\
                                    u_x p_x       & u_x \\le 1 \\end{cases}

    so deficit jobs dominate, ranked by priority within each class.  The
    record ledger moves opposite to tokens (lenders up, borrowers down).

**3. Re-compensation for borrowed tokens** (Eq. 9–20)
    Lenders (``r > 0`` before *and* after step 2) reclaim from borrowers
    (``r < 0`` before and after), bounded by each borrower's debt and scaled
    by the reclaim coefficient ``C`` built from priority, current utilization
    and estimated future utilization (``d̄^{t+Δt} = d^t``).

Every distribution passes through the shared
:class:`~repro.core.remainders.RemainderStore` so integer totals are exact
and fractions are repaid over time (§III-C4).

Interpretation choices where the paper under-specifies (DESIGN.md
deviations 1, 4 and 5):
``u_x`` for first-seen jobs falls back to the current initial allocation;
``C`` is a scalar (the Eq. 13 summation leaves no ``x`` dependence); the
reclaim from a borrower is additionally clamped to its post-redistribution
allocation so allocations can never go negative.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.prediction import DemandEstimator, LastValueEstimator
from repro.core.records import JobRecords
from repro.core.remainders import RemainderStore
from repro.core.types import (
    AllocationInput,
    AllocationResult,
    JobAllocation,
)

__all__ = ["TokenAllocationAlgorithm"]


class TokenAllocationAlgorithm:
    """Stateful per-OST token allocator.

    Parameters
    ----------
    enable_redistribution:
        Disable to stop after step 1 (ablation: priority-only, still adapts
        to the active set but is not work-conserving).
    enable_recompensation:
        Disable to stop after step 2 (ablation: borrowing without paying
        back, which sacrifices long-term fairness).
    df_priority_aware:
        When False, the distribution factor ignores priority
        (``DF_x = u_x``), an ablation of the Eq. 6 design.
    demand_estimator:
        Predictor for next-period demand used in the re-compensation
        step's future-utilization score (Eq. 11-12).  Defaults to the
        paper's last-value assumption; see :mod:`repro.core.prediction`
        for the §IV-E "pattern hint" extensions.

    Notes
    -----
    The instance keeps three pieces of state across rounds: the previous
    final allocation per job (for ``u_x``), the record ledger and the
    remainder store.  Everything else is recomputed each round, which is why
    the paper measures O(n) time per round (§IV-G).
    """

    def __init__(
        self,
        enable_redistribution: bool = True,
        enable_recompensation: bool = True,
        df_priority_aware: bool = True,
        demand_estimator: Optional[DemandEstimator] = None,
    ) -> None:
        self.enable_redistribution = enable_redistribution
        self.enable_recompensation = enable_recompensation
        self.df_priority_aware = df_priority_aware
        self.demand_estimator = demand_estimator or LastValueEstimator()
        self.records = JobRecords()
        self.remainders = RemainderStore()
        self._previous_allocation: Dict[str, int] = {}
        self.rounds_run = 0

    # ------------------------------------------------------------------ API --
    def allocate(self, inputs: AllocationInput) -> AllocationResult:
        """Run one allocation round and return the per-job token grants."""
        active = sorted(inputs.demands)
        total = inputs.total_tokens
        demands = {job: int(inputs.demands[job]) for job in active}
        for job in active:
            self.demand_estimator.observe(job, demands[job])

        # -- Step 1: priority-based initial allocation (Eq. 1-2) ------------
        total_nodes = sum(inputs.nodes[job] for job in active)
        priority = {job: inputs.nodes[job] / total_nodes for job in active}
        raw_initial = {job: total * priority[job] for job in active}
        alpha = self.remainders.integerize(raw_initial, total)
        initial = dict(alpha)

        # -- Step 2: redistribution of surplus tokens (Eq. 3-8) --------------
        utilization = {
            job: self._utilization(job, demands[job], alpha[job]) for job in active
        }
        record_before = {job: self.records.get(job) for job in active}
        surplus = {job: 0 for job in active}
        share_rd = {job: 0 for job in active}
        record_rd = dict(record_before)

        if self.enable_redistribution:
            surplus = {
                job: max(0, alpha[job] - demands[job]) for job in active
            }
            pool = sum(surplus.values())
            if pool > 0:
                df = self._distribution_factors(active, utilization, priority)
                df_sum = sum(df.values())
                if df_sum > 0:
                    raw_shares = {
                        job: pool * df[job] / df_sum for job in active
                    }
                    share_rd = self.remainders.integerize(raw_shares, pool)
                    for job in active:
                        alpha[job] = alpha[job] - surplus[job] + share_rd[job]
                        record_rd[job] = (
                            record_before[job] + surplus[job] - share_rd[job]
                        )
                else:  # pragma: no cover - u>0 for active jobs ⇒ df_sum>0
                    surplus = {job: 0 for job in active}
        after_rd = dict(alpha)

        # -- Step 3: re-compensation for borrowed tokens (Eq. 9-20) -----------
        reclaimed = {job: 0 for job in active}
        share_rc = {job: 0 for job in active}
        record_rc = dict(record_rd)

        if self.enable_recompensation:
            plus = [
                j for j in active if record_before[j] > 0 and record_rd[j] > 0
            ]
            minus = [
                j for j in active if record_before[j] < 0 and record_rd[j] < 0
            ]
            if plus and minus:
                coefficient = self._reclaim_coefficient(
                    plus, priority, utilization, demands, after_rd
                )
                for job in minus:
                    bound = min(
                        -record_rd[job],  # the debt (|r| with r < 0)
                        int(coefficient * after_rd[job]),  # Eq. 14 floor
                        after_rd[job],  # cannot take more than it has
                    )
                    reclaimed[job] = max(0, bound)
                pool = sum(reclaimed.values())
                if pool > 0:
                    df = self._distribution_factors(plus, utilization, priority)
                    df_sum = sum(df.values())
                    raw_shares = {job: pool * df[job] / df_sum for job in plus}
                    share_rc = {job: 0 for job in active}
                    share_rc.update(self.remainders.integerize(raw_shares, pool))
                    for job in minus:
                        alpha[job] -= reclaimed[job]
                        record_rc[job] = record_rd[job] + reclaimed[job]
                    for job in plus:
                        alpha[job] += share_rc[job]
                        record_rc[job] = record_rd[job] - share_rc[job]

        # -- persist state & build the result ---------------------------------
        per_job: Dict[str, JobAllocation] = {}
        for job in active:
            self.records.set(job, record_rc[job])
            self._previous_allocation[job] = alpha[job]
            per_job[job] = JobAllocation(
                job_id=job,
                priority=priority[job],
                demand=demands[job],
                utilization=utilization[job],
                initial=initial[job],
                surplus=surplus[job],
                redistribution_share=share_rd[job],
                after_redistribution=after_rd[job],
                reclaimed=reclaimed[job],
                recompensation_share=share_rc[job],
                final=alpha[job],
                record_before=record_before[job],
                record_after=record_rc[job],
            )
        self.rounds_run += 1
        return AllocationResult(
            allocations=dict(alpha),
            per_job=per_job,
            total_tokens=total,
            surplus_pool=sum(surplus.values()),
            reclaimed_pool=sum(reclaimed.values()),
        )

    # --------------------------------------------------------------- helpers --
    def _utilization(self, job: str, demand: int, current_initial: int) -> float:
        """Eq. 3 with the DESIGN.md deviation-1 fallback chain.

        ``u_x = d_x / α^{t-1}_x``; when the job has no previous allocation
        (first time active) fall back to its current initial allocation,
        then to 1 token, so the score stays finite and meaningful.
        """
        denominator = self._previous_allocation.get(job, 0)
        if denominator <= 0:
            denominator = current_initial
        if denominator <= 0:
            denominator = 1
        return demand / denominator

    def _distribution_factors(
        self,
        jobs,
        utilization: Dict[str, float],
        priority: Dict[str, float],
    ) -> Dict[str, float]:
        """Eq. 6 (also reused as the recompensation factor, Eq. 18)."""
        factors = {}
        for job in jobs:
            u, p = utilization[job], priority[job]
            if not self.df_priority_aware:
                factors[job] = u
            elif u > 1.0:
                factors[job] = u + u * p
            else:
                factors[job] = u * p
        return factors

    def _reclaim_coefficient(
        self,
        plus,
        priority: Dict[str, float],
        utilization: Dict[str, float],
        demands: Dict[str, int],
        after_rd: Dict[str, int],
    ) -> float:
        """Eq. 12-13: the scalar reclaim coefficient over ``J+``.

        Future demand ``d̄`` comes from the configured estimator (the
        paper's Eq. 11 default: last value, ``d̄ = d``); an allocation of
        zero makes the estimated future utilization infinite, i.e. no
        head-room discount.
        """
        coefficient = 0.0
        for job in plus:
            estimated = self.demand_estimator.estimate(job)
            if after_rd[job] > 0:
                future_u = estimated / after_rd[job]
            else:
                future_u = float("inf")
            head_room = max(0.0, 1.0 - future_u)
            coefficient += (
                priority[job] * (max(1.0, utilization[job]) + head_room) / 2.0
            )
        return coefficient

    # ------------------------------------------------------------ inspection --
    def previous_allocation(self, job_id: str) -> Optional[int]:
        return self._previous_allocation.get(job_id)

    def forget_job(self, job_id: str) -> None:
        """Drop all state for a retired job (record, remainder, history)."""
        self.records.set(job_id, 0)
        self.remainders.drop(job_id)
        self._previous_allocation.pop(job_id, None)
