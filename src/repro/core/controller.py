"""System Stats Controller (paper §III-B and Fig. 2).

Drives the observation loop on one OST: every ``interval_s`` it

1. snapshots the job-stats tracker (step 1 in Fig. 2) to learn the active
   jobs and their demands,
2. invokes the token allocation algorithm (steps 2–4),
3. hands the result to the Rule Management Daemon (steps 5–7),
4. clears the tracker (step 9) so the next period starts fresh.

An optional ``overhead_s`` models the measured framework overhead (the paper
reports ~25 ms per round end to end); rule changes are then applied that much
later, which is exactly how the real prototype behaves since it talks to
Lustre through procfs from userspace.
"""

from __future__ import annotations

from collections import deque
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    MutableSequence,
    Optional,
    Union,
)

from repro.core.rule_daemon import RuleManagementDaemon
from repro.core.types import AllocationInput, AllocationResult, AllocationRound
from repro.lustre.jobstats import JobStatsTracker

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.allocation import TokenAllocationAlgorithm
    from repro.sim.engine import Environment

__all__ = ["SystemStatsController"]


class SystemStatsController:
    """Periodic allocation loop for one OST.

    Parameters
    ----------
    env:
        Simulation environment.
    jobstats:
        The OST's job-stats tracker (demand source).
    algorithm:
        The token allocation algorithm instance.
    daemon:
        Rule management daemon applying results.
    nodes:
        ``{job_id → compute nodes}`` for every job that may appear; this is
        scheduler-provided knowledge (Lustre JobID → SLURM allocation).
    max_token_rate:
        ``T_i`` tokens/second for this OST.
    interval_s:
        Observation period ``Δt`` (paper default 100 ms).
    overhead_s:
        Simulated per-round framework overhead before rules apply.
    keep_history:
        Round-history retention (time, demands, result, ledger snapshot per
        round; Fig. 7 is plotted straight from this).  ``True`` — the
        default — keeps *every* round, which is right for the paper's
        bounded experiment windows but grows without bound on long runs
        (~10 rounds/s at the 100 ms interval).  Pass an ``int`` to cap
        retention to the most recent N rounds (a ``deque(maxlen=N)``), or
        ``False`` to keep none; ``on_round`` callbacks fire either way.
    """

    def __init__(
        self,
        env: "Environment",
        jobstats: JobStatsTracker,
        algorithm: "TokenAllocationAlgorithm",
        daemon: RuleManagementDaemon,
        nodes: Mapping[str, int],
        max_token_rate: float,
        interval_s: float = 0.1,
        overhead_s: float = 0.0,
        keep_history: Union[bool, int] = True,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        if overhead_s < 0:
            raise ValueError(f"overhead must be >= 0, got {overhead_s}")
        if overhead_s >= interval_s:
            raise ValueError(
                "overhead must be smaller than the observation interval "
                f"(got {overhead_s} >= {interval_s}); see paper §IV-H"
            )
        self.env = env
        self.jobstats = jobstats
        self.algorithm = algorithm
        self.daemon = daemon
        self.nodes = dict(nodes)
        self.max_token_rate = float(max_token_rate)
        self.interval_s = float(interval_s)
        self.overhead_s = float(overhead_s)
        self.keep_history = keep_history
        self.history: MutableSequence[AllocationRound]
        if keep_history is True or keep_history is False:
            self.history = []
        else:
            if keep_history <= 0:
                raise ValueError(
                    f"keep_history cap must be positive, got {keep_history}"
                )
            self.history = deque(maxlen=keep_history)
        self._on_round: List[Callable[[AllocationRound], None]] = []
        self._stopped = False
        self.process = env.process(self._loop(), name="adaptbf.controller")

    def on_round(self, callback: Callable[[AllocationRound], None]) -> None:
        """Register a callback invoked after every allocation round."""
        self._on_round.append(callback)

    def register_job(self, job_id: str, nodes: int) -> None:
        """Teach the controller about a job that arrives mid-run."""
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        self.nodes[job_id] = nodes

    def current_demands(self) -> Dict[str, int]:
        """This period's demand signal from a fresh tracker snapshot.

        Read-only: the tracker is *not* cleared, so the running loop's next
        round sees the same period it would have anyway.  This is the
        observation half of the round, exposed for the mechanism protocol's
        ``observe`` hook and for tests.
        """
        return self._demands(self.jobstats.snapshot())

    def stop(self) -> None:
        """Halt the observation loop; it exits at its next wake-up."""
        self._stopped = True

    # -- the loop ----------------------------------------------------------------
    def _loop(self):
        env = self.env
        while True:
            yield env.timeout(self.interval_s)
            if self._stopped:
                return
            snapshot = self.jobstats.snapshot()
            demands = self._demands(snapshot)
            result: Optional[AllocationResult] = None
            if demands:
                known = {j: d for j, d in demands.items() if j in self.nodes}
                # Jobs the scheduler doesn't know get no rule: they stay on
                # the fallback queue (the paper's no-starvation guarantee).
                if known:
                    inputs = AllocationInput(
                        interval_s=self.interval_s,
                        max_token_rate=self.max_token_rate,
                        demands=known,
                        nodes=self.nodes,
                    )
                    result = self.algorithm.allocate(inputs)
                    if self.overhead_s:
                        yield env.timeout(self.overhead_s)
                    self.daemon.apply(result, self.interval_s)
            elif self._any_managed_rules():
                # No active jobs at all: stop every managed rule so queued
                # leftovers drain unthrottled.
                self._stop_all_rules()
            # Step 9: clear stats for the next observation period.
            self.jobstats.clear()
            if result is not None:
                round_ = AllocationRound(
                    time=env.now,
                    demands=demands,
                    result=result,
                    records=self.algorithm.records.snapshot(),
                )
                if self.keep_history:
                    self.history.append(round_)
                for callback in self._on_round:
                    callback(round_)

    def _demands(self, snapshot) -> Dict[str, int]:
        """Per-job demand ``d_x``: RPCs that wanted service this period.

        ``served this period + outstanding now`` counts every RPC that wanted
        service during the period exactly once per period it waits
        (outstanding = issued − served over the job's lifetime, i.e. queued
        in the NRS *or* in OST service).  A job whose backlog is gated by
        tokens therefore stays *active* and keeps signalling demand even when
        its client windows are full and no new RPCs arrive (DESIGN.md
        deviation 7; Lustre's real job_stats likewise reflects server-side
        activity, not client arrival times).
        """
        demands: Dict[str, int] = {}
        jobs = set(snapshot) | set(self.jobstats.jobs_with_outstanding())
        for job in jobs:
            served = snapshot[job].served if job in snapshot else 0
            d = served + self.jobstats.outstanding(job)
            if d > 0:
                demands[job] = d
        return demands

    def _any_managed_rules(self) -> bool:
        prefix = self.daemon.rule_prefix
        return any(n.startswith(prefix) for n in self.daemon.policy.rule_names())

    def _stop_all_rules(self) -> None:
        prefix = self.daemon.rule_prefix
        for name in list(self.daemon.policy.rule_names()):
            if name.startswith(prefix):
                self.daemon.policy.stop_rule(name)
                self.daemon.rules_stopped += 1
