"""PID-style control-theoretic rate controller (DESIGN.md deviation 8).

A contender from outside the paper: related work mitigates shared-storage
congestion with classical feedback control (Collignon et al., *Mitigating
Shared Storage Congestion Using Control Theory*; Tavakoli et al. steer QoS
targets centrally) instead of token borrowing.  This module maps that idea
onto the same TBF substrate AdapTBF drives, so the two families are
comparable head-to-head on identical hardware:

* the **controlled variable** is each job's share of the *delivered*
  throughput this period (served RPCs), compared against its
  node-proportional entitlement over the active set — the same
  renormalized priority as AdapTBF step 1, so priorities mean the same
  thing in both mechanisms;
* the **actuator** is the job's TBF rule rate, expressed as a fraction of
  ``T_i``: a positional PID adds a feedback correction to the entitlement
  (``share = p_x + Kp·e + Ki·I + Kd·ΔE``), so a persistently underserved
  job's integral term wins it head-room beyond its entitlement (the
  feedback analogue of token borrowing) and an overserving job is squeezed
  toward the floor;
* the integral is a **leaky** accumulator with an anti-windup clamp, so
  corrections fade once the error disappears instead of pinning rates
  after a long contention episode.

Admission-style regulation (holding the NRS queue at a reference depth)
is deliberately *not* used: simulated clients issue through blocking I/O
windows, so backlog is conserved and a queue setpoint below the aggregate
window is structurally unreachable — see DESIGN.md deviation 8 for the
full mapping rationale.

Everything is per-OST and decentralized, exactly like AdapTBF: one
:class:`PidRateController` handle (driven by a
:class:`~repro.core.mechanism.PeriodicDriver`) per target, no cross-OST
state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping

from repro.core.mechanism import (
    MECHANISMS,
    BandwidthMechanism,
    MechanismHandle,
    PeriodicDriver,
)
from repro.lustre.oss import Oss
from repro.lustre.tbf import TbfRule

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios.spec import ScenarioSpec
    from repro.sim.engine import Environment

__all__ = ["PidRateMechanism", "PidRateController"]

#: Managed rules are named ``pid_{job_id}``.
RULE_PREFIX = "pid_"


class PidRateMechanism(BandwidthMechanism):
    """Throughput-share tracking PID control over TBF rule rates.

    Parameters
    ----------
    kp, ki, kd:
        Positional PID gains on the normalized share error
        ``e_x = (p_x·S − s_x) / S`` (entitled minus measured share of the
        ``S`` RPCs delivered this period; ``e_x ∈ [−1, 1]``).
    leak:
        Integral retention per round (leaky integrator); corrections decay
        once the error disappears instead of pinning rates.
    windup:
        Anti-windup clamp on the integral term, in error units.
    floor_share:
        Lower clamp on any active job's rate as a fraction of ``T_i``;
        keeps every job serviceable (the no-starvation analogue of the
        paper's fallback queue).
    """

    def __init__(
        self,
        kp: float = 0.8,
        ki: float = 0.15,
        kd: float = 0.0,
        leak: float = 0.9,
        windup: float = 10.0,
        floor_share: float = 0.02,
    ) -> None:
        if min(kp, ki, kd) < 0:
            raise ValueError("PID gains must be non-negative")
        if not 0 <= leak <= 1:
            raise ValueError(f"leak must be in [0, 1], got {leak}")
        if windup <= 0:
            raise ValueError(f"windup must be positive, got {windup}")
        if not 0 < floor_share <= 1:
            raise ValueError(
                f"floor_share must be in (0, 1], got {floor_share}"
            )
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.leak = leak
        self.windup = windup
        self.floor_share = floor_share

    def install(
        self,
        env: "Environment",
        oss: Oss,
        spec: "ScenarioSpec",
        ost_index: int = 0,
        algorithm_factory=None,
    ) -> MechanismHandle:
        handle = PidRateController(
            self,
            oss,
            ost_index,
            nodes=spec.nodes,
            max_token_rate=spec.topology.max_token_rate(ost_index),
            bucket_depth=spec.policy.bucket_depth,
        )
        handle.driver = PeriodicDriver(
            env,
            handle,
            interval_s=spec.policy.interval_s,
            overhead_s=spec.policy.overhead_s,
        )
        return handle


class PidRateController(MechanismHandle):
    """Per-OST PID state plus TBF rule management."""

    def __init__(
        self,
        mechanism: PidRateMechanism,
        oss: Oss,
        ost_index: int,
        nodes: Mapping[str, int],
        max_token_rate: float,
        bucket_depth: float,
    ) -> None:
        super().__init__(mechanism, oss, ost_index)
        self.nodes = dict(nodes)
        self.max_token_rate = float(max_token_rate)
        self.bucket_depth = float(bucket_depth)
        self.driver: PeriodicDriver = None  # type: ignore[assignment]
        #: Per-job leaky integral and previous error.
        self._integral: Dict[str, float] = {}
        self._last_error: Dict[str, float] = {}
        self._served: Dict[str, int] = {}
        self._rules_created = 0
        self._rules_stopped = 0
        self._rate_changes = 0

    # -- per-round control cycle -------------------------------------------
    def observe(self) -> Dict[str, int]:
        """Demand per job (served + outstanding, DESIGN.md deviation 7).

        Also captures this period's *served* counters — the measured
        variable the PID tracks — and clears the tracker so each round
        sees one period, mirroring the AdapTBF controller's step 9.
        """
        tracker = self.oss.jobstats
        snapshot = tracker.snapshot()
        self._served = {job: stats.served for job, stats in snapshot.items()}
        demands: Dict[str, int] = {}
        jobs = set(snapshot) | set(tracker.jobs_with_outstanding())
        for job in jobs:
            served = snapshot[job].served if job in snapshot else 0
            demand = served + tracker.outstanding(job)
            if demand > 0:
                demands[job] = demand
        tracker.clear()
        return demands

    def allocate(self, demands: Mapping[str, int]) -> Dict[str, float]:
        """One positional PID step per active job on the share error."""
        mech: PidRateMechanism = self.mechanism  # type: ignore[assignment]
        active = sorted(j for j in demands if j in self.nodes)
        # Feedback state dies with the contention episode it measured.
        for job in list(self._integral):
            if job not in active:
                self._integral.pop(job, None)
                self._last_error.pop(job, None)
        if not active:
            return {}
        total_nodes = sum(self.nodes[j] for j in active)
        delivered = sum(self._served.get(j, 0) for j in active)
        rates: Dict[str, float] = {}
        for job in active:
            entitlement = self.nodes[job] / total_nodes
            if delivered > 0:
                error = (
                    entitlement * delivered - self._served.get(job, 0)
                ) / delivered
            else:
                error = 0.0
            integral = mech.leak * self._integral.get(job, 0.0) + error
            integral = max(-mech.windup, min(mech.windup, integral))
            derivative = error - self._last_error.get(job, error)
            self._integral[job] = integral
            self._last_error[job] = error
            share = (
                entitlement
                + mech.kp * error
                + mech.ki * integral
                + mech.kd * derivative
            )
            share = max(mech.floor_share, min(1.0, share))
            rates[job] = share * self.max_token_rate
        return rates

    def apply(self, rates: Mapping[str, float]) -> None:
        """Reconcile live ``pid_*`` rules with the decided rates."""
        policy = self.oss.policy
        ranks = self._ranks(rates)
        for name in list(policy.rule_names()):
            if not name.startswith(RULE_PREFIX):
                continue
            if name[len(RULE_PREFIX):] not in rates:
                policy.stop_rule(name)
                self._rules_stopped += 1
        for job_id, rate in rates.items():
            name = f"{RULE_PREFIX}{job_id}"
            if policy.has_rule_for_job(job_id):
                policy.change_rate(name, rate, rank=ranks[job_id])
                self._rate_changes += 1
            else:
                policy.start_rule(
                    TbfRule(
                        name=name,
                        job_id=job_id,
                        rate=rate,
                        depth=self.bucket_depth,
                        rank=ranks[job_id],
                    )
                )
                self._rules_created += 1

    def teardown(self) -> None:
        if self.driver is not None:
            self.driver.stop()
        policy = self.oss.policy
        for name in list(policy.rule_names()):
            if name.startswith(RULE_PREFIX):
                policy.stop_rule(name)

    def _ranks(self, rates: Mapping[str, float]) -> Dict[str, int]:
        ordered = sorted(rates, key=lambda j: (-self.nodes.get(j, 0), j))
        return {job: rank for rank, job in enumerate(ordered)}

    # -- introspection ------------------------------------------------------
    @property
    def rules_created(self) -> int:
        return self._rules_created

    @property
    def rules_stopped(self) -> int:
        return self._rules_stopped

    @property
    def rate_changes(self) -> int:
        return self._rate_changes

    @property
    def rounds_run(self) -> int:
        return self.driver.rounds_run if self.driver is not None else 0


@MECHANISMS.register(
    "pid",
    description="control-theoretic PID tracking of per-job throughput shares",
)
def _pid(
    kp: float = 0.8,
    ki: float = 0.15,
    kd: float = 0.0,
    leak: float = 0.9,
    windup: float = 10.0,
    floor_share: float = 0.02,
) -> PidRateMechanism:
    """Per-job PID loops steering TBF rates toward entitlement shares.

    Parameters
    ----------
    kp:
        Proportional gain on the share-tracking error.
    ki:
        Integral gain (error accumulated across rounds).
    kd:
        Derivative gain on the error's round-to-round change.
    leak:
        Per-round decay of the integral term (leaky anti-windup; 1.0
        disables the leak).
    windup:
        Hard clamp on the integral term's magnitude.
    floor_share:
        Minimum share of the OST rate any active job's rule may fall to,
        preventing controller-induced starvation.
    """
    return PidRateMechanism(
        kp=kp,
        ki=ki,
        kd=kd,
        leak=leak,
        windup=windup,
        floor_share=floor_share,
    )
