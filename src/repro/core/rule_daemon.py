"""Rule Management Daemon (paper §III-D).

Translates an allocation round into live TBF rules on the OSS:

* stops rules of jobs that were not active this period (their queued RPCs
  drain through the fallback queue, so nothing starves);
* creates rules for newly active jobs and re-rates existing ones;
* establishes the rule *hierarchy*: ranks follow job priority so that when
  several queues' token deadlines coincide, idle I/O threads pick the
  higher-priority job's queue first.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.core.types import AllocationResult
from repro.lustre.nrs import TbfPolicy
from repro.lustre.tbf import DEFAULT_BUCKET_DEPTH, TbfRule

__all__ = ["RuleManagementDaemon"]


class RuleManagementDaemon:
    """Applies allocation results to a :class:`~repro.lustre.nrs.TbfPolicy`.

    Parameters
    ----------
    policy:
        The TBF policy of the OSS serving this OST.
    bucket_depth:
        Depth for newly created rules (burst allowance).
    rule_prefix:
        Rule-name prefix; rules are named ``{prefix}{job_id}``.
    """

    def __init__(
        self,
        policy: TbfPolicy,
        bucket_depth: float = DEFAULT_BUCKET_DEPTH,
        rule_prefix: str = "adaptbf_",
    ) -> None:
        self.policy = policy
        self.bucket_depth = bucket_depth
        self.rule_prefix = rule_prefix
        self.rules_created = 0
        self.rules_stopped = 0
        self.rate_changes = 0

    def rule_name(self, job_id: str) -> str:
        return f"{self.rule_prefix}{job_id}"

    def apply(self, result: AllocationResult, interval_s: float) -> None:
        """Reconcile live rules with ``result`` (steps 5–7 of Fig. 2)."""
        ranks = self._ranks({j: a.priority for j, a in result.per_job.items()})

        # Stop rules for jobs that fell out of the active set.
        managed = [
            name
            for name in self.policy.rule_names()
            if name.startswith(self.rule_prefix)
        ]
        for name in managed:
            job_id = name[len(self.rule_prefix) :]
            if job_id not in result.allocations:
                self.policy.stop_rule(name)
                self.rules_stopped += 1

        # Create/re-rate rules for active jobs.
        for job_id, tokens in result.allocations.items():
            rate = tokens / interval_s
            name = self.rule_name(job_id)
            if self.policy.has_rule_for_job(job_id):
                self.policy.change_rate(name, rate, rank=ranks[job_id])
                self.rate_changes += 1
            else:
                self.policy.start_rule(
                    TbfRule(
                        name=name,
                        job_id=job_id,
                        rate=rate,
                        depth=self.bucket_depth,
                        rank=ranks[job_id],
                    )
                )
                self.rules_created += 1

    @staticmethod
    def _ranks(priorities: Mapping[str, float]) -> Dict[str, int]:
        """Rank jobs by priority: highest priority → rank 0 (served first).

        Ties broken by job id for determinism.
        """
        ordered = sorted(priorities, key=lambda j: (-priorities[j], j))
        return {job: rank for rank, job in enumerate(ordered)}
