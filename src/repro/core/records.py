"""The lending/borrowing ledger (``r_x`` in the paper).

A positive record means the job has *lent* tokens (its surplus was handed to
others); a negative record means it has *borrowed*.  The ledger is the memory
that makes AdapTBF fair over time: re-compensation (§III-C3) reclaims tokens
from borrowers exactly up to what they owe.

Two structural properties are maintained and property-tested:

* **zero-sum** — every exchange moves tokens between jobs, so the sum of all
  records stays where it started (0 for a fresh ledger);
* **persistence** — records of jobs that go idle are retained (the paper's
  memory-footprint note: AdapTBF stores only ``{job id → record}``), and the
  job resumes its position in the lending cycle when it becomes active again.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

__all__ = ["JobRecords"]


class JobRecords:
    """Mutable per-job token-exchange ledger."""

    def __init__(self) -> None:
        self._records: Dict[str, int] = {}

    def get(self, job_id: str) -> int:
        """Current record of ``job_id`` (0 if never seen)."""
        return self._records.get(job_id, 0)

    def add(self, job_id: str, delta: int) -> int:
        """Apply ``delta`` (＋ lends, − borrows); returns the new record."""
        new = self._records.get(job_id, 0) + delta
        self._records[job_id] = new
        return new

    def set(self, job_id: str, value: int) -> None:
        self._records[job_id] = value

    def positive_jobs(self, among: Iterable[str]) -> List[str]:
        """Jobs from ``among`` with strictly positive records (lenders)."""
        return [j for j in among if self._records.get(j, 0) > 0]

    def negative_jobs(self, among: Iterable[str]) -> List[str]:
        """Jobs from ``among`` with strictly negative records (borrowers)."""
        return [j for j in among if self._records.get(j, 0) < 0]

    def snapshot(self) -> Dict[str, int]:
        """Copy of the full ledger (used for Fig. 7 time series)."""
        return dict(self._records)

    def total(self) -> int:
        """Sum of all records — zero for a ledger that started empty."""
        return sum(self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._records

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JobRecords({self._records!r})"
