"""Declarative scenario pipeline.

The subsystem that turns a *description* of an experiment into results::

    ScenarioSpec ──build()──▶ ClusterTopology ──run_scenario()──▶ RunResult

* :mod:`repro.scenarios.spec` — the frozen ``ScenarioSpec`` dataclass
  family (topology, jobs, policy, run);
* :mod:`repro.scenarios.registry` — name → scenario-factory registry
  behind ``python -m repro.experiments run/list/describe``;
* :mod:`repro.scenarios.runner` — the single execution entry point;
* :mod:`repro.scenarios.builtin` — the paper's scenarios plus new ones
  (burst storms, elastic churn, heterogeneous OSTs), self-registered on
  import.
"""

from repro.scenarios.registry import REGISTRY, RegisteredScenario, ScenarioRegistry
from repro.scenarios.spec import (
    PolicySpec,
    RunSpec,
    ScenarioSpec,
    TopologySpec,
    from_scenario,
)

# Populate REGISTRY with the built-in scenarios.
from repro.scenarios import builtin as _builtin  # noqa: F401  (side effect)

#: Names resolved lazily from :mod:`repro.scenarios.runner` (PEP 562).
#: The runner pulls in the cluster layer, which itself consumes the spec
#: family from this package — deferring the import keeps the package
#: importable from either end of that chain.
_RUNNER_EXPORTS = (
    "PAPER_MECHANISMS",
    "RunResult",
    "run_mechanisms",
    "run_scenario",
)


def __getattr__(name: str):
    if name in _RUNNER_EXPORTS:
        from repro.scenarios import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "PAPER_MECHANISMS",
    "PolicySpec",
    "REGISTRY",
    "RegisteredScenario",
    "RunResult",
    "RunSpec",
    "ScenarioRegistry",
    "ScenarioSpec",
    "TopologySpec",
    "from_scenario",
    "run_mechanisms",
    "run_scenario",
]
