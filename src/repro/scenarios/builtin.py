"""Built-in scenario registrations.

Every workload the repository knows — the paper's evaluation scenarios
(§IV-D/E/F), the example setups, and scenarios the old per-figure scripts
could not express (seeded burst storms, elastic job churn, heterogeneous
OST capacities) — registered in the default
:data:`~repro.scenarios.registry.REGISTRY`.

Factory defaults target the *reduced* bench scale so a CLI run finishes in
seconds; pass ``data_scale=1 time_scale=1`` (or the figure adapters'
``--full``) for the paper-size configuration.
"""

from __future__ import annotations

from repro.scenarios.registry import REGISTRY
from repro.scenarios.spec import (
    MIB,
    PolicySpec,
    RunSpec,
    ScenarioSpec,
    TopologySpec,
    from_scenario,
)
from repro.workloads.scenarios import (
    BENCH_SCALE,
    ScenarioConfig,
    scenario_allocation,
    scenario_burst_storm,
    scenario_elastic_churn,
    scenario_recompensation,
    scenario_redistribution,
)
from repro.workloads.spec import JobSpec, ProcessSpec
from repro.workloads.patterns import (
    PoissonArrivalPattern,
    SequentialWritePattern,
    TraceReplayPattern,
)
from repro.workloads.registry import WORKLOADS
from repro.sim.rng import RngStreams
from repro.workloads.trace import EXAMPLE_TRACE, load_trace, records_by_job

__all__ = ["REGISTRY"]

def _cfg(
    data_scale: float,
    time_scale: float,
    heavy_procs: int = 16,
    window: int = 8,
    capacity_mib_s: float = 1024.0,
) -> ScenarioConfig:
    return ScenarioConfig(
        data_scale=data_scale,
        time_scale=time_scale,
        heavy_procs=heavy_procs,
        window=window,
        capacity_hint_mib_s=capacity_mib_s,
    )


def _policy(
    mechanism: str, interval_s: float, overhead_s: float, variant: str
) -> PolicySpec:
    return PolicySpec(
        mechanism=mechanism,
        interval_s=interval_s,
        overhead_s=overhead_s,
        variant=variant,
    )


@REGISTRY.register(
    "quickstart",
    description="2 competing jobs (4-node science vs 1-node hog) on one OST",
)
def _quickstart(
    file_mib: float = 256.0,
    procs: int = 4,
    science_nodes: int = 4,
    capacity_mib_s: float = 1024.0,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
    duration: float = 0.0,
) -> ScenarioSpec:
    jobs = (
        JobSpec(
            job_id="science",
            nodes=science_nodes,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(int(file_mib * MIB)))
                for _ in range(procs)
            ),
        ),
        JobSpec(
            job_id="hog",
            nodes=1,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(int(file_mib * MIB)))
                for _ in range(procs)
            ),
        ),
    )
    return ScenarioSpec(
        name="quickstart",
        jobs=jobs,
        topology=TopologySpec(capacity_mib_s=capacity_mib_s),
        policy=PolicySpec(mechanism=mechanism, interval_s=interval_s),
        run=RunSpec(duration_s=duration or None),
        description=(
            f"{science_nodes}-node 'science' vs 1-node 'hog', "
            f"{procs} writers each"
        ),
    )


@REGISTRY.register(
    "allocation",
    description="§IV-D (Fig. 3-4): 4 identical jobs, priorities 10/10/30/50%",
)
def _allocation(
    data_scale: float = BENCH_SCALE,
    time_scale: float = BENCH_SCALE,
    heavy_procs: int = 16,
    window: int = 8,
    capacity_mib_s: float = 1024.0,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
    overhead_s: float = 0.0,
    variant: str = "full",
) -> ScenarioSpec:
    cfg = _cfg(data_scale, time_scale, heavy_procs, window, capacity_mib_s)
    return from_scenario(
        scenario_allocation(cfg),
        topology=TopologySpec(capacity_mib_s=capacity_mib_s),
        policy=_policy(mechanism, interval_s, overhead_s, variant),
    )


@REGISTRY.register(
    "redistribution",
    description="§IV-E (Fig. 5-6): 3 bursty 30% jobs vs a 10% continuous hog",
)
def _redistribution(
    data_scale: float = BENCH_SCALE,
    time_scale: float = BENCH_SCALE,
    heavy_procs: int = 16,
    window: int = 8,
    capacity_mib_s: float = 1024.0,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
    overhead_s: float = 0.0,
    variant: str = "full",
) -> ScenarioSpec:
    cfg = _cfg(data_scale, time_scale, heavy_procs, window, capacity_mib_s)
    return from_scenario(
        scenario_redistribution(cfg),
        topology=TopologySpec(capacity_mib_s=capacity_mib_s),
        policy=_policy(mechanism, interval_s, overhead_s, variant),
    )


@REGISTRY.register(
    "recompensation",
    description="§IV-F (Fig. 7-8): equal priorities, 20/50/80s delayed streams",
)
def _recompensation(
    data_scale: float = BENCH_SCALE,
    time_scale: float = BENCH_SCALE,
    heavy_procs: int = 16,
    window: int = 8,
    capacity_mib_s: float = 1024.0,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
    overhead_s: float = 0.0,
    variant: str = "full",
) -> ScenarioSpec:
    cfg = _cfg(data_scale, time_scale, heavy_procs, window, capacity_mib_s)
    return from_scenario(
        scenario_recompensation(cfg),
        topology=TopologySpec(capacity_mib_s=capacity_mib_s),
        policy=_policy(mechanism, interval_s, overhead_s, variant),
    )


@REGISTRY.register(
    "multiost",
    description="decentralized control: files spread over several OSTs (§II-B)",
)
def _multiost(
    n_osts: int = 4,
    stripe_count: int = 0,
    capacity_mib_s: float = 256.0,
    file_mib: float = 512.0,
    procs: int = 8,
    science_nodes: int = 6,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
    duration: float = 3.0,
) -> ScenarioSpec:
    """Files striped over several OSTs, one controller per OST.

    Parameters
    ----------
    stripe_count:
        OSTs each file stripes over; 0 (the default) picks
        ``min(2, n_osts)`` so the scenario stays valid when an
        ``n_osts`` sweep narrows the cluster to one OST.
    """
    stripe_count = int(stripe_count) or min(2, n_osts)
    jobs = (
        JobSpec(
            job_id="simulation",
            nodes=science_nodes,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(int(file_mib * MIB)))
                for _ in range(procs)
            ),
        ),
        JobSpec(
            job_id="hog",
            nodes=1,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(int(file_mib * MIB)))
                for _ in range(procs)
            ),
        ),
    )
    return ScenarioSpec(
        name="multiost",
        jobs=jobs,
        topology=TopologySpec(
            n_osts=n_osts,
            stripe_count=stripe_count,
            capacity_mib_s=capacity_mib_s,
        ),
        policy=PolicySpec(mechanism=mechanism, interval_s=interval_s),
        run=RunSpec(duration_s=duration or None),
        description=(
            f"{science_nodes}-node job striped over {n_osts} OSTs "
            f"(stripe_count={stripe_count}) vs a 1-node hog; one independent "
            "controller per OST"
        ),
    )


@REGISTRY.register(
    "burst-storm",
    description="NEW: seeded many-tenant storm of mixed-priority bursts",
)
def _burst_storm(
    n_jobs: int = 6,
    seed: int = 0,
    duration_s: float = 40.0,
    with_hog: bool = True,
    data_scale: float = BENCH_SCALE,
    time_scale: float = BENCH_SCALE,
    capacity_mib_s: float = 1024.0,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
) -> ScenarioSpec:
    cfg = _cfg(data_scale, time_scale, capacity_mib_s=capacity_mib_s)
    scenario = scenario_burst_storm(
        cfg, n_jobs=n_jobs, seed=seed, duration_s=duration_s, with_hog=with_hog
    )
    return from_scenario(
        scenario,
        topology=TopologySpec(capacity_mib_s=capacity_mib_s),
        policy=PolicySpec(mechanism=mechanism, interval_s=interval_s),
        run=RunSpec(duration_s=scenario.duration_s, seed=seed),
    )


@REGISTRY.register(
    "elastic-churn",
    description="NEW: waves of jobs arriving and departing (elastic tenancy)",
)
def _elastic_churn(
    waves: int = 3,
    jobs_per_wave: int = 2,
    wave_gap_s: float = 8.0,
    file_mib: float = 192.0,
    seed: int = 0,
    data_scale: float = BENCH_SCALE,
    time_scale: float = BENCH_SCALE,
    capacity_mib_s: float = 1024.0,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
) -> ScenarioSpec:
    cfg = _cfg(data_scale, time_scale, capacity_mib_s=capacity_mib_s)
    scenario = scenario_elastic_churn(
        cfg,
        waves=waves,
        jobs_per_wave=jobs_per_wave,
        wave_gap_s=wave_gap_s,
        file_mib=file_mib,
        seed=seed,
    )
    return from_scenario(
        scenario,
        topology=TopologySpec(capacity_mib_s=capacity_mib_s),
        policy=PolicySpec(mechanism=mechanism, interval_s=interval_s),
        run=RunSpec(duration_s=None, seed=seed),
    )


@REGISTRY.register(
    "hetero-osts",
    description="NEW: heterogeneous OST capacities (fast SSD + slow HDD tiers)",
)
def _hetero_osts(
    capacities: str = "1024,512,256,128",
    stripe_count: int = 1,
    file_mib: float = 96.0,
    procs: int = 4,
    science_nodes: int = 4,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
    duration: float = 4.0,
) -> ScenarioSpec:
    """Mixed-speed storage tiers, one independent controller per tier.

    The pre-pipeline builder only knew a single scalar capacity, so a
    cluster mixing SSD- and HDD-class OSTs was inexpressible.  Files are
    placed round-robin across the tiers; each tier's controller enforces
    priorities against its *own* token rate.
    """
    caps = tuple(float(c) for c in str(capacities).split(",") if c.strip())
    jobs = (
        JobSpec(
            job_id="science",
            nodes=science_nodes,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(int(file_mib * MIB)))
                for _ in range(procs)
            ),
        ),
        JobSpec(
            job_id="hog",
            nodes=1,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(int(file_mib * MIB)))
                for _ in range(procs)
            ),
        ),
    )
    return ScenarioSpec(
        name="hetero-osts",
        jobs=jobs,
        topology=TopologySpec(
            n_osts=len(caps),
            ost_capacities_mib_s=caps,
            stripe_count=stripe_count,
        ),
        policy=PolicySpec(mechanism=mechanism, interval_s=interval_s),
        run=RunSpec(duration_s=duration or None),
        description=(
            f"{len(caps)} OSTs at {capacities} MiB/s; science vs hog placed "
            "round-robin across unequal tiers"
        ),
    )


@REGISTRY.register(
    "scale-500ost",
    description="NEW: scale stress — hundreds of OSTs, one controller each",
)
def _scale_500ost(
    n_osts: int = 500,
    capacity_mib_s: float = 64.0,
    stripe_count: int = 8,
    io_threads: int = 4,
    procs: int = 64,
    file_mib: float = 64.0,
    science_nodes: int = 4,
    window: int = 4,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
    duration: float = 1.0,
) -> ScenarioSpec:
    """Decentralization at cluster scale: 500 independent per-OST controllers.

    The regime the control-theoretic storage-congestion comparisons evaluate
    at (hundreds of targets, thousands of concurrent streams) and the
    benchmark-regression harness's large grid cells exercise.  Two jobs
    stripe wide across every OST, so each OST runs the full NRS/TBF +
    controller stack concurrently.

    Parameters
    ----------
    n_osts:
        Number of (OSS, OST) pairs, each with an independent controller.
    capacity_mib_s:
        Per-OST bandwidth in MiB/s (small: aggregate stays realistic).
    stripe_count:
        OSTs per file; wide striping spreads every job over many OSTs.
    io_threads:
        OSS I/O threads per OST (reduced from 16: at 500 OSTs the thread
        pool itself would dominate the process count).
    procs:
        Processes per job.
    file_mib:
        Volume each process writes, in MiB.
    science_nodes:
        Node count (priority weight) of the science job; the hog has 1.
    window:
        RPCs in flight per process.
    mechanism:
        Bandwidth mechanism under test (registry name).
    interval_s:
        Controller observation period.
    duration:
        Simulated-duration cap in seconds.
    """
    jobs = (
        JobSpec(
            job_id="science",
            nodes=science_nodes,
            processes=tuple(
                ProcessSpec(
                    SequentialWritePattern(int(file_mib * MIB)), window=window
                )
                for _ in range(procs)
            ),
        ),
        JobSpec(
            job_id="hog",
            nodes=1,
            processes=tuple(
                ProcessSpec(
                    SequentialWritePattern(int(file_mib * MIB)), window=window
                )
                for _ in range(procs)
            ),
        ),
    )
    return ScenarioSpec(
        name="scale-500ost",
        jobs=jobs,
        topology=TopologySpec(
            n_osts=n_osts,
            capacity_mib_s=capacity_mib_s,
            stripe_count=stripe_count,
            io_threads=io_threads,
        ),
        policy=PolicySpec(mechanism=mechanism, interval_s=interval_s),
        run=RunSpec(duration_s=duration or None),
        description=(
            f"{n_osts} OSTs × {capacity_mib_s:g} MiB/s, "
            f"{2 * procs} clients striped {stripe_count}-wide, "
            "one controller per OST"
        ),
    )


@REGISTRY.register(
    "client-swarm",
    description="NEW: scale stress — thousands of client processes on few OSTs",
)
def _client_swarm(
    n_clients: int = 1000,
    n_jobs: int = 8,
    n_osts: int = 4,
    stripe_count: int = 1,
    op_mib: float = 4.0,
    window: int = 4,
    capacity_mib_s: float = 1024.0,
    io_threads: int = 16,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
    duration: float = 2.0,
) -> ScenarioSpec:
    """Client-count stress: a swarm of processes contending for few OSTs.

    The inverse of ``scale-500ost`` — the event heap carries thousands of
    concurrent client windows while a handful of controllers arbitrate.
    Job node counts cycle 1/2/4/8, so the swarm still has a priority
    hierarchy for the mechanism to enforce.

    Parameters
    ----------
    n_clients:
        Total client processes, split as evenly as possible over the jobs.
    n_jobs:
        Number of jobs (TBF rules) the swarm is partitioned into.
    n_osts:
        Number of (OSS, OST) pairs.
    stripe_count:
        OSTs per file.
    op_mib:
        Volume each process writes, in MiB.
    window:
        RPCs in flight per process.
    capacity_mib_s:
        Per-OST bandwidth in MiB/s.
    io_threads:
        OSS I/O threads per OST.
    mechanism:
        Bandwidth mechanism under test (registry name).
    interval_s:
        Controller observation period.
    duration:
        Simulated-duration cap in seconds.
    """
    if n_clients <= 0:
        raise ValueError("n_clients must be positive")
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    n_jobs = min(n_jobs, n_clients)
    base, extra = divmod(n_clients, n_jobs)
    jobs = []
    for index in range(n_jobs):
        procs = base + (1 if index < extra else 0)
        jobs.append(
            JobSpec(
                job_id=f"swarm{index + 1}",
                nodes=2 ** (index % 4),  # 1/2/4/8-node priority tiers
                processes=tuple(
                    ProcessSpec(
                        SequentialWritePattern(int(op_mib * MIB)), window=window
                    )
                    for _ in range(procs)
                ),
            )
        )
    return ScenarioSpec(
        name="client-swarm",
        jobs=tuple(jobs),
        topology=TopologySpec(
            n_osts=n_osts,
            capacity_mib_s=capacity_mib_s,
            stripe_count=stripe_count,
            io_threads=io_threads,
        ),
        policy=PolicySpec(mechanism=mechanism, interval_s=interval_s),
        run=RunSpec(duration_s=duration or None),
        description=(
            f"{n_clients} client processes in {n_jobs} jobs vs "
            f"{n_osts} OST(s) at {capacity_mib_s:g} MiB/s"
        ),
    )


@REGISTRY.register(
    "trace-replay",
    description="NEW: replay a recorded I/O trace, one job per trace job",
)
def _trace_replay(
    trace: str = "",
    nodes: str = "",
    time_scale: float = 1.0,
    data_scale: float = 1.0,
    window: int = 8,
    capacity_mib_s: float = 1024.0,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
    duration: float = 0.0,
) -> ScenarioSpec:
    """Trace-driven evaluation: the job mix comes from a recorded trace.

    The trace's distinct ``job`` values become :class:`JobSpec` entries
    (one replay process each, requests issued at their recorded offsets),
    so real request streams — not synthetic shapes — exercise the
    mechanism under test.

    Parameters
    ----------
    trace:
        Path to a ``.csv``/``.jsonl`` trace (see
        :mod:`repro.workloads.trace`); empty replays the bundled example.
    nodes:
        Comma-separated node counts assigned to the trace's jobs in
        sorted-name order (cycled if shorter); empty gives every job one
        node (equal priorities).
    time_scale:
        Multiplier on request offsets (compress/stretch the trace).
    data_scale:
        Multiplier on request volumes.
    window:
        RPCs in flight per replay process.
    capacity_mib_s:
        Per-OST bandwidth in MiB/s.
    mechanism:
        Bandwidth mechanism under test (registry name).
    interval_s:
        Controller observation period.
    duration:
        Simulated-duration cap in seconds; 0 runs to trace completion.
    """
    records = load_trace(trace or EXAMPLE_TRACE)
    grouped = records_by_job(records)
    counts = tuple(int(n) for n in str(nodes).split(",") if n.strip())
    jobs = tuple(
        JobSpec(
            job_id=job_name,
            nodes=counts[index % len(counts)] if counts else 1,
            processes=(
                ProcessSpec(
                    TraceReplayPattern(
                        records=grouped[job_name],
                        time_scale=time_scale,
                        data_scale=data_scale,
                    ),
                    window=window,
                ),
            ),
        )
        for index, job_name in enumerate(sorted(grouped))
    )
    return ScenarioSpec(
        name="trace-replay",
        jobs=jobs,
        topology=TopologySpec(capacity_mib_s=capacity_mib_s),
        policy=PolicySpec(mechanism=mechanism, interval_s=interval_s),
        run=RunSpec(duration_s=duration or None),
        description=(
            f"{len(jobs)} job(s) replayed from "
            f"{trace or EXAMPLE_TRACE.name} "
            f"({len(records)} records, time_scale={time_scale:g})"
        ),
    )


@REGISTRY.register(
    "poisson-storm",
    description="NEW: seeded storm of Poisson-arrival tenants (irregular demand)",
)
def _poisson_storm(
    n_jobs: int = 5,
    seed: int = 0,
    duration_s: float = 12.0,
    with_hog: bool = True,
    op_mib: float = 2.0,
    capacity_mib_s: float = 1024.0,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
) -> ScenarioSpec:
    """Memoryless many-tenant contention: every job is a Poisson source.

    Node counts, arrival rates, process counts and read fractions are
    drawn from ``random.Random(seed)`` — the stochastic-arrival regime
    the SDQoSA/control-theory comparisons stress, where demand cannot be
    predicted from the last interval.  The arrival streams themselves
    are seeded per client, so the same seed replays bit-identically.

    Parameters
    ----------
    n_jobs:
        Number of Poisson tenants.
    seed:
        Root seed for both the job-mix draws and the arrival streams.
    duration_s:
        Simulated-duration cap; arrivals are sized to roughly fill it.
    with_hog:
        Add a low-priority continuous writer that keeps the OST
        saturated between arrival clusters.
    op_mib:
        Volume of each arrival's op, in MiB.
    capacity_mib_s:
        Per-OST bandwidth in MiB/s.
    mechanism:
        Bandwidth mechanism under test (registry name).
    interval_s:
        Controller observation period.
    """
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = RngStreams(seed=seed).get_stdlib("scenario.poisson-storm")
    jobs = []
    for index in range(1, n_jobs + 1):
        nodes = rng.randint(1, 8)
        n_procs = rng.randint(1, 2)
        rate = rng.uniform(4.0, 16.0)
        read_fraction = rng.choice((0.0, 0.25, 0.5))
        processes = tuple(
            ProcessSpec(
                PoissonArrivalPattern(
                    rate_per_s=rate,
                    op_bytes=int(op_mib * MIB),
                    count=max(2, int(rate * duration_s * 0.8)),
                    read_fraction=read_fraction,
                    seed=seed,
                )
            )
            for _ in range(n_procs)
        )
        jobs.append(
            JobSpec(job_id=f"poisson{index}", nodes=nodes, processes=processes)
        )
    if with_hog:
        hog_bytes = max(
            MIB, int(capacity_mib_s * MIB * duration_s / 4)
        )
        jobs.append(
            JobSpec(
                job_id="hog",
                nodes=1,
                processes=tuple(
                    ProcessSpec(SequentialWritePattern(hog_bytes))
                    for _ in range(4)
                ),
            )
        )
    return ScenarioSpec(
        name="poisson-storm",
        jobs=tuple(jobs),
        topology=TopologySpec(capacity_mib_s=capacity_mib_s),
        policy=PolicySpec(mechanism=mechanism, interval_s=interval_s),
        run=RunSpec(duration_s=duration_s, seed=seed),
        description=(
            f"{n_jobs} Poisson tenants with seeded-random rates/priorities "
            f"(seed={seed})"
            + (" + continuous low-priority hog" if with_hog else "")
        ),
    )


@REGISTRY.register(
    "diurnal-mix",
    description="NEW: day/night load swings against a steady background writer",
)
def _diurnal_mix(
    day_rate_per_s: float = 16.0,
    night_rate_per_s: float = 2.0,
    phase_s: float = 3.0,
    days: int = 2,
    op_mib: float = 2.0,
    diurnal_procs: int = 3,
    diurnal_nodes: int = 4,
    hog_mib: float = 96.0,
    seed: int = 0,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
) -> ScenarioSpec:
    """Slow demand swings: a diurnal tenant vs a steady low-priority hog.

    The diurnal job's demand drops by ``day_rate / night_rate`` every
    ``phase_s`` — lending opportunities on a timescale far above the
    controller interval, the regime where adaptive borrowing should beat
    static shares most visibly.

    Parameters
    ----------
    day_rate_per_s:
        Mean op arrival rate during day phases.
    night_rate_per_s:
        Mean op arrival rate during night phases.
    phase_s:
        Nominal length of each day and each night phase.
    days:
        Number of day+night cycles.
    op_mib:
        Volume of each diurnal op, in MiB.
    diurnal_procs:
        Processes in the diurnal job.
    diurnal_nodes:
        Node count (priority weight) of the diurnal job.
    hog_mib:
        Volume each of the hog's 4 processes writes, in MiB.
    seed:
        Root seed of the diurnal arrival streams.
    mechanism:
        Bandwidth mechanism under test (registry name).
    interval_s:
        Controller observation period.
    """
    pattern = WORKLOADS.build(
        "diurnal",
        day_rate_per_s=day_rate_per_s,
        night_rate_per_s=night_rate_per_s,
        phase_s=phase_s,
        days=days,
        op_mib=op_mib,
        seed=seed,
    )
    jobs = (
        JobSpec(
            job_id="diurnal",
            nodes=diurnal_nodes,
            processes=tuple(
                ProcessSpec(pattern) for _ in range(diurnal_procs)
            ),
        ),
        JobSpec(
            job_id="hog",
            nodes=1,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(int(hog_mib * MIB)))
                for _ in range(4)
            ),
        ),
    )
    return ScenarioSpec(
        name="diurnal-mix",
        jobs=jobs,
        policy=PolicySpec(mechanism=mechanism, interval_s=interval_s),
        run=RunSpec(duration_s=None, seed=seed),
        description=(
            f"{diurnal_nodes}-node diurnal tenant swinging "
            f"{day_rate_per_s:g}→{night_rate_per_s:g} ops/s every "
            f"{phase_s:g}s vs a 1-node steady hog"
        ),
    )
