"""Built-in scenario registrations.

Every workload the repository knows — the paper's evaluation scenarios
(§IV-D/E/F), the example setups, and scenarios the old per-figure scripts
could not express (seeded burst storms, elastic job churn, heterogeneous
OST capacities) — registered in the default
:data:`~repro.scenarios.registry.REGISTRY`.

Factory defaults target the *reduced* bench scale so a CLI run finishes in
seconds; pass ``data_scale=1 time_scale=1`` (or the figure adapters'
``--full``) for the paper-size configuration.
"""

from __future__ import annotations

from repro.scenarios.registry import REGISTRY
from repro.scenarios.spec import (
    MIB,
    PolicySpec,
    RunSpec,
    ScenarioSpec,
    TopologySpec,
    from_scenario,
)
from repro.workloads.scenarios import (
    BENCH_SCALE,
    ScenarioConfig,
    scenario_allocation,
    scenario_burst_storm,
    scenario_elastic_churn,
    scenario_recompensation,
    scenario_redistribution,
)
from repro.workloads.spec import JobSpec, ProcessSpec
from repro.workloads.patterns import SequentialWritePattern

__all__ = ["REGISTRY"]

def _cfg(
    data_scale: float,
    time_scale: float,
    heavy_procs: int = 16,
    window: int = 8,
    capacity_mib_s: float = 1024.0,
) -> ScenarioConfig:
    return ScenarioConfig(
        data_scale=data_scale,
        time_scale=time_scale,
        heavy_procs=heavy_procs,
        window=window,
        capacity_hint_mib_s=capacity_mib_s,
    )


def _policy(
    mechanism: str, interval_s: float, overhead_s: float, variant: str
) -> PolicySpec:
    return PolicySpec(
        mechanism=mechanism,
        interval_s=interval_s,
        overhead_s=overhead_s,
        variant=variant,
    )


@REGISTRY.register(
    "quickstart",
    description="2 competing jobs (4-node science vs 1-node hog) on one OST",
)
def _quickstart(
    file_mib: float = 256.0,
    procs: int = 4,
    science_nodes: int = 4,
    capacity_mib_s: float = 1024.0,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
    duration: float = 0.0,
) -> ScenarioSpec:
    jobs = (
        JobSpec(
            job_id="science",
            nodes=science_nodes,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(int(file_mib * MIB)))
                for _ in range(procs)
            ),
        ),
        JobSpec(
            job_id="hog",
            nodes=1,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(int(file_mib * MIB)))
                for _ in range(procs)
            ),
        ),
    )
    return ScenarioSpec(
        name="quickstart",
        jobs=jobs,
        topology=TopologySpec(capacity_mib_s=capacity_mib_s),
        policy=PolicySpec(mechanism=mechanism, interval_s=interval_s),
        run=RunSpec(duration_s=duration or None),
        description=(
            f"{science_nodes}-node 'science' vs 1-node 'hog', "
            f"{procs} writers each"
        ),
    )


@REGISTRY.register(
    "allocation",
    description="§IV-D (Fig. 3-4): 4 identical jobs, priorities 10/10/30/50%",
)
def _allocation(
    data_scale: float = BENCH_SCALE,
    time_scale: float = BENCH_SCALE,
    heavy_procs: int = 16,
    window: int = 8,
    capacity_mib_s: float = 1024.0,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
    overhead_s: float = 0.0,
    variant: str = "full",
) -> ScenarioSpec:
    cfg = _cfg(data_scale, time_scale, heavy_procs, window, capacity_mib_s)
    return from_scenario(
        scenario_allocation(cfg),
        topology=TopologySpec(capacity_mib_s=capacity_mib_s),
        policy=_policy(mechanism, interval_s, overhead_s, variant),
    )


@REGISTRY.register(
    "redistribution",
    description="§IV-E (Fig. 5-6): 3 bursty 30% jobs vs a 10% continuous hog",
)
def _redistribution(
    data_scale: float = BENCH_SCALE,
    time_scale: float = BENCH_SCALE,
    heavy_procs: int = 16,
    window: int = 8,
    capacity_mib_s: float = 1024.0,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
    overhead_s: float = 0.0,
    variant: str = "full",
) -> ScenarioSpec:
    cfg = _cfg(data_scale, time_scale, heavy_procs, window, capacity_mib_s)
    return from_scenario(
        scenario_redistribution(cfg),
        topology=TopologySpec(capacity_mib_s=capacity_mib_s),
        policy=_policy(mechanism, interval_s, overhead_s, variant),
    )


@REGISTRY.register(
    "recompensation",
    description="§IV-F (Fig. 7-8): equal priorities, 20/50/80s delayed streams",
)
def _recompensation(
    data_scale: float = BENCH_SCALE,
    time_scale: float = BENCH_SCALE,
    heavy_procs: int = 16,
    window: int = 8,
    capacity_mib_s: float = 1024.0,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
    overhead_s: float = 0.0,
    variant: str = "full",
) -> ScenarioSpec:
    cfg = _cfg(data_scale, time_scale, heavy_procs, window, capacity_mib_s)
    return from_scenario(
        scenario_recompensation(cfg),
        topology=TopologySpec(capacity_mib_s=capacity_mib_s),
        policy=_policy(mechanism, interval_s, overhead_s, variant),
    )


@REGISTRY.register(
    "multiost",
    description="decentralized control: files spread over several OSTs (§II-B)",
)
def _multiost(
    n_osts: int = 4,
    stripe_count: int = 2,
    capacity_mib_s: float = 256.0,
    file_mib: float = 512.0,
    procs: int = 8,
    science_nodes: int = 6,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
    duration: float = 3.0,
) -> ScenarioSpec:
    jobs = (
        JobSpec(
            job_id="simulation",
            nodes=science_nodes,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(int(file_mib * MIB)))
                for _ in range(procs)
            ),
        ),
        JobSpec(
            job_id="hog",
            nodes=1,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(int(file_mib * MIB)))
                for _ in range(procs)
            ),
        ),
    )
    return ScenarioSpec(
        name="multiost",
        jobs=jobs,
        topology=TopologySpec(
            n_osts=n_osts,
            stripe_count=stripe_count,
            capacity_mib_s=capacity_mib_s,
        ),
        policy=PolicySpec(mechanism=mechanism, interval_s=interval_s),
        run=RunSpec(duration_s=duration or None),
        description=(
            f"{science_nodes}-node job striped over {n_osts} OSTs "
            f"(stripe_count={stripe_count}) vs a 1-node hog; one independent "
            "controller per OST"
        ),
    )


@REGISTRY.register(
    "burst-storm",
    description="NEW: seeded many-tenant storm of mixed-priority bursts",
)
def _burst_storm(
    n_jobs: int = 6,
    seed: int = 0,
    duration_s: float = 40.0,
    with_hog: bool = True,
    data_scale: float = BENCH_SCALE,
    time_scale: float = BENCH_SCALE,
    capacity_mib_s: float = 1024.0,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
) -> ScenarioSpec:
    cfg = _cfg(data_scale, time_scale, capacity_mib_s=capacity_mib_s)
    scenario = scenario_burst_storm(
        cfg, n_jobs=n_jobs, seed=seed, duration_s=duration_s, with_hog=with_hog
    )
    return from_scenario(
        scenario,
        topology=TopologySpec(capacity_mib_s=capacity_mib_s),
        policy=PolicySpec(mechanism=mechanism, interval_s=interval_s),
        run=RunSpec(duration_s=scenario.duration_s, seed=seed),
    )


@REGISTRY.register(
    "elastic-churn",
    description="NEW: waves of jobs arriving and departing (elastic tenancy)",
)
def _elastic_churn(
    waves: int = 3,
    jobs_per_wave: int = 2,
    wave_gap_s: float = 8.0,
    file_mib: float = 192.0,
    seed: int = 0,
    data_scale: float = BENCH_SCALE,
    time_scale: float = BENCH_SCALE,
    capacity_mib_s: float = 1024.0,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
) -> ScenarioSpec:
    cfg = _cfg(data_scale, time_scale, capacity_mib_s=capacity_mib_s)
    scenario = scenario_elastic_churn(
        cfg,
        waves=waves,
        jobs_per_wave=jobs_per_wave,
        wave_gap_s=wave_gap_s,
        file_mib=file_mib,
        seed=seed,
    )
    return from_scenario(
        scenario,
        topology=TopologySpec(capacity_mib_s=capacity_mib_s),
        policy=PolicySpec(mechanism=mechanism, interval_s=interval_s),
        run=RunSpec(duration_s=None, seed=seed),
    )


@REGISTRY.register(
    "hetero-osts",
    description="NEW: heterogeneous OST capacities (fast SSD + slow HDD tiers)",
)
def _hetero_osts(
    capacities: str = "1024,512,256,128",
    stripe_count: int = 1,
    file_mib: float = 96.0,
    procs: int = 4,
    science_nodes: int = 4,
    mechanism: str = "adaptbf",
    interval_s: float = 0.1,
    duration: float = 4.0,
) -> ScenarioSpec:
    """Mixed-speed storage tiers, one independent controller per tier.

    The pre-pipeline builder only knew a single scalar capacity, so a
    cluster mixing SSD- and HDD-class OSTs was inexpressible.  Files are
    placed round-robin across the tiers; each tier's controller enforces
    priorities against its *own* token rate.
    """
    caps = tuple(float(c) for c in str(capacities).split(",") if c.strip())
    jobs = (
        JobSpec(
            job_id="science",
            nodes=science_nodes,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(int(file_mib * MIB)))
                for _ in range(procs)
            ),
        ),
        JobSpec(
            job_id="hog",
            nodes=1,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(int(file_mib * MIB)))
                for _ in range(procs)
            ),
        ),
    )
    return ScenarioSpec(
        name="hetero-osts",
        jobs=jobs,
        topology=TopologySpec(
            n_osts=len(caps),
            ost_capacities_mib_s=caps,
            stripe_count=stripe_count,
        ),
        policy=PolicySpec(mechanism=mechanism, interval_s=interval_s),
        run=RunSpec(duration_s=duration or None),
        description=(
            f"{len(caps)} OSTs at {capacities} MiB/s; science vs hog placed "
            "round-robin across unequal tiers"
        ),
    )
