"""The pipeline's execution entry point: ``run_scenario(spec) → RunResult``.

One call materializes a :class:`~repro.scenarios.spec.ScenarioSpec` through
the cluster builder, executes it, and returns a :class:`RunResult` — the
:class:`~repro.cluster.experiment.ExperimentResult` measurement set plus
the spec that produced it, so downstream consumers (reports, CSV export,
sweeps) never need out-of-band context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.cluster.builder import build
from repro.cluster.experiment import ExperimentResult, execute
from repro.scenarios.spec import ScenarioSpec

__all__ = ["PAPER_MECHANISMS", "RunResult", "run_scenario", "run_mechanisms"]

#: The paper's §IV-C comparison set, in presentation order.  Any name
#: registered in :data:`repro.core.mechanism.MECHANISMS` is runnable.
PAPER_MECHANISMS = ("none", "static", "adaptbf")


@dataclass
class RunResult(ExperimentResult):
    """An :class:`ExperimentResult` that remembers the spec it came from."""

    spec: Optional[ScenarioSpec] = None

    @classmethod
    def from_result(cls, result: ExperimentResult, spec: ScenarioSpec) -> "RunResult":
        return cls(spec=spec, **vars(result))


def run_scenario(spec: ScenarioSpec, algorithm_factory=None) -> RunResult:
    """Build and execute ``spec``; the single pipeline entry point.

    ``algorithm_factory`` optionally overrides the AdapTBF algorithm
    construction (see :func:`~repro.cluster.builder.build`).
    """
    cluster = build(spec, algorithm_factory=algorithm_factory)
    return RunResult.from_result(execute(cluster), spec)


def run_mechanisms(
    spec: ScenarioSpec,
    mechanisms: Sequence[str] = PAPER_MECHANISMS,
    algorithm_factory=None,
) -> Dict[str, RunResult]:
    """Run ``spec`` once per mechanism with otherwise equal hardware.

    ``mechanisms`` are registry names (default: the paper's §IV-C trio);
    results are keyed by the normalized name — the comparison every figure
    of the paper is built from, now open to any registered contender.
    """
    results: Dict[str, RunResult] = {}
    for mechanism in mechanisms:
        result = run_scenario(
            spec.with_policy(mechanism=mechanism),
            algorithm_factory=algorithm_factory,
        )
        results[result.spec.policy.mechanism] = result
    return results
