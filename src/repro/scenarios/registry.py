"""Named scenario registry behind the ``run`` CLI.

The generic factory machinery lives in :mod:`repro.registry` (shared with
campaigns and bandwidth mechanisms); this module specializes it for
:class:`~repro.scenarios.spec.ScenarioSpec` factories and hosts the
process-wide default :data:`REGISTRY`::

    @REGISTRY.register("quickstart", description="2 jobs, 1 OST")
    def _quickstart(file_mib: float = 256.0, ...) -> ScenarioSpec: ...

    spec = REGISTRY.build("quickstart", file_mib=64)

``FactoryRegistry`` and ``RegisteredFactory`` are re-exported here for
callers that predate the shared module.
"""

from __future__ import annotations

from typing import List

from repro.registry import FactoryRegistry, RegisteredFactory
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "RegisteredFactory",
    "RegisteredScenario",
    "FactoryRegistry",
    "ScenarioRegistry",
    "REGISTRY",
]

#: Pre-campaign name for :class:`RegisteredFactory`.
RegisteredScenario = RegisteredFactory


class ScenarioRegistry(FactoryRegistry):
    """Name → scenario-factory mapping behind the ``run`` CLI."""

    kind = "scenario"

    def build(self, name: str, **overrides) -> ScenarioSpec:
        """Materialize the named scenario's spec with parameter overrides."""
        return self.get(name).build(**overrides)

    def _describe_built(self, entry: RegisteredFactory) -> List[str]:
        return ["", entry.build().describe()]


#: The process-wide default registry; built-in scenarios self-register here
#: on ``import repro.scenarios``.
REGISTRY = ScenarioRegistry()
