"""The declarative scenario specification family.

A :class:`ScenarioSpec` is a frozen, validated description of one complete
experiment — *what* to simulate, decoupled from the imperative machinery
that materializes and runs it:

* :class:`TopologySpec` — the storage cluster: OST/OSS counts, per-OST link
  rates (uniform or heterogeneous), striping, RPC geometry;
* the job mix — a tuple of :class:`~repro.workloads.spec.JobSpec` (arrival
  patterns, node counts and hence priorities, process counts);
* :class:`PolicySpec` — the bandwidth-control mechanism under test,
  resolved by name from the :data:`~repro.core.mechanism.MECHANISMS`
  registry (AdapTBF, the paper's baselines, or any registered contender)
  plus its knobs (interval, overhead, variant, mechanism parameters);
* :class:`RunSpec` — how to execute and what to measure (duration cap,
  seed, metrics to collect).

Specs flow through one pipeline::

    ScenarioSpec --build()--> ClusterTopology --run_scenario()--> RunResult

(:func:`repro.cluster.builder.build` and
:func:`repro.scenarios.runner.run_scenario`), and are registered by name in
the :class:`~repro.scenarios.registry.ScenarioRegistry` so every workload —
the paper's figures and anything new — is reachable from
``python -m repro.experiments run <name>``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.ablation import VARIANTS
from repro.core.mechanism import MECHANISMS, BandwidthMechanism
from repro.faults.spec import FaultSpec
from repro.registry import normalize_name
from repro.workloads.spec import JobSpec, validate_jobs

__all__ = [
    "MIB",
    "TopologySpec",
    "PolicySpec",
    "RunSpec",
    "ScenarioSpec",
    "METRIC_NAMES",
    "from_scenario",
]

MIB = 1 << 20

#: Metric groups a run can collect; see :class:`RunSpec`.
METRIC_NAMES = ("summary", "timeline", "history", "utilization")


@dataclass(frozen=True)
class TopologySpec:
    """The simulated storage cluster.

    Parameters
    ----------
    n_osts:
        Number of (OSS, OST) pairs; each runs its own NRS policy and (under
        AdapTBF) its own independent controller — the paper's decentralized
        deployment (§II-B).
    capacity_mib_s:
        Per-OST disk bandwidth in MiB/s (default ≈ the paper's SSD OST).
    ost_capacities_mib_s:
        Optional per-OST capacities for a *heterogeneous* cluster (length
        must equal ``n_osts``); overrides ``capacity_mib_s``.
    stripe_count:
        OSTs per file (Lustre layout).  1 places each process's file wholly
        on one OST, assigned round-robin; larger values stripe each file's
        chunks across that many OSTs.
    rpc_size:
        Bulk RPC payload; 1 token = 1 RPC of this size.
    io_threads:
        OSS I/O thread count (paper node: 16 cores).
    net_latency_s:
        One-way client↔OSS latency.
    """

    n_osts: int = 1
    capacity_mib_s: float = 1024.0
    ost_capacities_mib_s: Optional[Tuple[float, ...]] = None
    stripe_count: int = 1
    rpc_size: int = MIB
    io_threads: int = 16
    net_latency_s: float = 100e-6

    def __post_init__(self) -> None:
        if self.n_osts <= 0:
            raise ValueError("n_osts must be positive")
        if self.capacity_mib_s <= 0:
            raise ValueError("capacity must be positive")
        if self.ost_capacities_mib_s is not None:
            caps = tuple(float(c) for c in self.ost_capacities_mib_s)
            object.__setattr__(self, "ost_capacities_mib_s", caps)
            if len(caps) != self.n_osts:
                raise ValueError(
                    f"ost_capacities_mib_s must list {self.n_osts} capacities,"
                    f" got {len(caps)}"
                )
            if any(c <= 0 for c in caps):
                raise ValueError("all OST capacities must be positive")
        if self.rpc_size <= 0:
            raise ValueError("rpc_size must be positive")
        if self.io_threads <= 0:
            raise ValueError("io_threads must be positive")
        if self.net_latency_s < 0:
            raise ValueError("net_latency_s must be >= 0")
        if not (1 <= self.stripe_count <= self.n_osts):
            raise ValueError(
                f"stripe_count must be in [1, n_osts], got {self.stripe_count}"
            )

    @property
    def capacities_mib_s(self) -> Tuple[float, ...]:
        """Per-OST capacities, uniform unless overridden."""
        if self.ost_capacities_mib_s is not None:
            return self.ost_capacities_mib_s
        return (self.capacity_mib_s,) * self.n_osts

    @property
    def total_capacity_mib_s(self) -> float:
        return sum(self.capacities_mib_s)

    def max_token_rate(self, ost_index: int = 0) -> float:
        """``T_i``: tokens/second OST ``ost_index`` can actually serve."""
        return self.capacities_mib_s[ost_index] * MIB / self.rpc_size


@dataclass(frozen=True)
class PolicySpec:
    """The bandwidth-control policy and its knobs.

    Parameters
    ----------
    mechanism:
        Name of a mechanism registered in
        :data:`repro.core.mechanism.MECHANISMS` — ``"none"`` (FIFO, no
        control), ``"static"`` (fixed TBF shares), ``"adaptbf"`` (the
        paper's framework), ``"adaptbf-ewma"``, ``"pid"``, or anything
        registered at runtime.  Validated (and normalized) at
        construction; resolved to a live
        :class:`~repro.core.mechanism.BandwidthMechanism` by
        :meth:`resolve_mechanism`.
    mechanism_params:
        Mechanism-specific factory overrides (e.g. ``{"alpha": 0.2}`` for
        ``adaptbf-ewma`` or ``{"kp": 0.8}`` for ``pid``).  Keys are
        validated against the registered factory's parameter schema;
        stored canonically as a sorted tuple of pairs so specs stay
        frozen, hashable and picklable.
    interval_s:
        AdapTBF observation period Δt (paper default 100 ms; ignored by
        the baselines).
    overhead_s:
        Simulated per-round AdapTBF overhead (§IV-G measured ~25 ms; 0
        models the paper's proposed in-Lustre integration).
    bucket_depth:
        TBF bucket depth for all rules.
    variant:
        AdapTBF algorithm variant from :data:`repro.core.ablation.VARIANTS`
        ("full" = the paper's design).
    keep_history:
        Controller history retention: ``True`` keeps every allocation round
        (the default — Fig. 7 is plotted from it), ``False`` keeps none,
        and an ``int`` caps retention to the most recent N rounds (bounded
        memory for long runs).
    """

    mechanism: str = "adaptbf"
    mechanism_params: Mapping[str, Any] = ()
    interval_s: float = 0.1
    overhead_s: float = 0.0
    bucket_depth: float = 3.0
    variant: str = "full"
    keep_history: Union[bool, int] = True

    def __post_init__(self) -> None:
        name = normalize_name(
            getattr(self.mechanism, "value", self.mechanism)
        )
        try:
            entry = MECHANISMS.get(name)
        except KeyError:
            raise ValueError(
                f"unknown mechanism {self.mechanism!r}; registered: "
                f"{MECHANISMS.names()}"
            ) from None
        object.__setattr__(self, "mechanism", entry.name)
        params = self.mechanism_params
        if isinstance(params, Mapping):
            items = params.items()
        else:
            items = tuple(params)
        canonical = tuple(sorted((str(k), v) for k, v in items))
        unknown = {k for k, _ in canonical} - set(entry.params)
        if unknown:
            raise ValueError(
                f"mechanism {entry.name!r} has no parameter(s) "
                f"{sorted(unknown)}; accepted: {sorted(entry.params)}"
            )
        object.__setattr__(self, "mechanism_params", canonical)
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.overhead_s < 0:
            raise ValueError("overhead_s must be >= 0")
        if self.overhead_s >= self.interval_s:
            raise ValueError(
                "overhead_s must be smaller than interval_s "
                f"(got {self.overhead_s} >= {self.interval_s})"
            )
        if self.bucket_depth <= 0:
            raise ValueError("bucket_depth must be positive")
        if self.variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; options: {sorted(VARIANTS)}"
            )
        if not isinstance(self.keep_history, (bool, int)):
            raise ValueError("keep_history must be a bool or an int cap")
        if self.keep_history is not True and self.keep_history is not False:
            if self.keep_history <= 0:
                raise ValueError("keep_history cap must be positive")

    # -- mechanism resolution ----------------------------------------------
    @property
    def mechanism_kwargs(self) -> Dict[str, Any]:
        """The frozen parameter pairs as a plain factory-kwargs dict."""
        return dict(self.mechanism_params)

    def resolve_mechanism(self) -> "BandwidthMechanism":
        """Resolve the named mechanism with this policy's overrides."""
        return MECHANISMS.build(self.mechanism, **self.mechanism_kwargs)


@dataclass(frozen=True)
class RunSpec:
    """Execution and measurement parameters.

    Parameters
    ----------
    duration_s:
        Cap on simulated time; ``None`` runs until every client process
        finishes (the §IV-D style).
    bin_s:
        Timeline bin width; ``None`` follows the policy's ``interval_s``
        (the paper bins at its 100 ms observation granularity).
    seed:
        Seed for any randomized workload construction (e.g. the burst-storm
        scenario); the simulation itself is deterministic given the spec.
    metrics:
        Which metric groups to collect: any subset of
        ``("summary", "timeline", "history", "utilization")``.  Dropping
        ``timeline`` (which ``summary`` implies) skips per-RPC recording on
        the completion stream — useful for huge parameter sweeps.
    backend:
        Kernel backend the environment runs on (a name registered in
        :mod:`repro.sim.backends` — ``"heap"`` or ``"array"``).  A pure
        performance knob: every backend dispatches the identical
        ``(time, priority, seq)`` event stream, so results are
        bit-identical across backends (enforced by
        :mod:`repro.sim.tracediff` and the parity tests).
    """

    duration_s: Optional[float] = None
    bin_s: Optional[float] = None
    seed: int = 0
    metrics: Tuple[str, ...] = METRIC_NAMES
    backend: str = "heap"

    def __post_init__(self) -> None:
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("duration_s must be positive (or None)")
        if self.bin_s is not None and self.bin_s <= 0:
            raise ValueError("bin_s must be positive (or None)")
        metrics = tuple(self.metrics)
        object.__setattr__(self, "metrics", metrics)
        unknown = set(metrics) - set(METRIC_NAMES)
        if unknown:
            raise ValueError(
                f"unknown metrics {sorted(unknown)}; options: {METRIC_NAMES}"
            )
        from repro.sim.backends import available_backends

        if self.backend not in available_backends():
            raise ValueError(
                f"unknown kernel backend {self.backend!r}; available: "
                f"{', '.join(available_backends())}"
            )

    def wants(self, metric: str) -> bool:
        if metric == "timeline":
            # A bandwidth summary is computed from the timeline.
            return "timeline" in self.metrics or "summary" in self.metrics
        return metric in self.metrics


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, validated experiment description.

    ``workload``/``workload_params`` record a workload-axis override
    (:meth:`with_workload`): when set, every process's pattern was rebuilt
    from that :data:`repro.workloads.registry.WORKLOADS` entry, and the
    pair is kept canonical (sorted tuple of items) so specs stay frozen,
    hashable and picklable for ``--jobs N`` campaign fan-out.
    """

    name: str
    jobs: Tuple[JobSpec, ...]
    topology: TopologySpec = field(default_factory=TopologySpec)
    policy: PolicySpec = field(default_factory=PolicySpec)
    run: RunSpec = field(default_factory=RunSpec)
    description: str = ""
    #: Registry name of the workload the job mix was rebuilt from, or ""
    #: when the jobs carry their scenario-native patterns.
    workload: str = ""
    #: Canonical (sorted tuple) factory overrides of that workload.
    workload_params: Mapping[str, Any] = ()
    #: Scheduled disturbances (:class:`~repro.faults.spec.FaultSpec`),
    #: installed by the cluster builder after the cluster is assembled.
    #: Frozen data only — the live injectors never live on the spec.
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        object.__setattr__(self, "jobs", tuple(self.jobs))
        validate_jobs(list(self.jobs))
        params = self.workload_params
        items = params.items() if isinstance(params, Mapping) else tuple(params)
        canonical = tuple(sorted((str(k), v) for k, v in items))
        object.__setattr__(self, "workload_params", canonical)
        if self.workload:
            from repro.workloads.registry import WORKLOADS

            try:
                entry = WORKLOADS.get(self.workload)
            except KeyError:
                raise ValueError(
                    f"unknown workload {self.workload!r}; registered: "
                    f"{WORKLOADS.names()}"
                ) from None
            object.__setattr__(self, "workload", entry.name)
            unknown = {k for k, _ in canonical} - set(entry.params)
            if unknown:
                raise ValueError(
                    f"workload {entry.name!r} has no parameter(s) "
                    f"{sorted(unknown)}; accepted: {sorted(entry.params)}"
                )
        elif canonical:
            raise ValueError("workload_params given without a workload name")
        faults = tuple(self.faults)
        for fault in faults:
            if not isinstance(fault, FaultSpec):
                raise ValueError(
                    f"faults must be FaultSpec instances, got {fault!r}; "
                    "use with_fault(name, params)"
                )
        object.__setattr__(self, "faults", faults)

    # -- derived views -----------------------------------------------------
    @property
    def job_ids(self) -> List[str]:
        return [job.job_id for job in self.jobs]

    @property
    def nodes(self) -> Dict[str, int]:
        return {job.job_id: job.nodes for job in self.jobs}

    @property
    def bin_s(self) -> float:
        """Resolved timeline bin width."""
        return self.run.bin_s if self.run.bin_s is not None else self.policy.interval_s

    # -- functional updates ------------------------------------------------
    def with_policy(self, **changes) -> "ScenarioSpec":
        """Copy with policy fields replaced (e.g. ``mechanism="static"``).

        Switching ``mechanism`` without explicitly passing
        ``mechanism_params`` resets the params: they belong to the outgoing
        mechanism's factory schema, and would otherwise fail validation (or
        silently mean something else) under the incoming one.
        """
        if (
            "mechanism" in changes
            and "mechanism_params" not in changes
            and normalize_name(
                getattr(changes["mechanism"], "value", changes["mechanism"])
            )
            != self.policy.mechanism
        ):
            changes["mechanism_params"] = ()
        return dataclasses.replace(
            self, policy=dataclasses.replace(self.policy, **changes)
        )

    def with_topology(self, **changes) -> "ScenarioSpec":
        """Copy with topology fields replaced."""
        return dataclasses.replace(
            self, topology=dataclasses.replace(self.topology, **changes)
        )

    def with_run(self, **changes) -> "ScenarioSpec":
        """Copy with run fields replaced (e.g. ``duration_s=2.0``)."""
        return dataclasses.replace(
            self, run=dataclasses.replace(self.run, **changes)
        )

    def with_workload(
        self, workload: str, workload_params: Mapping[str, Any] = ()
    ) -> "ScenarioSpec":
        """Copy with every process's pattern rebuilt from a registered workload.

        The scenario's job *structure* — job ids, node counts (hence
        priorities), process counts and windows — is preserved; only what
        each process *does* is swapped for the named
        :data:`~repro.workloads.registry.WORKLOADS` pattern.  This is what
        ``run <scenario> --workload NAME`` and the reserved ``workload``
        campaign axis do, making any scenario's contention structure
        reusable under any demand shape.

        If the workload factory takes a ``seed`` that ``workload_params``
        does not pin, the run's seed is passed — campaign cells' derived
        seeds reach pattern randomness with no extra plumbing.  One
        pattern instance is shared by all processes; patterns are
        stateless and seeded ones derive independent per-client RNG
        substreams, so sharing is sound.
        """
        from repro.workloads.registry import WORKLOADS

        try:
            entry = WORKLOADS.get(workload)
        except KeyError:
            raise ValueError(
                f"unknown workload {workload!r}; registered: "
                f"{WORKLOADS.names()}"
            ) from None
        params = (
            dict(workload_params)
            if isinstance(workload_params, Mapping)
            else dict(tuple(workload_params))
        )
        kwargs = dict(params)
        if "seed" in entry.params and "seed" not in kwargs:
            kwargs["seed"] = self.run.seed
        pattern = entry.build(**kwargs)
        jobs = tuple(
            dataclasses.replace(
                job,
                processes=tuple(
                    dataclasses.replace(proc, pattern=pattern)
                    for proc in job.processes
                ),
            )
            for job in self.jobs
        )
        return dataclasses.replace(
            self, jobs=jobs, workload=entry.name, workload_params=params
        )

    def with_fault(
        self, fault: str, fault_params: Mapping[str, Any] = ()
    ) -> "ScenarioSpec":
        """Copy with a scheduled disturbance appended to the fault axis.

        ``fault`` names an injector registered in
        :data:`~repro.faults.FAULTS`; parameters are validated against its
        factory schema at spec time, so a typo fails here and not mid-run.
        Faults compose — call repeatedly to layer an OST crash over client
        churn.  This is what ``run <scenario> --fault NAME`` and the
        reserved ``fault``/``fault_params`` campaign cell parameters do.

        If the injector factory takes a ``seed`` that ``fault_params``
        does not pin, the run's seed is passed — campaign cells' derived
        seeds reach fault randomness (churn victim selection) with no
        extra plumbing, mirroring :meth:`with_workload`.
        """
        from repro.faults import FAULTS

        try:
            entry = FAULTS.get(fault)
        except KeyError:
            raise ValueError(
                f"unknown fault {fault!r}; registered: {FAULTS.names()}"
            ) from None
        params = (
            dict(fault_params)
            if isinstance(fault_params, Mapping)
            else dict(tuple(fault_params))
        )
        if "seed" in entry.params and "seed" not in params:
            params["seed"] = self.run.seed
        return dataclasses.replace(
            self, faults=self.faults + (FaultSpec(entry.name, params),)
        )

    # -- description -------------------------------------------------------
    def describe(self) -> str:
        """Human-readable multi-line summary of the spec."""
        topo = self.topology
        if topo.ost_capacities_mib_s is not None:
            caps = "/".join(f"{c:g}" for c in topo.capacities_mib_s) + " MiB/s"
        else:
            caps = f"{topo.capacity_mib_s:g} MiB/s each"
        lines = [
            f"scenario: {self.name}",
        ]
        if self.description:
            lines.append(f"  {self.description}")
        if self.workload:
            wl_params = ", ".join(
                f"{k}={v!r}" for k, v in self.workload_params
            )
            lines.append(
                f"workload: {self.workload}"
                + (f" [{wl_params}]" if wl_params else "")
            )
        for fault in self.faults:
            f_params = ", ".join(f"{k}={v!r}" for k, v in fault.params)
            lines.append(
                f"fault:    {fault.name}"
                + (f" [{f_params}]" if f_params else "")
            )
        mech_params = ""
        if self.policy.mechanism_params:
            mech_params = (
                "["
                + ", ".join(
                    f"{k}={v!r}" for k, v in self.policy.mechanism_params
                )
                + "] "
            )
        lines += [
            f"topology: {topo.n_osts} OST(s) @ {caps}, "
            f"stripe_count={topo.stripe_count}, "
            f"rpc_size={topo.rpc_size // MIB} MiB",
            f"policy:   {self.policy.mechanism} {mech_params}"
            f"(interval={self.policy.interval_s:g}s, "
            f"overhead={self.policy.overhead_s:g}s, "
            f"variant={self.policy.variant})",
            f"run:      duration="
            + (
                f"{self.run.duration_s:g}s"
                if self.run.duration_s is not None
                else "until-complete"
            )
            + f", bin={self.bin_s:g}s, seed={self.run.seed}, "
            f"metrics={','.join(self.run.metrics)}",
            f"jobs ({len(self.jobs)}):",
        ]
        total_nodes = sum(job.nodes for job in self.jobs)
        for job in self.jobs:
            share = 100.0 * job.nodes / total_nodes
            hint = job.total_bytes_hint
            volume = f"{hint / MIB:.0f} MiB" if hint is not None else "open-ended"
            lines.append(
                f"  {job.job_id}: {job.nodes} node(s) ({share:.0f}% priority), "
                f"{len(job.processes)} process(es), {volume}"
            )
        return "\n".join(lines)


def from_scenario(
    scenario,
    topology: Optional[TopologySpec] = None,
    policy: Optional[PolicySpec] = None,
    run: Optional[RunSpec] = None,
) -> ScenarioSpec:
    """Lift a legacy :class:`~repro.workloads.scenarios.Scenario` (a bare
    job mix + duration) into a full :class:`ScenarioSpec`.

    ``run`` defaults to the scenario's own duration cap; topology and
    policy default to the standard single-OST AdapTBF setup.
    """
    return ScenarioSpec(
        name=scenario.name,
        jobs=tuple(scenario.jobs),
        topology=topology if topology is not None else TopologySpec(),
        policy=policy if policy is not None else PolicySpec(),
        run=run if run is not None else RunSpec(duration_s=scenario.duration_s),
        description=scenario.description,
    )
