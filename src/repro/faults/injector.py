"""The pluggable fault-injection API: handle, injector protocol, registry.

Faults are the fifth registry axis beside scenarios, campaigns, mechanisms
and workloads.  A :class:`FaultInjector` describes *one scheduled
disturbance* of a built cluster — an OST crash/recovery cycle, a degraded
(straggler) OST, network latency inflation or a partition window, client
join/leave churn — and the :data:`FAULTS` registry resolves injectors by
name with ``--fault-param``-style overrides, exactly like mechanisms.
Adding a disturbance is one registration — no builder, spec or CLI edits::

    @FAULTS.register("my-fault", description="...")
    def _my_fault(start_s: float = 1.0) -> FaultInjector: ...

    spec.with_fault("my-fault", {"start_s": 0.5})

Lifecycle
---------
The cluster builder calls :meth:`FaultInjector.install` once per built
cluster, after every OSS/OST pair, the network and all clients exist;
``install`` spawns the injector's *driver process* — an ordinary simulation
process that sleeps to each scheduled transition and mutates the cluster
through the same event machinery everything else uses, so injections land
at deterministic ``(time, priority, seq)`` positions and the trace stays
bit-identical across kernel backends.  ``install`` returns a
:class:`FaultHandle` exposing the disturbance windows (known statically
from the parameters — chaos metrics bucket bytes by them without any
callback from the injector) and injection counters, and
:meth:`FaultHandle.teardown` stops the driver.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    TYPE_CHECKING,
    Any,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.registry import FactoryRegistry, RegisteredFactory

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.builder import ClusterTopology
    from repro.sim.engine import Environment
    from repro.sim.process import Process

__all__ = ["FaultHandle", "FaultInjector", "FaultRegistry", "FAULTS"]


class FaultHandle:
    """One installed fault: its driver process, windows and counters.

    Parameters
    ----------
    injector:
        The resolved injector this handle belongs to.
    windows:
        Disturbance windows as ``(start_s, end_s)`` pairs, computed
        statically from the injector's parameters.  Chaos metrics split
        completion streams into before/during/after buckets by these, so
        they must not depend on runtime state.
    """

    def __init__(
        self,
        injector: "FaultInjector",
        windows: Tuple[Tuple[float, float], ...],
    ) -> None:
        self.injector = injector
        self.windows = tuple((float(a), float(b)) for a, b in windows)
        #: Fault transitions executed so far (crash, recover, rescale, ...).
        self.injections = 0
        #: The driver process; set by the injector's ``install``.
        self.process: Optional["Process"] = None
        self._stopped = False

    @property
    def name(self) -> str:
        return self.injector.name

    @property
    def stopped(self) -> bool:
        return self._stopped

    def teardown(self) -> None:
        """Stop the driver; it exits at its next scheduled transition."""
        self._stopped = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FaultHandle {self.name} windows={self.windows} "
            f"injections={self.injections}>"
        )


class FaultInjector(ABC):
    """A scheduled cluster disturbance, resolvable by name from the registry.

    Instances are cheap parameter holders: runtime state (the driver
    process, counters) lives in the :class:`FaultHandle` each
    :meth:`install` returns, so one injector instance could disturb several
    clusters without cross-talk.
    """

    #: Registry name; stamped by :meth:`FaultRegistry.build`.
    name: str = "?"
    #: Resolved factory parameters; stamped by :meth:`FaultRegistry.build`.
    params: Mapping[str, Any] = {}

    @abstractmethod
    def install(
        self, env: "Environment", cluster: "ClusterTopology"
    ) -> FaultHandle:
        """Attach the fault to a built cluster and return its handle.

        Called by :func:`repro.cluster.builder.build` after OSTs, OSSes,
        the network and every client exist; implementations spawn their
        driver process here and must mutate the cluster only through the
        ordinary event machinery (timeouts, ``Event.fail``, lazy
        cancellation) so the dispatch order stays deterministic.
        """

    def windows(self) -> Tuple[Tuple[float, float], ...]:
        """Disturbance windows from the parameters alone (default: none)."""
        return ()

    def describe(self) -> str:
        """Human-readable summary: what the fault does and its knobs."""
        import inspect

        doc = (inspect.getdoc(type(self)) or "").split("\n\n")[0]
        lines = [f"fault: {self.name}"]
        if doc:
            lines.append(f"  {doc}")
        windows = self.windows()
        if windows:
            rendered = ", ".join(f"[{a:g}s, {b:g}s)" for a, b in windows)
            lines.append(f"disturbance window(s): {rendered}")
        if self.params:
            lines.append("resolved parameters:")
            for key in sorted(self.params):
                lines.append(f"  {key} = {self.params[key]!r}")
        else:
            lines.append("resolved parameters: (none)")
        return "\n".join(lines)


class FaultRegistry(FactoryRegistry):
    """Name → injector-factory mapping behind ``--fault`` everywhere."""

    kind = "fault"
    override_flag = "--fault-param"

    def build(self, name: str, **overrides) -> FaultInjector:
        """Resolve an injector instance, stamping its name and parameters."""
        entry = self.get(name)
        injector = entry.build(**overrides)
        injector.name = entry.name
        resolved = dict(entry.params)
        resolved.update(overrides)
        injector.params = resolved
        return injector

    def _describe_built(self, entry: RegisteredFactory) -> List[str]:
        return ["", self.build(entry.name).describe()]


#: The process-wide default registry; built-in faults self-register on
#: ``import repro.faults``.
FAULTS = FaultRegistry()
