"""The frozen fault declaration carried by a :class:`ScenarioSpec`.

A :class:`FaultSpec` is pure data — a registry name plus canonicalized
factory overrides — mirroring how the scenario spec records its workload
axis.  Specs stay frozen, hashable and picklable so campaign cells carrying
faults survive ``--jobs N`` fan-out and JSON round-trips unchanged; the
live :class:`~repro.faults.injector.FaultInjector` is only materialized by
the cluster builder, never stored on the spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

__all__ = ["FaultSpec"]


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: registry name + canonical parameter overrides.

    Parameters
    ----------
    name:
        Name of an injector registered in :data:`repro.faults.FAULTS`.
    params:
        Factory overrides, stored canonically as a sorted tuple of
        ``(key, value)`` pairs (any mapping or pair-iterable is accepted
        and canonicalized).  Validation against the registered factory's
        parameter schema happens here, so an invalid fault fails at spec
        construction — not mid-run when the injector fires.
    """

    name: str
    params: Mapping[str, Any] = ()

    def __post_init__(self) -> None:
        from repro.faults.injector import FAULTS

        try:
            entry = FAULTS.get(self.name)
        except KeyError:
            raise ValueError(
                f"unknown fault {self.name!r}; registered: {FAULTS.names()}"
            ) from None
        object.__setattr__(self, "name", entry.name)
        params = self.params
        items = params.items() if isinstance(params, Mapping) else tuple(params)
        canonical = tuple(sorted((str(k), v) for k, v in items))
        unknown = {k for k, _ in canonical} - set(entry.params)
        if unknown:
            raise ValueError(
                f"fault {entry.name!r} has no parameter(s) "
                f"{sorted(unknown)}; accepted: {sorted(entry.params)}"
            )
        object.__setattr__(self, "params", canonical)
        # Injectors are cheap parameter holders: build one and discard it so
        # value errors (negative start_s, zero factor, ...) also surface at
        # spec construction, with the factory's own message.
        FAULTS.build(entry.name, **dict(canonical))

    @property
    def kwargs(self) -> Dict[str, Any]:
        """The frozen parameter pairs as a plain factory-kwargs dict."""
        return dict(self.params)

    def build(self):
        """Materialize the live injector (name/params stamped by the registry)."""
        from repro.faults.injector import FAULTS

        return FAULTS.build(self.name, **self.kwargs)
