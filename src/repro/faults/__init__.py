"""Faults: the fifth registry axis — scheduled cluster disturbances.

``import repro.faults`` registers the built-in injectors (``ost-crash``,
``ost-degrade``, ``net-delay``, ``client-churn``) in :data:`FAULTS`; specs
carry them as frozen :class:`FaultSpec` entries
(:meth:`~repro.scenarios.spec.ScenarioSpec.with_fault`), the cluster
builder installs them after the cluster is assembled, and campaigns sweep
them through the reserved ``fault`` / ``fault_params`` cell parameters.
"""

from repro.faults import builtin as _builtin  # noqa: F401  (self-registration)
from repro.faults.builtin import (
    ClientChurnInjector,
    NetDelayInjector,
    OstCrashInjector,
    OstDegradeInjector,
)
from repro.faults.injector import (
    FAULTS,
    FaultHandle,
    FaultInjector,
    FaultRegistry,
)
from repro.faults.spec import FaultSpec

__all__ = [
    "FAULTS",
    "FaultHandle",
    "FaultInjector",
    "FaultRegistry",
    "FaultSpec",
    "OstCrashInjector",
    "OstDegradeInjector",
    "NetDelayInjector",
    "ClientChurnInjector",
]
