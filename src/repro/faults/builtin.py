"""Built-in fault injectors: the chaos axis the paper's premise implies.

AdapTBF's §II-B premise is that "the set of active applications on each
storage server is highly dynamic"; these injectors make that dynamism —
plus the hardware-side disturbances a production Lustre deployment sees —
a registry entry away from any scenario:

* ``ost-crash``   — an OST goes dark for a window: every in-flight transfer
  is failed through the lazy-cancellation machinery, the OSS requeues the
  aborted RPCs, and service resumes on recovery;
* ``ost-degrade`` — a straggler OST: mid-run capacity rescaling (RAID
  rebuild, media retirement, scrub contention);
* ``net-delay``   — hop latency inflation or a full partition window on the
  request path;
* ``client-churn`` — clients leave and join mid-run at swarm scale, the
  paper's dynamic-application-set premise made literal.

Every injector drives its transitions from an ordinary simulation process,
so injections are ordinary ``(time, priority, seq)`` events and traces stay
bit-identical across kernel backends and ``--jobs`` fan-out.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.faults.injector import FAULTS, FaultHandle, FaultInjector
from repro.sim.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.builder import ClusterTopology
    from repro.sim.engine import Environment

__all__ = [
    "OstCrashInjector",
    "OstDegradeInjector",
    "NetDelayInjector",
    "ClientChurnInjector",
]


class _WindowedInjector(FaultInjector):
    """Shared shape: one ``[start_s, start_s + duration_s)`` window."""

    def __init__(self, start_s: float, duration_s: float) -> None:
        if start_s < 0:
            raise ValueError(f"start_s must be >= 0, got {start_s}")
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        self.start_s = float(start_s)
        self.duration_s = float(duration_s)

    def windows(self) -> Tuple[Tuple[float, float], ...]:
        return ((self.start_s, self.start_s + self.duration_s),)


def _check_ost_index(cluster: "ClusterTopology", index: int) -> int:
    n = len(cluster.osts)
    if not 0 <= index < n:
        raise ValueError(
            f"fault targets OST index {index}, but the cluster has {n} OST(s)"
        )
    return index


class OstCrashInjector(_WindowedInjector):
    """An OST goes dark for a window, then comes back.

    At ``start_s`` the target OSS is crashed: every in-flight transfer on
    its OST fails (partial bytes discarded), the I/O threads catch the
    failure and requeue the aborted RPCs, and the thread pool parks on the
    recovery broadcast.  At ``start_s + duration_s`` the OSS recovers and
    drains the backlog.  No client ever observes a failure — retried RPCs
    complete late, which is exactly how a Lustre client rides out an OST
    failover.
    """

    def __init__(self, start_s: float, duration_s: float, ost: int) -> None:
        super().__init__(start_s, duration_s)
        self.ost = int(ost)

    def install(
        self, env: "Environment", cluster: "ClusterTopology"
    ) -> FaultHandle:
        index = _check_ost_index(cluster, self.ost)
        handle = FaultHandle(self, self.windows())
        handle.process = env.process(
            self._drive(env, cluster.osses[index], handle),
            name=f"fault.{self.name}",
        )
        return handle

    def _drive(self, env, oss, handle):
        yield env.timeout(self.start_s)
        if handle.stopped:
            return
        oss.crash()
        handle.injections += 1
        yield env.timeout(self.duration_s)
        # Recover even when torn down mid-window: an offline OSS would
        # otherwise park its thread pool forever.
        oss.recover()
        handle.injections += 1


class OstDegradeInjector(_WindowedInjector):
    """A straggler OST: capacity rescaled for a window, then restored.

    Models degraded media / RAID rebuild / scrub contention.  The
    controller does not observe capacity directly — it keeps allocating
    tokens against the configured ``T_i`` — so this window is precisely
    when tokens outrun the disk and the mechanisms' backlog handling shows.
    """

    def __init__(
        self, start_s: float, duration_s: float, ost: int, factor: float
    ) -> None:
        super().__init__(start_s, duration_s)
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.ost = int(ost)
        self.factor = float(factor)

    def install(
        self, env: "Environment", cluster: "ClusterTopology"
    ) -> FaultHandle:
        index = _check_ost_index(cluster, self.ost)
        handle = FaultHandle(self, self.windows())
        handle.process = env.process(
            self._drive(env, cluster.osts[index], handle),
            name=f"fault.{self.name}",
        )
        return handle

    def _drive(self, env, ost, handle):
        yield env.timeout(self.start_s)
        if handle.stopped:
            return
        healthy = ost.capacity_bps
        ost.set_capacity(healthy * self.factor)
        handle.injections += 1
        yield env.timeout(self.duration_s)
        ost.set_capacity(healthy)
        handle.injections += 1


class NetDelayInjector(_WindowedInjector):
    """Hop latency inflation — or a full partition — for a window.

    With ``partition=False`` the one-way latency becomes
    ``latency * factor + extra_s`` for the window.  With ``partition=True``
    the request path is severed instead: submissions queue inside the
    network and flood the OSSes in submission order when the window closes
    (in-flight replies still return — the reply path models the already-
    committed server work).
    """

    def __init__(
        self,
        start_s: float,
        duration_s: float,
        factor: float,
        extra_s: float,
        partition: bool,
    ) -> None:
        super().__init__(start_s, duration_s)
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        if extra_s < 0:
            raise ValueError(f"extra_s must be >= 0, got {extra_s}")
        self.factor = float(factor)
        self.extra_s = float(extra_s)
        self.partition = bool(partition)

    def install(
        self, env: "Environment", cluster: "ClusterTopology"
    ) -> FaultHandle:
        handle = FaultHandle(self, self.windows())
        handle.process = env.process(
            self._drive(env, cluster.network, handle),
            name=f"fault.{self.name}",
        )
        return handle

    def _drive(self, env, network, handle):
        yield env.timeout(self.start_s)
        if handle.stopped:
            return
        if self.partition:
            network.set_partitioned(True)
        else:
            healthy = network.latency_s
            network.set_latency(healthy * self.factor + self.extra_s)
        handle.injections += 1
        yield env.timeout(self.duration_s)
        if self.partition:
            network.set_partitioned(False)
        else:
            network.set_latency(healthy)
        handle.injections += 1


class ClientChurnInjector(_WindowedInjector):
    """Clients leave at the window start and join at its end.

    ``leaves`` running clients (drawn from a seeded
    :class:`~repro.sim.rng.RngStreams` substream, optionally restricted to
    one job) are terminated cleanly at ``start_s`` — their processes close,
    their queued RPCs still complete, nothing fails.  At the window end,
    ``joins`` fresh clients join the (possibly different) ``job``'s
    workload, cloned from that job's first process spec.  Joined clients
    are not part of the run's completion condition, so churn scenarios
    should cap ``duration_s`` in their run spec.
    """

    def __init__(
        self,
        start_s: float,
        duration_s: float,
        leaves: int,
        joins: int,
        job: str,
        seed: int,
    ) -> None:
        super().__init__(start_s, duration_s)
        if leaves < 0 or joins < 0:
            raise ValueError("leaves and joins must be >= 0")
        self.leaves = int(leaves)
        self.joins = int(joins)
        self.job = str(job)
        self.seed = int(seed)

    def install(
        self, env: "Environment", cluster: "ClusterTopology"
    ) -> FaultHandle:
        if self.job and self.job not in {j.job_id for j in cluster.spec.jobs}:
            raise ValueError(
                f"fault targets unknown job {self.job!r}; jobs: "
                f"{sorted(cluster.spec.nodes)}"
            )
        handle = FaultHandle(self, self.windows())
        handle.process = env.process(
            self._drive(env, cluster, handle), name=f"fault.{self.name}"
        )
        return handle

    def _drive(self, env, cluster, handle):
        rng = RngStreams(self.seed).get_stdlib(f"fault.{self.name}")
        yield env.timeout(self.start_s)
        if handle.stopped:
            return
        # Leave: clients listed in deterministic build order; the seeded
        # substream picks victims reproducibly across backends and workers.
        candidates = [
            client
            for client in cluster.clients
            if client.process.is_alive
            and (not self.job or client.io.job_id == self.job)
        ]
        victims = rng.sample(candidates, min(self.leaves, len(candidates)))
        for client in victims:
            client.process.kill()
            handle.injections += 1
        yield env.timeout(self.duration_s)
        self._join(env, cluster, handle)

    def _join(self, env, cluster, handle):
        from repro.lustre.client import ClientProcess
        from repro.lustre.striping import StripeLayout

        spec = cluster.spec
        topology = spec.topology
        job_id = self.job or spec.jobs[0].job_id
        jobspec = next(j for j in spec.jobs if j.job_id == job_id)
        proto = jobspec.processes[0]
        for k in range(self.joins):
            start = k % topology.n_osts
            targets = [
                cluster.osses[(start + i) % topology.n_osts]
                for i in range(topology.stripe_count)
            ]
            layout = StripeLayout(targets, stripe_size=topology.rpc_size)
            cluster.clients.append(
                ClientProcess(
                    env,
                    cluster.network,
                    targets[0],
                    job_id=job_id,
                    client_id=f"{job_id}.join{k}",
                    program=proto.pattern.program,
                    rpc_size=topology.rpc_size,
                    window=proto.window,
                    layout=layout,
                )
            )
            handle.injections += 1


@FAULTS.register(
    "ost-crash", description="OST dark for a window; aborted RPCs requeue"
)
def _ost_crash(
    start_s: float = 1.0, duration_s: float = 0.5, ost: int = 0
) -> OstCrashInjector:
    """Scheduled OST crash/recovery with clean in-flight teardown.

    Parameters
    ----------
    start_s:
        Simulated time the OST goes dark.
    duration_s:
        How long it stays dark before recovering.
    ost:
        Index of the target OST.
    """
    return OstCrashInjector(start_s=start_s, duration_s=duration_s, ost=ost)


@FAULTS.register(
    "ost-degrade", description="straggler OST: capacity rescaled for a window"
)
def _ost_degrade(
    start_s: float = 1.0,
    duration_s: float = 1.0,
    ost: int = 0,
    factor: float = 0.25,
) -> OstDegradeInjector:
    """Mid-run OST capacity rescaling (RAID rebuild / scrub contention).

    Parameters
    ----------
    start_s:
        Simulated time the degradation begins.
    duration_s:
        How long the OST stays degraded.
    ost:
        Index of the target OST.
    factor:
        Capacity multiplier during the window (0.25 = quarter speed;
        values > 1 model a burst-buffer assist).
    """
    return OstDegradeInjector(
        start_s=start_s, duration_s=duration_s, ost=ost, factor=factor
    )


@FAULTS.register(
    "net-delay", description="hop latency inflation or a partition window"
)
def _net_delay(
    start_s: float = 1.0,
    duration_s: float = 0.5,
    factor: float = 10.0,
    extra_s: float = 0.0,
    partition: bool = False,
) -> NetDelayInjector:
    """Network disturbance on the request path.

    Parameters
    ----------
    start_s:
        Simulated time the disturbance begins.
    duration_s:
        Window length.
    factor:
        Latency multiplier during the window (ignored when partitioned).
    extra_s:
        Additive latency during the window — reaches zero-latency fabrics
        that a pure multiplier cannot.
    partition:
        Sever the request path instead: submissions queue in the network
        and flood the OSSes in order when the window closes.
    """
    return NetDelayInjector(
        start_s=start_s,
        duration_s=duration_s,
        factor=factor,
        extra_s=extra_s,
        partition=partition,
    )


@FAULTS.register(
    "client-churn", description="clients leave and join mid-run"
)
def _client_churn(
    start_s: float = 1.0,
    duration_s: float = 1.0,
    leaves: int = 1,
    joins: int = 1,
    job: str = "",
    seed: int = 0,
) -> ClientChurnInjector:
    """Client join/leave churn — the dynamic application set of §II-B.

    Parameters
    ----------
    start_s:
        Simulated time the leave wave fires.
    duration_s:
        Gap between the leave wave and the join wave.
    leaves:
        Clients terminated at ``start_s`` (clamped to how many are alive).
    joins:
        Clients added at ``start_s + duration_s``.
    job:
        Restrict leaves to, and clone joins from, this job id; empty
        means leave from any job and join the first.
    seed:
        Seed of the victim-selection substream (the run's seed unless
        pinned, via ``with_fault``'s auto-injection).
    """
    return ClientChurnInjector(
        start_s=start_s,
        duration_s=duration_s,
        leaves=leaves,
        joins=joins,
        job=job,
        seed=seed,
    )
