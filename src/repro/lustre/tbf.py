"""Classful Token Bucket Filter scheduler (Lustre NRS-TBF).

Implements the mechanism of paper §II-A / Fig. 1:

* **Rules** map a JobID to a token rate; they form an ordered set that can be
  started, stopped and re-rated at runtime (`nrs_tbf_rule` in real Lustre).
  Rule matching is a precomputed exact-match dict (JobID → queue), so
  classification at enqueue time is a single O(1) lookup — no rule-list scan.
* **Queues** hold the RPCs of one rule, drained FCFS; each queue owns a
  :class:`~repro.lustre.bucket.TokenBucket` and is only eligible for dequeue
  when a token is available.  Token accounting is *lazy O(1) accrual*: the
  bucket materialises its level from ``rate × elapsed`` only when observed
  at dequeue time — there is no per-tick replenishment loop anywhere.
* A **deadline heap** orders queues by the time their next token matures, so
  the scheduler always serves the queue with the nearest deadline; equal
  deadlines are broken by rule *rank* (the paper's rule hierarchy — higher
  priority jobs first).  Heap entries are immutable bare tuples invalidated
  lazily through per-queue version counters (rate changes and rule stops
  bump the version; stale entries are skipped when they surface) or
  re-filed at the bucket's actual ready time when their deadline has lapsed
  — the heap itself is never rebuilt or rescanned.
* RPCs that match no rule land in the **fallback queue**, served
  opportunistically (no token limit) whenever no token-backed queue is ready
  — exactly the starvation-avoidance property §III-D relies on when the Rule
  Management Daemon stops rules for inactive jobs.

Stopping a rule re-files its queued RPCs into the fallback queue (preserving
FIFO order), so no request is ever lost to rule churn.

``poll`` is the OSS thread pool's hot path: one heap walk that either hands
out a serviceable RPC or reports the next wake deadline.  Occupancy counters
(total pending, per-job fallback depth) are maintained incrementally so the
introspection surface the controllers sample stays O(1) per call.
"""

from __future__ import annotations

# repro: allow-file[calendar-seam-only] reason=heapq here orders TBF rule deadlines (Eq. 1 virtual finish times), not simulation events; the event calendar stays behind repro.sim.backends
import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.lustre.bucket import BucketArray, TokenBucket
from repro.lustre.rpc import Rpc

__all__ = ["TbfRule", "TbfScheduler", "DEFAULT_BUCKET_DEPTH"]

#: Lustre's default TBF bucket depth (paper §II-A: "e.g., 3 tokens by default").
DEFAULT_BUCKET_DEPTH = 3.0


@dataclass(slots=True)
class TbfRule:
    """One TBF rule: JobID → token rate.

    Parameters
    ----------
    name:
        Rule name, unique within a scheduler (Lustre rule identifier).
    job_id:
        Exact JobID this rule classifies.  AdapTBF uses JobID classification
        (§III-D), so exact match is all the reproduction needs; a fallback
        queue covers everything else.
    rate:
        Token rate in tokens/second (1 token = 1 RPC).
    depth:
        Bucket depth (burst allowance).
    rank:
        Hierarchy position; *lower rank wins ties* when two queues' deadlines
        coincide.  The rule daemon sets rank from job priority.
    """

    name: str
    job_id: str
    rate: float
    depth: float = DEFAULT_BUCKET_DEPTH
    rank: int = 0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rule rate must be >= 0, got {self.rate}")
        if self.depth <= 0:
            raise ValueError(f"rule depth must be > 0, got {self.depth}")


@dataclass(slots=True)
class _TbfQueue:
    """Internal per-rule queue state.

    ``bucket`` is either a standalone :class:`TokenBucket` or a
    :class:`~repro.lustre.bucket.BucketView` into the scheduler's bank —
    the two implement the same interface with bit-identical arithmetic.
    """

    rule: TbfRule
    bucket: TokenBucket
    items: Deque[Rpc] = field(default_factory=deque)
    #: Version counter; heap entries carry the version they were pushed with
    #: so stale entries (rate changed, queue drained) can be skipped lazily.
    version: int = 0


class TbfScheduler:
    """The classful TBF request scheduler for one OST.

    All methods take explicit ``now`` timestamps instead of holding an
    environment reference, which keeps the scheduler a pure data structure —
    trivially unit-testable and reusable outside the simulator.

    Parameters
    ----------
    bucket_bank:
        Optional :class:`~repro.lustre.bucket.BucketArray`.  When given,
        rule buckets are allocated as bank slots instead of standalone
        :class:`TokenBucket` instances — per-op semantics are bit-identical
        (the bank views use the exact scalar expressions) but batch
        operations like :meth:`sync_buckets` run as one vectorized pass.
        The array kernel backend wires a bank in via
        :class:`~repro.lustre.nrs.TbfPolicy`; pass ``None`` (default) for
        standalone buckets.
    """

    __slots__ = (
        "_bank",
        "_rules",
        "_by_job",
        "_fallback",
        "_heap",
        "_seq",
        "_served_with_token",
        "_served_fallback",
        "_pending_total",
        "_fallback_counts",
    )

    def __init__(self, bucket_bank: Optional[BucketArray] = None) -> None:
        self._bank = bucket_bank
        self._rules: Dict[str, TbfRule] = {}  # by rule name
        self._by_job: Dict[str, _TbfQueue] = {}  # by job id (rule-match lookup)
        self._fallback: Deque[Rpc] = deque()
        # Heap of (deadline, rank, seq, job_id, version).
        self._heap: List[Tuple[float, int, int, str, int]] = []
        self._seq = itertools.count()
        self._served_with_token = 0
        self._served_fallback = 0
        # Incrementally-maintained occupancy, so `pending` and
        # `pending_for_job` are O(1) instead of rescanning queues.
        self._pending_total = 0
        self._fallback_counts: Dict[str, int] = {}

    # -- rule management (the Rule Management Daemon's surface) -------------
    def start_rule(self, now: float, rule: TbfRule) -> None:
        """Install ``rule``; its queue starts with a full bucket.

        Any RPCs of this job currently waiting in the fallback queue are
        *not* migrated — like Lustre, classification happens at enqueue time.
        """
        if rule.name in self._rules:
            raise ValueError(f"rule {rule.name!r} already exists")
        if rule.job_id in self._by_job:
            raise ValueError(f"job {rule.job_id!r} already has a rule")
        self._rules[rule.name] = rule
        bank = self._bank
        bucket = (
            bank.add(rule.rate, depth=rule.depth, now=now)
            if bank is not None
            else TokenBucket(rule.rate, depth=rule.depth, now=now)
        )
        self._by_job[rule.job_id] = _TbfQueue(rule=rule, bucket=bucket)

    def stop_rule(self, now: float, name: str) -> int:
        """Remove rule ``name``; queued RPCs drain through fallback.

        Returns the number of RPCs re-filed to the fallback queue.
        """
        rule = self._rules.pop(name, None)
        if rule is None:
            raise KeyError(f"no rule named {name!r}")
        queue = self._by_job.pop(rule.job_id)
        queue.version += 1  # invalidate heap entries
        moved = len(queue.items)
        if moved:
            self._fallback.extend(queue.items)
            counts = self._fallback_counts
            counts[rule.job_id] = counts.get(rule.job_id, 0) + moved
            queue.items.clear()
        return moved

    def change_rate(
        self, now: float, name: str, rate: float, rank: Optional[int] = None
    ) -> None:
        """Re-rate (and optionally re-rank) an existing rule in place.

        Accrued tokens survive the change; only the slope is updated, which
        is how Lustre applies ``rate=`` changes to live rules.  Re-pushing
        bumps the queue's version, so any heap entry computed under the old
        rate is invalidated lazily.
        """
        rule = self._rules.get(name)
        if rule is None:
            raise KeyError(f"no rule named {name!r}")
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        rule.rate = float(rate)
        if rank is not None:
            rule.rank = rank
        queue = self._by_job[rule.job_id]
        queue.bucket.set_rate(now, rate)
        if queue.items:
            self._push(now, rule.job_id, queue)

    def sync_buckets(self, now: float) -> None:
        """Settle token accrual on every rule bucket at ``now``.

        With a bucket bank this is one vectorized pass
        (:meth:`~repro.lustre.bucket.BucketArray.sync_all`); otherwise a
        scalar loop with bit-identical results.  Settling is semantically
        inert (lazy accrual materialised early), but it *is* a float
        rounding point — callers on the trace-pinned path must only sync at
        instants where every bucket gets settled anyway, e.g. immediately
        before a controller wave that re-rates all rules.
        """
        bank = self._bank
        if bank is not None:
            bank.sync_all(now)
            return
        for queue in self._by_job.values():
            queue.bucket._sync(now)

    def rule_names(self) -> List[str]:
        """Names of currently installed rules."""
        return sorted(self._rules)

    def get_rule(self, name: str) -> TbfRule:
        return self._rules[name]

    def has_rule_for_job(self, job_id: str) -> bool:
        return job_id in self._by_job

    # -- request path -----------------------------------------------------------
    def enqueue(self, now: float, rpc: Rpc) -> None:
        """Classify and queue an arriving RPC (one dict lookup)."""
        self._pending_total += 1
        queue = self._by_job.get(rpc.job_id)
        if queue is None:
            self._fallback.append(rpc)
            counts = self._fallback_counts
            counts[rpc.job_id] = counts.get(rpc.job_id, 0) + 1
            return
        queue.items.append(rpc)
        if len(queue.items) == 1:
            self._push(now, rpc.job_id, queue)

    def poll(self, now: float) -> Tuple[Optional[Rpc], float]:
        """One heap walk: the next serviceable RPC, or the next wake time.

        Returns ``(rpc, now)`` when a queue's token has matured or the
        fallback queue has work; ``(None, wake)`` otherwise, where ``wake``
        is the earliest future time a dequeue could succeed (``inf`` if
        never).  This fuses :meth:`dequeue` and :meth:`next_wake` so an idle
        OSS thread pays for one walk per cycle instead of two; the service
        decision is identical to ``dequeue``'s.
        """
        top = self._live_top(now)
        if top is not None:
            job_id, queue, ready = top
            if ready <= now:
                heapq.heappop(self._heap)
                consumed = queue.bucket.try_consume(now)
                assert consumed, "deadline matured but token missing"
                rpc = queue.items.popleft()
                if queue.items:
                    self._push(now, job_id, queue)
                self._served_with_token += 1
                self._pending_total -= 1
                return rpc, now
            # Nearest token deadline is in the future.
            if not self._fallback:
                return None, max(ready, now)

        if self._fallback:
            self._served_fallback += 1
            self._pending_total -= 1
            rpc = self._fallback.popleft()
            counts = self._fallback_counts
            left = counts[rpc.job_id] - 1
            if left:
                counts[rpc.job_id] = left
            else:
                del counts[rpc.job_id]
            rpc.via_fallback = True
            return rpc, now

        return None, math.inf

    def dequeue(self, now: float) -> Optional[Rpc]:
        """Return the next serviceable RPC at ``now``, or None.

        Token-backed queues with matured deadlines win (earliest deadline,
        then rank); otherwise the fallback queue is served opportunistically;
        otherwise nothing is ready.
        """
        rpc, _wake = self.poll(now)
        return rpc

    def next_wake(self, now: float) -> float:
        """Earliest future time a dequeue could succeed; ``inf`` if never.

        Only meaningful after :meth:`dequeue` returned None (i.e. no queue is
        currently ready and the fallback queue is empty).
        """
        top = self._live_top(now)
        if top is None:
            return math.inf
        return max(top[2], now)

    def _live_top(self, now: float) -> Optional[Tuple[str, _TbfQueue, float]]:
        """Resolve the deadline heap's top to a live, trustworthy entry.

        Pops stale entries (version mismatch, empty or vanished queue) and
        re-files entries whose deadline has lapsed — the queue matured in
        the past, or the bucket moved under the entry — at the bucket's
        actual ready time.  Re-filing matured queues at ``now`` is what lets
        *rank* break the tie between several queues whose tokens are all
        available (the paper's rule hierarchy).

        Returns ``(job_id, queue, ready)`` for the winning entry, or None
        when the heap is exhausted.  The entry itself is left on the heap.
        """
        heap = self._heap
        by_job = self._by_job
        while heap:
            deadline, _rank, _seq, job_id, version = heap[0]
            queue = by_job.get(job_id)
            if queue is None or version != queue.version or not queue.items:
                heapq.heappop(heap)  # stale entry
                continue
            ready = queue.bucket.ready_at(now)
            if ready > deadline + 1e-12:
                heapq.heappop(heap)
                self._push(now, job_id, queue, deadline=ready)
                continue
            return job_id, queue, ready
        return None

    # -- introspection ----------------------------------------------------------
    @property
    def pending(self) -> int:
        """Total RPCs currently queued (all rule queues + fallback); O(1)."""
        return self._pending_total

    def pending_for_job(self, job_id: str) -> int:
        """Queued RPCs of one job (rule queue + fallback); O(1)."""
        queue = self._by_job.get(job_id)
        in_rule = len(queue.items) if queue else 0
        return in_rule + self._fallback_counts.get(job_id, 0)

    @property
    def fallback_depth(self) -> int:
        return len(self._fallback)

    @property
    def served_with_token(self) -> int:
        return self._served_with_token

    @property
    def served_fallback(self) -> int:
        return self._served_fallback

    # -- internals -----------------------------------------------------------------
    def _push(
        self,
        now: float,
        job_id: str,
        queue: _TbfQueue,
        deadline: Optional[float] = None,
    ) -> None:
        queue.version += 1
        if deadline is None:
            deadline = queue.bucket.ready_at(now)
        if math.isinf(deadline):
            # Rate 0 with an empty bucket: the queue is blocked until a rate
            # change re-pushes it; keep it off the heap entirely.
            return
        heapq.heappush(
            self._heap,
            (deadline, queue.rule.rank, next(self._seq), job_id, queue.version),
        )
