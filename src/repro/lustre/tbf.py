"""Classful Token Bucket Filter scheduler (Lustre NRS-TBF).

Implements the mechanism of paper §II-A / Fig. 1:

* **Rules** map a JobID to a token rate; they form an ordered set that can be
  started, stopped and re-rated at runtime (`nrs_tbf_rule` in real Lustre).
* **Queues** hold the RPCs of one rule, drained FCFS; each queue owns a
  :class:`~repro.lustre.bucket.TokenBucket` and is only eligible for dequeue
  when a token is available.
* A **deadline heap** orders queues by the time their next token matures, so
  the scheduler always serves the queue with the nearest deadline; equal
  deadlines are broken by rule *rank* (the paper's rule hierarchy — higher
  priority jobs first).
* RPCs that match no rule land in the **fallback queue**, served
  opportunistically (no token limit) whenever no token-backed queue is ready
  — exactly the starvation-avoidance property §III-D relies on when the Rule
  Management Daemon stops rules for inactive jobs.

Stopping a rule re-files its queued RPCs into the fallback queue (preserving
FIFO order), so no request is ever lost to rule churn.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.lustre.bucket import TokenBucket
from repro.lustre.rpc import Rpc

__all__ = ["TbfRule", "TbfScheduler", "DEFAULT_BUCKET_DEPTH"]

#: Lustre's default TBF bucket depth (paper §II-A: "e.g., 3 tokens by default").
DEFAULT_BUCKET_DEPTH = 3.0


@dataclass
class TbfRule:
    """One TBF rule: JobID → token rate.

    Parameters
    ----------
    name:
        Rule name, unique within a scheduler (Lustre rule identifier).
    job_id:
        Exact JobID this rule classifies.  AdapTBF uses JobID classification
        (§III-D), so exact match is all the reproduction needs; a fallback
        queue covers everything else.
    rate:
        Token rate in tokens/second (1 token = 1 RPC).
    depth:
        Bucket depth (burst allowance).
    rank:
        Hierarchy position; *lower rank wins ties* when two queues' deadlines
        coincide.  The rule daemon sets rank from job priority.
    """

    name: str
    job_id: str
    rate: float
    depth: float = DEFAULT_BUCKET_DEPTH
    rank: int = 0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rule rate must be >= 0, got {self.rate}")
        if self.depth <= 0:
            raise ValueError(f"rule depth must be > 0, got {self.depth}")


@dataclass
class _TbfQueue:
    """Internal per-rule queue state."""

    rule: TbfRule
    bucket: TokenBucket
    items: Deque[Rpc] = field(default_factory=deque)
    #: Version counter; heap entries carry the version they were pushed with
    #: so stale entries (rate changed, queue drained) can be skipped lazily.
    version: int = 0


class TbfScheduler:
    """The classful TBF request scheduler for one OST.

    All methods take explicit ``now`` timestamps instead of holding an
    environment reference, which keeps the scheduler a pure data structure —
    trivially unit-testable and reusable outside the simulator.
    """

    def __init__(self) -> None:
        self._rules: Dict[str, TbfRule] = {}  # by rule name
        self._by_job: Dict[str, _TbfQueue] = {}  # by job id
        self._fallback: Deque[Rpc] = deque()
        # Heap of (deadline, rank, seq, job_id, version).
        self._heap: List[Tuple[float, int, int, str, int]] = []
        self._seq = itertools.count()
        self._served_with_token = 0
        self._served_fallback = 0

    # -- rule management (the Rule Management Daemon's surface) -------------
    def start_rule(self, now: float, rule: TbfRule) -> None:
        """Install ``rule``; its queue starts with a full bucket.

        Any RPCs of this job currently waiting in the fallback queue are
        *not* migrated — like Lustre, classification happens at enqueue time.
        """
        if rule.name in self._rules:
            raise ValueError(f"rule {rule.name!r} already exists")
        if rule.job_id in self._by_job:
            raise ValueError(f"job {rule.job_id!r} already has a rule")
        self._rules[rule.name] = rule
        self._by_job[rule.job_id] = _TbfQueue(
            rule=rule,
            bucket=TokenBucket(rule.rate, depth=rule.depth, now=now),
        )

    def stop_rule(self, now: float, name: str) -> int:
        """Remove rule ``name``; queued RPCs drain through fallback.

        Returns the number of RPCs re-filed to the fallback queue.
        """
        rule = self._rules.pop(name, None)
        if rule is None:
            raise KeyError(f"no rule named {name!r}")
        queue = self._by_job.pop(rule.job_id)
        queue.version += 1  # invalidate heap entries
        moved = len(queue.items)
        self._fallback.extend(queue.items)
        queue.items.clear()
        return moved

    def change_rate(
        self, now: float, name: str, rate: float, rank: Optional[int] = None
    ) -> None:
        """Re-rate (and optionally re-rank) an existing rule in place.

        Accrued tokens survive the change; only the slope is updated, which
        is how Lustre applies ``rate=`` changes to live rules.
        """
        rule = self._rules.get(name)
        if rule is None:
            raise KeyError(f"no rule named {name!r}")
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        rule.rate = float(rate)
        if rank is not None:
            rule.rank = rank
        queue = self._by_job[rule.job_id]
        queue.bucket.set_rate(now, rate)
        if queue.items:
            self._push(now, rule.job_id, queue)

    def rule_names(self) -> List[str]:
        """Names of currently installed rules."""
        return sorted(self._rules)

    def get_rule(self, name: str) -> TbfRule:
        return self._rules[name]

    def has_rule_for_job(self, job_id: str) -> bool:
        return job_id in self._by_job

    # -- request path -----------------------------------------------------------
    def enqueue(self, now: float, rpc: Rpc) -> None:
        """Classify and queue an arriving RPC."""
        queue = self._by_job.get(rpc.job_id)
        if queue is None:
            self._fallback.append(rpc)
            return
        queue.items.append(rpc)
        if len(queue.items) == 1:
            self._push(now, rpc.job_id, queue)

    def dequeue(self, now: float) -> Optional[Rpc]:
        """Return the next serviceable RPC at ``now``, or None.

        Token-backed queues with matured deadlines win (earliest deadline,
        then rank); otherwise the fallback queue is served opportunistically;
        otherwise nothing is ready.
        """
        while self._heap:
            deadline, _rank, _seq, job_id, version = self._heap[0]
            queue = self._by_job.get(job_id)
            if queue is None or version != queue.version or not queue.items:
                heapq.heappop(self._heap)  # stale entry
                continue
            # Refresh the deadline: the bucket may have been re-rated since
            # this entry was pushed (same version ⇒ entry's deadline is
            # current, but recomputing is cheap and defensive).
            actual = queue.bucket.ready_at(now)
            if actual > deadline + 1e-12:
                heapq.heappop(self._heap)
                self._push(now, job_id, queue, deadline=actual)
                continue
            if actual <= now:
                heapq.heappop(self._heap)
                consumed = queue.bucket.try_consume(now)
                assert consumed, "deadline matured but token missing"
                rpc = queue.items.popleft()
                if queue.items:
                    self._push(now, job_id, queue)
                self._served_with_token += 1
                return rpc
            break  # nearest deadline is in the future

        if self._fallback:
            self._served_fallback += 1
            rpc = self._fallback.popleft()
            rpc.via_fallback = True
            return rpc
        return None

    def next_wake(self, now: float) -> float:
        """Earliest future time a dequeue could succeed; ``inf`` if never.

        Only meaningful after :meth:`dequeue` returned None (i.e. no queue is
        currently ready and the fallback queue is empty).
        """
        while self._heap:
            deadline, _rank, _seq, job_id, version = self._heap[0]
            queue = self._by_job.get(job_id)
            if queue is None or version != queue.version or not queue.items:
                heapq.heappop(self._heap)
                continue
            actual = queue.bucket.ready_at(now)
            if actual > deadline + 1e-12:
                heapq.heappop(self._heap)
                self._push(now, job_id, queue, deadline=actual)
                continue
            return max(actual, now)
        return math.inf

    # -- introspection ----------------------------------------------------------
    @property
    def pending(self) -> int:
        """Total RPCs currently queued (all rule queues + fallback)."""
        return sum(len(q.items) for q in self._by_job.values()) + len(self._fallback)

    def pending_for_job(self, job_id: str) -> int:
        queue = self._by_job.get(job_id)
        in_rule = len(queue.items) if queue else 0
        in_fallback = sum(1 for r in self._fallback if r.job_id == job_id)
        return in_rule + in_fallback

    @property
    def fallback_depth(self) -> int:
        return len(self._fallback)

    @property
    def served_with_token(self) -> int:
        return self._served_with_token

    @property
    def served_fallback(self) -> int:
        return self._served_fallback

    # -- internals -----------------------------------------------------------------
    def _push(
        self,
        now: float,
        job_id: str,
        queue: _TbfQueue,
        deadline: Optional[float] = None,
    ) -> None:
        queue.version += 1
        if deadline is None:
            deadline = queue.bucket.ready_at(now)
        if math.isinf(deadline):
            # Rate 0 with an empty bucket: the queue is blocked until a rate
            # change re-pushes it; keep it off the heap entirely.
            return
        heapq.heappush(
            self._heap,
            (deadline, queue.rule.rank, next(self._seq), job_id, queue.version),
        )
