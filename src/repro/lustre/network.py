"""Client ↔ OSS network model.

A deliberately thin model: RPCs experience a fixed one-way latency to the
OSS, and completions are visible to the client after the same latency.  The
paper's experiments are OST-bandwidth-bound (25 Gb NICs vs SATA SSDs), so
network queueing is not the bottleneck; a fixed latency preserves pipelining
behaviour (clients keep a window of RPCs in flight) without simulating the
fabric.  Set ``latency_s=0`` for a zero-latency fabric.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.lustre.oss import Oss
from repro.lustre.rpc import Rpc
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["Network"]


class Network:
    """Fixed-latency request/response fabric.

    Parameters
    ----------
    env:
        Simulation environment.
    latency_s:
        One-way delivery latency in seconds (default 100 µs, a typical
        datacenter RTT/2).
    """

    __slots__ = (
        "env",
        "latency_s",
        "_rpcs_carried",
        "_partitioned",
        "_held",
        "_rpcs_held",
        "_deliver_cb",
        "_reply_cb",
        "_finish_cb",
    )

    def __init__(self, env: "Environment", latency_s: float = 100e-6) -> None:
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self.env = env
        self.latency_s = float(latency_s)
        self._rpcs_carried = 0
        self._partitioned = False
        self._held: List[Rpc] = []
        self._rpcs_held = 0
        # Hop callbacks are shared bound methods; the RPC rides along as the
        # hop event's value, so the per-RPC closure allocations of the naive
        # formulation disappear from this hot path.
        self._deliver_cb = self._deliver
        self._reply_cb = self._reply
        self._finish_cb = self._finish

    def submit(self, rpc: Rpc, oss: Oss) -> Event:
        """Send ``rpc`` to ``oss``; returns the event the client awaits.

        The returned event fires one network latency *after* the server-side
        completion, modelling the reply message.  During a partition window
        the request is held inside the network instead, to be released (in
        submission order) when the partition heals.
        """
        env = self.env
        rpc.submitted = env.now
        rpc.completion = Event(env)
        rpc.client_done = client_done = Event(env)
        rpc.target_oss = oss
        self._rpcs_carried += 1

        if self._partitioned:
            self._held.append(rpc)
            self._rpcs_held += 1
        elif self.latency_s:
            env.timeout(self.latency_s, rpc).callbacks.append(self._deliver_cb)
        else:
            oss.receive(rpc)
        rpc.completion.callbacks.append(self._reply_cb)
        return client_done

    # -- fault-axis surface ---------------------------------------------------
    def set_latency(self, latency_s: float) -> None:
        """Change the one-way hop latency at runtime (fault axis).

        Requests already in flight keep the latency they departed with —
        only subsequent hops see the new value, like a routing change.
        """
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self.latency_s = float(latency_s)

    def set_partitioned(self, partitioned: bool) -> int:
        """Open or heal a partition on the request path.

        While partitioned, submissions queue inside the network (replies
        of already-delivered requests still return — the server committed
        that work before the cut).  Healing releases the held requests in
        submission order through the normal latency hop, so the flood
        arrives at deterministic heap positions.  Returns the number of
        requests released.
        """
        partitioned = bool(partitioned)
        if partitioned == self._partitioned:
            return 0
        self._partitioned = partitioned
        if partitioned:
            return 0
        held, self._held = self._held, []
        env = self.env
        for rpc in held:
            if self.latency_s:
                env.timeout(self.latency_s, rpc).callbacks.append(
                    self._deliver_cb
                )
            else:
                rpc.target_oss.receive(rpc)
        return len(held)

    @property
    def partitioned(self) -> bool:
        return self._partitioned

    @property
    def rpcs_held(self) -> int:
        """Requests that were ever held by a partition window."""
        return self._rpcs_held

    # -- hop callbacks (event value = the RPC in flight) ---------------------
    def _deliver(self, event: Event) -> None:
        rpc = event._value
        rpc.target_oss.receive(rpc)

    def _reply(self, event: Event) -> None:
        rpc = event._value
        if self.latency_s:
            self.env.timeout(self.latency_s, rpc).callbacks.append(
                self._finish_cb
            )
        else:
            rpc.client_done.succeed(rpc)

    def _finish(self, event: Event) -> None:
        rpc = event._value
        rpc.client_done.succeed(rpc)

    @property
    def rpcs_carried(self) -> int:
        return self._rpcs_carried
