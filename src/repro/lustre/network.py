"""Client ↔ OSS network model.

A deliberately thin model: RPCs experience a fixed one-way latency to the
OSS, and completions are visible to the client after the same latency.  The
paper's experiments are OST-bandwidth-bound (25 Gb NICs vs SATA SSDs), so
network queueing is not the bottleneck; a fixed latency preserves pipelining
behaviour (clients keep a window of RPCs in flight) without simulating the
fabric.  Set ``latency_s=0`` for a zero-latency fabric.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lustre.oss import Oss
from repro.lustre.rpc import Rpc
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["Network"]


class Network:
    """Fixed-latency request/response fabric.

    Parameters
    ----------
    env:
        Simulation environment.
    latency_s:
        One-way delivery latency in seconds (default 100 µs, a typical
        datacenter RTT/2).
    """

    def __init__(self, env: "Environment", latency_s: float = 100e-6) -> None:
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self.env = env
        self.latency_s = float(latency_s)
        self._rpcs_carried = 0

    def submit(self, rpc: Rpc, oss: Oss) -> Event:
        """Send ``rpc`` to ``oss``; returns the event the client awaits.

        The returned event fires one network latency *after* the server-side
        completion, modelling the reply message.
        """
        env = self.env
        rpc.submitted = env.now
        rpc.completion = Event(env)
        self._rpcs_carried += 1

        client_done = Event(env)

        def deliver(_e) -> None:
            oss.receive(rpc)

        def reply(_e) -> None:
            if self.latency_s:
                env.timeout(self.latency_s).add_callback(
                    lambda _t: client_done.succeed(rpc)
                )
            else:
                client_done.succeed(rpc)

        if self.latency_s:
            env.timeout(self.latency_s).add_callback(deliver)
        else:
            deliver(None)
        rpc.completion.add_callback(reply)
        return client_done

    @property
    def rpcs_carried(self) -> int:
        return self._rpcs_carried
