"""Network Request Scheduler policies.

The NRS sits between RPC arrival at the OSS and service by I/O threads
(paper Fig. 1).  Two policies reproduce the paper's baselines and mechanism:

* :class:`FifoPolicy` — the **No BW** baseline (§IV-C): RPCs are served
  strictly first-come-first-serve with no rate control.
* :class:`TbfPolicy` — the classful token-bucket policy wrapping
  :class:`~repro.lustre.tbf.TbfScheduler`; both the **Static BW** baseline
  and AdapTBF drive it, differing only in who sets the rule rates and when.

Policies expose a small pull interface to the OSS thread pool: ``dequeue``
returns a ready RPC or ``None``; ``next_wake`` says when to re-poll;
``poll`` fuses the two into one pass (the hot path — an idle OSS thread
would otherwise walk the scheduler's deadline heap twice per cycle);
``wait_arrival`` hands out a broadcast event so idle threads learn about new
work immediately.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque
from typing import TYPE_CHECKING, Deque, Optional, Tuple

from repro.lustre.rpc import Rpc
from repro.lustre.tbf import TbfRule, TbfScheduler
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["NrsPolicy", "FifoPolicy", "TbfPolicy"]


class NrsPolicy(ABC):
    """Interface between the OSS thread pool and a request ordering policy."""

    __slots__ = ("env", "_arrival")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._arrival = Event(env)

    # -- arrival notification -------------------------------------------------
    def wait_arrival(self) -> Event:
        """Event that fires on the next RPC arrival (broadcast to waiters)."""
        return self._arrival

    def _signal_arrival(self) -> None:
        current, self._arrival = self._arrival, Event(self.env)
        current.succeed()

    # -- policy surface ----------------------------------------------------------
    @abstractmethod
    def enqueue(self, rpc: Rpc) -> None:
        """Accept an arriving RPC."""

    @abstractmethod
    def dequeue(self) -> Optional[Rpc]:
        """Return the next serviceable RPC, or None when nothing is ready."""

    @abstractmethod
    def next_wake(self) -> float:
        """Absolute time when a dequeue may next succeed (``inf`` = never)."""

    def poll(self) -> Tuple[Optional[Rpc], float]:
        """Fused ``(dequeue(), next_wake())`` in one pass.

        Returns ``(rpc, _)`` when an RPC is serviceable and ``(None, wake)``
        otherwise; the wake time is only meaningful in the second form.
        Policies with a shared scan (TBF's deadline heap) override this to
        avoid walking their structures twice per idle thread cycle.
        """
        rpc = self.dequeue()
        if rpc is not None:
            return rpc, self.env.now
        return None, self.next_wake()

    @property
    @abstractmethod
    def pending(self) -> int:
        """Number of queued RPCs."""


class FifoPolicy(NrsPolicy):
    """First-come-first-serve — the paper's *No BW* environment.

    RPCs are handed to I/O threads in arrival order with no throttling: a
    single aggressive job can monopolise the OST, which is precisely the
    failure mode the paper's introduction motivates.
    """

    __slots__ = ("_queue",)

    def __init__(self, env: "Environment") -> None:
        super().__init__(env)
        self._queue: Deque[Rpc] = deque()

    def enqueue(self, rpc: Rpc) -> None:
        rpc.arrived = self.env.now
        self._queue.append(rpc)
        self._signal_arrival()

    def dequeue(self) -> Optional[Rpc]:
        return self._queue.popleft() if self._queue else None

    def next_wake(self) -> float:
        # FIFO is ready iff non-empty; emptiness only changes on arrival.
        return math.inf

    def poll(self) -> Tuple[Optional[Rpc], float]:
        queue = self._queue
        if queue:
            return queue.popleft(), self.env.now
        return None, math.inf

    @property
    def pending(self) -> int:
        return len(self._queue)


class TbfPolicy(NrsPolicy):
    """Token Bucket Filter policy with runtime rule management.

    A thin, environment-aware wrapper over :class:`TbfScheduler`; rule
    management methods mirror the Lustre ``nrs_tbf_rule`` interface the
    AdapTBF Rule Management Daemon drives (§III-D).

    When the environment's kernel backend advertises
    ``vectorized_buckets`` (the ``"array"`` backend), the scheduler is
    given a :class:`~repro.lustre.bucket.BucketArray` bank so all rule
    buckets of this OST live in one struct-of-arrays block and batch
    settles run vectorized.  Per-op arithmetic is bit-identical either
    way, so the choice never shows up in event traces or figures.
    """

    __slots__ = ("scheduler",)

    def __init__(self, env: "Environment") -> None:
        super().__init__(env)
        kernel = getattr(env, "kernel", None)
        if kernel is not None and getattr(kernel, "vectorized_buckets", False):
            from repro.lustre.bucket import BucketArray

            self.scheduler = TbfScheduler(bucket_bank=BucketArray())
        else:
            self.scheduler = TbfScheduler()

    # -- rule management --------------------------------------------------------
    def start_rule(self, rule: TbfRule) -> None:
        self.scheduler.start_rule(self.env.now, rule)
        # A new rule may unblock queued work for threads waiting on tokens.
        self._signal_arrival()

    def stop_rule(self, name: str) -> int:
        moved = self.scheduler.stop_rule(self.env.now, name)
        if moved:
            self._signal_arrival()  # fallback queue gained servable work
        return moved

    def change_rate(self, name: str, rate: float, rank: Optional[int] = None) -> None:
        self.scheduler.change_rate(self.env.now, name, rate, rank=rank)
        self._signal_arrival()  # deadlines may have moved earlier

    def rule_names(self):
        return self.scheduler.rule_names()

    def get_rule(self, name: str) -> TbfRule:
        return self.scheduler.get_rule(name)

    def has_rule_for_job(self, job_id: str) -> bool:
        return self.scheduler.has_rule_for_job(job_id)

    # -- policy surface ----------------------------------------------------------
    def enqueue(self, rpc: Rpc) -> None:
        rpc.arrived = self.env.now
        self.scheduler.enqueue(self.env.now, rpc)
        self._signal_arrival()

    def dequeue(self) -> Optional[Rpc]:
        return self.scheduler.dequeue(self.env.now)

    def next_wake(self) -> float:
        return self.scheduler.next_wake(self.env.now)

    def poll(self) -> Tuple[Optional[Rpc], float]:
        return self.scheduler.poll(self.env.now)

    @property
    def pending(self) -> int:
        return self.scheduler.pending

    def pending_for_job(self, job_id: str) -> int:
        """Queued RPCs of one job (rule queue + fallback) — the backlog the
        controller folds into its demand signal."""
        return self.scheduler.pending_for_job(job_id)
