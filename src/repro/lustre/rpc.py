"""RPC request model.

An :class:`Rpc` is one bulk I/O request from a client process to a storage
target.  Following the paper's convention, one RPC costs one TBF token and
carries a fixed-size payload (1 MiB by default elsewhere in the stack), so a
token rate of ``R`` tokens/s is a bandwidth cap of ``R`` payload units/s.

Lifecycle timestamps are recorded at each hop so metrics can attribute
latency: ``submitted`` (client), ``arrived`` (OSS/NRS enqueue), ``dequeued``
(NRS grant), ``completed`` (OST service finished).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event

__all__ = ["Rpc", "RpcKind"]

_rpc_ids = itertools.count()


class RpcKind(enum.Enum):
    """Operation class of an RPC (both consume tokens identically)."""

    READ = "read"
    WRITE = "write"


# eq=False: identity semantics, two RPCs are never "equal".  slots=True:
# RPCs are the hot-path allocation (one per MiB moved), and slots cut both
# per-instance memory and attribute-access time on the NRS/OST fast path.
@dataclass(eq=False, slots=True)
class Rpc:
    """A single bulk I/O RPC.

    Parameters
    ----------
    job_id:
        Lustre JobID string identifying the owning application (the TBF
        classification key, as AdapTBF configures ``jobid_var``).
    client_id:
        Identifier of the issuing client node/process, for diagnostics.
    size_bytes:
        Payload size serviced by the OST.
    kind:
        Read or write; the scheduler treats both alike.
    """

    job_id: str
    client_id: str
    size_bytes: int
    kind: RpcKind = RpcKind.WRITE
    rpc_id: int = field(default_factory=lambda: next(_rpc_ids))

    # Lifecycle timestamps (simulated seconds); None until reached.
    submitted: Optional[float] = None
    arrived: Optional[float] = None
    dequeued: Optional[float] = None
    completed: Optional[float] = None

    #: Event the client waits on; succeeds with the RPC once serviced.
    completion: Optional["Event"] = None

    #: Client-side event that fires one reply latency after ``completion``
    #: (set by the network; lets hop callbacks be shared bound methods
    #: instead of per-RPC closures).
    client_done: Optional["Event"] = None

    #: Serving OSS, set at submit time (the stripe layout's choice).
    target_oss: Optional[object] = None

    #: True when the RPC was served from the fallback queue (no token).
    via_fallback: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"RPC size must be positive, got {self.size_bytes}")

    @property
    def queue_wait(self) -> Optional[float]:
        """Time spent queued in the NRS, if both timestamps are known."""
        if self.arrived is None or self.dequeued is None:
            return None
        return self.dequeued - self.arrived

    @property
    def service_time(self) -> Optional[float]:
        """Time spent in OST service, if both timestamps are known."""
        if self.dequeued is None or self.completed is None:
            return None
        return self.completed - self.dequeued

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Rpc #{self.rpc_id} job={self.job_id} {self.kind.value} "
            f"{self.size_bytes}B>"
        )
