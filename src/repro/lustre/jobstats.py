"""Per-OST job statistics tracker (Lustre ``job_stats`` analogue).

AdapTBF's System Stats Controller samples this tracker every observation
period to learn (a) which jobs were *active* and (b) each job's I/O demand
``d_x`` in RPCs (paper Eq. 3 context, §III-B).  After an allocation round the
controller *clears* the tracker so the next period starts fresh, mirroring
steps (1) and (9) of Fig. 2.

Two counters are kept per job and period:

* ``arrived`` — RPCs issued to the OST during the period;
* ``served``  — RPCs whose service completed during the period (this is what
  Lustre's real ``job_stats`` op counters reflect).

The controller's demand signal is ``served + still-queued`` (see
:mod:`repro.core.controller`), which equals ``backlog at period start +
arrivals``: every RPC that *wanted* service this period counts exactly once,
so a job whose requests are stuck waiting for tokens stays visibly active —
counting pure arrivals would mark a fully-backlogged job idle, churn its rule
and let its backlog drain unthrottled through the fallback queue (DESIGN.md
deviation 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.lustre.rpc import Rpc

__all__ = ["JobStatsTracker", "JobStatsSnapshot"]


@dataclass(frozen=True, slots=True)
class JobStatsSnapshot:
    """Immutable per-job counters for one observation period."""

    job_id: str
    arrived: int
    served: int
    bytes_arrived: int
    bytes_served: int

    def __post_init__(self) -> None:
        if min(self.arrived, self.served, self.bytes_arrived, self.bytes_served) < 0:
            raise ValueError("counters must be non-negative")


class JobStatsTracker:
    """Accumulates per-job counters between controller sweeps."""

    __slots__ = (
        "_arrived",
        "_served",
        "_bytes_arrived",
        "_bytes_served",
        "_lifetime_arrived",
        "_lifetime_served",
        "_lifetime_bytes",
    )

    def __init__(self) -> None:
        self._arrived: Dict[str, int] = {}
        self._served: Dict[str, int] = {}
        self._bytes_arrived: Dict[str, int] = {}
        self._bytes_served: Dict[str, int] = {}
        # Lifetime counters survive clear(); useful for experiment totals
        # and for the outstanding-RPC computation below.
        self._lifetime_arrived: Dict[str, int] = {}
        self._lifetime_served: Dict[str, int] = {}
        self._lifetime_bytes: Dict[str, int] = {}

    def record_arrival(self, rpc: Rpc) -> None:
        """Count an RPC issued to this OST."""
        job = rpc.job_id
        self._arrived[job] = self._arrived.get(job, 0) + 1
        self._bytes_arrived[job] = self._bytes_arrived.get(job, 0) + rpc.size_bytes
        self._lifetime_arrived[job] = self._lifetime_arrived.get(job, 0) + 1
        self._lifetime_bytes[job] = (
            self._lifetime_bytes.get(job, 0) + rpc.size_bytes
        )

    def record_completion(self, rpc: Rpc) -> None:
        """Count an RPC whose OST service finished."""
        job = rpc.job_id
        self._served[job] = self._served.get(job, 0) + 1
        self._bytes_served[job] = self._bytes_served.get(job, 0) + rpc.size_bytes
        self._lifetime_served[job] = self._lifetime_served.get(job, 0) + 1

    def outstanding(self, job_id: str) -> int:
        """RPCs issued but not yet served (queued in the NRS or in service)."""
        return self._lifetime_arrived.get(job_id, 0) - self._lifetime_served.get(
            job_id, 0
        )

    def snapshot(self) -> Dict[str, JobStatsSnapshot]:
        """Per-job counters accumulated since the last :meth:`clear`."""
        jobs = set(self._arrived) | set(self._served)
        return {
            job: JobStatsSnapshot(
                job_id=job,
                arrived=self._arrived.get(job, 0),
                served=self._served.get(job, 0),
                bytes_arrived=self._bytes_arrived.get(job, 0),
                bytes_served=self._bytes_served.get(job, 0),
            )
            for job in jobs
        }

    def clear(self) -> None:
        """Reset period counters (controller step 9 in Fig. 2)."""
        self._arrived.clear()
        self._served.clear()
        self._bytes_arrived.clear()
        self._bytes_served.clear()

    # -- lifetime accounting ----------------------------------------------------
    def lifetime_rpcs(self, job_id: str) -> int:
        return self._lifetime_arrived.get(job_id, 0)

    def lifetime_bytes(self, job_id: str) -> int:
        return self._lifetime_bytes.get(job_id, 0)

    def jobs_with_outstanding(self):
        """Jobs that currently have issued-but-unserved RPCs."""
        return [j for j in sorted(self._lifetime_arrived) if self.outstanding(j) > 0]

    @property
    def jobs_seen(self):
        """All job ids ever observed on this OST."""
        return sorted(self._lifetime_arrived)
