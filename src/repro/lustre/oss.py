"""Object Storage Server: I/O thread pool over an NRS policy.

The OSS owns the NRS policy, a :class:`~repro.lustre.jobstats.JobStatsTracker`
and a pool of I/O threads.  Each thread loops: pull the next serviceable RPC
from the policy; if none is ready, sleep until either the policy's next token
deadline or a new arrival; serve granted RPCs against the OST's shared
bandwidth.  This reproduces the work-conservation semantics the paper
analyses: under TBF, threads *can* sit idle while RPCs wait for tokens (the
non-work-conserving behaviour AdapTBF fixes), while the fallback queue keeps
unmatched jobs from starving.

The idle wait is the OSS's hot path (roughly one idle cycle per served RPC),
so it uses the engine's lean primitives: one fused :meth:`NrsPolicy.poll`
call instead of separate ``dequeue``/``next_wake`` heap walks, a
:class:`~repro.sim.events.FirstOf` race instead of a full ``AnyOf``, and
lazy cancellation of the losing deadline timer so stale wakeups never
dispatch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.lustre.jobstats import JobStatsTracker
from repro.lustre.nrs import NrsPolicy
from repro.lustre.ost import Ost, OstUnavailable
from repro.lustre.rpc import Rpc
from repro.sim.events import Event, FirstOf

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["Oss"]

#: Default I/O thread count; Lustre OSSes typically run tens of ost_io
#: threads per CPT.  16 matches the paper's 16-core OSS node.
DEFAULT_IO_THREADS = 16


class Oss:
    """One Object Storage Server fronting a single OST.

    Parameters
    ----------
    env:
        Simulation environment.
    ost:
        Storage target providing bandwidth.
    policy:
        The NRS policy ordering RPCs (FIFO or TBF).
    io_threads:
        Number of concurrent service threads.
    rpc_overhead_s:
        Fixed per-RPC software overhead charged before the bulk transfer
        (request handling, bulk setup).  Zero by default.
    """

    __slots__ = (
        "env",
        "ost",
        "policy",
        "io_threads",
        "rpc_overhead_s",
        "jobstats",
        "_on_complete",
        "_completed_rpcs",
        "_offline",
        "_online",
        "_rpcs_dropped",
        "_rpcs_retried",
    )

    def __init__(
        self,
        env: "Environment",
        ost: Ost,
        policy: NrsPolicy,
        io_threads: int = DEFAULT_IO_THREADS,
        rpc_overhead_s: float = 0.0,
    ) -> None:
        if io_threads <= 0:
            raise ValueError(f"io_threads must be positive, got {io_threads}")
        if rpc_overhead_s < 0:
            raise ValueError(f"rpc_overhead_s must be >= 0, got {rpc_overhead_s}")
        self.env = env
        self.ost = ost
        self.policy = policy
        self.io_threads = io_threads
        self.rpc_overhead_s = rpc_overhead_s
        self.jobstats = JobStatsTracker()
        self._on_complete: List[Callable[[Rpc], None]] = []
        self._completed_rpcs = 0
        self._offline = False
        self._online: Optional[Event] = None
        self._rpcs_dropped = 0
        self._rpcs_retried = 0
        for tid in range(io_threads):
            env.process(self._thread_loop(), name=f"{ost.name}.io{tid}")

    # -- ingress (called by the network) ----------------------------------------
    def receive(self, rpc: Rpc) -> None:
        """An RPC arrives from the network: account it and queue it."""
        self.jobstats.record_arrival(rpc)
        self.policy.enqueue(rpc)

    # -- observability ---------------------------------------------------------
    def on_complete(self, callback: Callable[[Rpc], None]) -> None:
        """Register a callback invoked for every completed RPC."""
        self._on_complete.append(callback)

    @property
    def completed_rpcs(self) -> int:
        return self._completed_rpcs

    @property
    def offline(self) -> bool:
        """True while the backing OST is crashed (fault axis)."""
        return self._offline

    @property
    def rpcs_dropped(self) -> int:
        """In-flight transfers aborted by crashes (served work lost)."""
        return self._rpcs_dropped

    @property
    def rpcs_retried(self) -> int:
        """RPCs requeued after a crash aborted or blocked their service."""
        return self._rpcs_retried

    # -- fault-axis surface ------------------------------------------------------
    def crash(self) -> int:
        """Take the backing OST dark: abort in-flight transfers, park threads.

        Every in-flight transfer's completion event fails with
        :class:`~repro.lustre.ost.OstUnavailable`; the I/O threads catch
        it, requeue the aborted RPC on the NRS policy (its service starts
        over after recovery — the partial work is lost) and then block on
        the recovery broadcast.  Returns the number of transfers aborted.
        Crashing an already-offline OSS raises.
        """
        if self._offline:
            raise RuntimeError(f"{self.ost.name} is already offline")
        self._offline = True
        self._online = Event(self.env)
        dropped = self.ost.fail_inflight(OstUnavailable(self.ost.name))
        self._rpcs_dropped += dropped
        return dropped

    def recover(self) -> None:
        """Bring the OST back: wake every parked I/O thread."""
        if not self._offline:
            raise RuntimeError(f"{self.ost.name} is not offline")
        self._offline = False
        online, self._online = self._online, None
        online.succeed()

    # -- the I/O thread ----------------------------------------------------------
    def _thread_loop(self):
        env = self.env
        policy = self.policy
        poll = policy.poll
        transfer = self.ost.transfer
        record_completion = self.jobstats.record_completion
        inf = float("inf")
        while True:
            if self._offline:
                # Crashed: park on the recovery broadcast.  Any wakeup
                # (requeue arrivals included) funnels back through this
                # gate, so no thread touches a dark OST.
                yield self._online
                continue
            rpc: Optional[Rpc]
            rpc, wake = poll()
            if rpc is not None:
                rpc.dequeued = env.now
                try:
                    if self.rpc_overhead_s:
                        yield env.timeout(self.rpc_overhead_s)
                        if self._offline:
                            # Crash landed during request-handling overhead,
                            # before the bulk transfer ever started.
                            raise OstUnavailable(self.ost.name)
                    yield transfer(rpc.size_bytes)
                except OstUnavailable:
                    # The crash failed this transfer (or pre-empted it):
                    # requeue the RPC — its service starts over after
                    # recovery, the Lustre client-side replay behaviour.
                    self._rpcs_retried += 1
                    policy.enqueue(rpc)
                    continue
                rpc.completed = env.now
                self._completed_rpcs += 1
                record_completion(rpc)
                for callback in self._on_complete:
                    callback(rpc)
                if rpc.completion is not None:
                    rpc.completion.succeed(rpc)
                continue

            arrival = policy.wait_arrival()
            if wake == inf:
                yield arrival
            else:
                delay = wake - env.now
                timer = env.timeout(delay if delay > 0.0 else 0.0)
                yield FirstOf(env, (timer, arrival))
                if timer.callbacks is not None:
                    # The arrival won the race: retire the deadline timer
                    # lazily instead of letting it dispatch as a no-op.
                    timer.cancel()
