"""Lustre client process model.

A :class:`ClientProcess` executes one *I/O program* — a generator produced by
a workload pattern (:mod:`repro.workloads.patterns`) — against an OSS through
the network.  The :class:`IoHandle` given to the program hides RPC mechanics:
``write(nbytes)`` / ``read(nbytes)`` chop a region into RPC-sized chunks and
keep a bounded window of them in flight, which is how a real Lustre client's
RPC engine pipelines bulk I/O (``max_rpcs_in_flight``).  Reads and writes
traverse the same NRS/TBF path and cost one token per RPC (the paper's
convention); the handle attributes moved bytes to ``bytes_read`` /
``bytes_written`` per :class:`~repro.lustre.rpc.RpcKind` so mixed-op
workloads stay observable.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.lustre.network import Network
from repro.lustre.oss import Oss
from repro.lustre.rpc import Rpc, RpcKind
from repro.lustre.striping import StripeLayout

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment
    from repro.sim.process import Process

__all__ = ["IoHandle", "ClientProcess", "DEFAULT_RPC_SIZE", "DEFAULT_WINDOW"]

#: Default bulk RPC payload: 1 MiB, Lustre's typical max_pages_per_rpc worth.
DEFAULT_RPC_SIZE = 1 << 20
#: Default RPCs in flight per client process (Lustre max_rpcs_in_flight=8).
DEFAULT_WINDOW = 8


class IoHandle:
    """The I/O surface a workload program uses.

    Parameters
    ----------
    env, network, oss:
        Plumbing to reach storage.
    job_id:
        JobID stamped on every RPC (the TBF classification key).
    client_id:
        Identifier of this client process.
    rpc_size:
        Bulk RPC payload in bytes.
    window:
        Maximum RPCs in flight for :meth:`write`.
    """

    __slots__ = (
        "env",
        "network",
        "oss",
        "job_id",
        "client_id",
        "rpc_size",
        "window",
        "layout",
        "_offset",
        "rpcs_issued",
        "bytes_written",
        "bytes_read",
        "_stream_seq",
    )

    def __init__(
        self,
        env: "Environment",
        network: Network,
        oss: Oss,
        job_id: str,
        client_id: str,
        rpc_size: int = DEFAULT_RPC_SIZE,
        window: int = DEFAULT_WINDOW,
        layout: Optional[StripeLayout] = None,
    ) -> None:
        if rpc_size <= 0:
            raise ValueError(f"rpc_size must be positive, got {rpc_size}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.env = env
        self.network = network
        self.oss = oss
        self.job_id = job_id
        self.client_id = client_id
        self.rpc_size = rpc_size
        self.window = window
        #: File layout; defaults to a single-OST layout on `oss` (Lustre's
        #: default stripe_count=1).  The handle models one file, so a
        #: monotone offset drives the chunk→OST mapping.
        self.layout = layout or StripeLayout([oss], stripe_size=rpc_size)
        self._offset = 0
        self.rpcs_issued = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self._stream_seq = 0

    def next_stream_seq(self) -> int:
        """Monotone counter for RNG-substream derivation.

        Workload patterns fold this into their substream names
        (:meth:`repro.workloads.patterns.Pattern.stream`) so each
        ``program()`` invocation on this handle — e.g. every phase of a
        repeated composite — draws a fresh stream instead of replaying the
        first one.  Programs run in deterministic order within a client,
        so the sequence is reproducible across processes.
        """
        seq = self._stream_seq
        self._stream_seq += 1
        return seq

    @property
    def now(self) -> float:
        return self.env.now

    def sleep(self, seconds: float):
        """Event that fires after ``seconds`` (for program pacing)."""
        return self.env.timeout(seconds)

    def submit(self, nbytes: Optional[int] = None, kind: RpcKind = RpcKind.WRITE):
        """Issue a single RPC at the current file offset.

        Returns the client-side completion event.  The target OSS follows
        the file's stripe layout; with the default single-OST layout every
        RPC goes to ``self.oss``.
        """
        size = self.rpc_size if nbytes is None else nbytes
        target = self.layout.target_for_offset(self._offset)
        rpc = Rpc(
            job_id=self.job_id,
            client_id=self.client_id,
            size_bytes=size,
            kind=kind,
        )
        self.rpcs_issued += 1
        if kind is RpcKind.READ:
            self.bytes_read += size
        else:
            self.bytes_written += size
        self._offset += size
        return self.network.submit(rpc, target)

    def write(self, total_bytes: int, kind: RpcKind = RpcKind.WRITE) -> Generator:
        """Write ``total_bytes`` as a pipelined stream of RPCs.

        Keeps up to ``window`` RPCs outstanding; yields until every chunk has
        completed.  Usage inside a program: ``yield from io.write(1 << 30)``.
        """
        if total_bytes <= 0:
            raise ValueError(f"total_bytes must be positive, got {total_bytes}")
        n_chunks = math.ceil(total_bytes / self.rpc_size)
        remaining = total_bytes
        in_flight = []
        issued = 0
        while issued < n_chunks or in_flight:
            while issued < n_chunks and len(in_flight) < self.window:
                size = min(self.rpc_size, remaining)
                remaining -= size
                in_flight.append(self.submit(size, kind=kind))
                issued += 1
            # Wait for the window to open (any completion frees a slot).
            done = yield self.env.any_of(in_flight)
            in_flight = [ev for ev in in_flight if ev not in done]

    def read(self, total_bytes: int) -> Generator:
        """Read ``total_bytes`` as a pipelined stream of READ RPCs.

        Identical geometry to :meth:`write` — same chunking, same window,
        same NRS/TBF token accounting (the scheduler treats both kinds
        alike) — but the RPCs are classed :attr:`~repro.lustre.rpc.RpcKind.READ`
        and the volume lands in :attr:`bytes_read`.
        """
        yield from self.write(total_bytes, kind=RpcKind.READ)


class ClientProcess:
    """One workload process on one client node.

    Parameters
    ----------
    program:
        A callable ``program(io) -> generator`` — typically the bound
        ``program`` method of a workload pattern.
    """

    __slots__ = ("io", "process")

    def __init__(
        self,
        env: "Environment",
        network: Network,
        oss: Oss,
        job_id: str,
        client_id: str,
        program: Callable[[IoHandle], Generator],
        rpc_size: int = DEFAULT_RPC_SIZE,
        window: int = DEFAULT_WINDOW,
        layout: Optional[StripeLayout] = None,
    ) -> None:
        self.io = IoHandle(
            env,
            network,
            oss,
            job_id=job_id,
            client_id=client_id,
            rpc_size=rpc_size,
            window=window,
            layout=layout,
        )
        self.process: "Process" = env.process(
            program(self.io), name=f"{job_id}/{client_id}"
        )

    @property
    def finished(self) -> bool:
        return not self.process.is_alive
