"""File striping across multiple OSTs (Lustre layout semantics).

In Lustre, every file has a *layout*: ``stripe_count`` OSTs over which its
data is distributed in ``stripe_size`` chunks, round-robin.  The paper's
decentralization argument (§II-B) rests on this: a job's I/O spreads over
many storage targets, each of which runs its own independent AdapTBF
instance, and local fairness on every target composes into global fairness.

:class:`StripeLayout` reproduces exactly the part that matters for
bandwidth control — the deterministic chunk→OST mapping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.lustre.oss import Oss

__all__ = ["StripeLayout"]


class StripeLayout:
    """Chunk→OSS mapping for one file.

    Parameters
    ----------
    targets:
        The OSS endpoints serving the file's stripes, in stripe order
        (``stripe_count`` = ``len(targets)``).
    stripe_size:
        Bytes per stripe chunk.  Lustre's default is 1 MiB — conveniently
        also the bulk RPC size, so with the default layout each RPC lands
        wholly on one OST.
    """

    __slots__ = ("targets", "stripe_size")

    def __init__(self, targets: Sequence["Oss"], stripe_size: int = 1 << 20):
        if not targets:
            raise ValueError("a layout needs at least one target")
        if stripe_size <= 0:
            raise ValueError(f"stripe_size must be positive, got {stripe_size}")
        self.targets: List["Oss"] = list(targets)
        self.stripe_size = int(stripe_size)

    @property
    def stripe_count(self) -> int:
        return len(self.targets)

    def target_for_offset(self, offset: int) -> "Oss":
        """The OSS holding the byte at ``offset``."""
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        stripe_index = (offset // self.stripe_size) % self.stripe_count
        return self.targets[stripe_index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = [t.ost.name for t in self.targets]
        return f"StripeLayout({names}, stripe_size={self.stripe_size})"
