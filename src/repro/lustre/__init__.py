"""Simulated Lustre data path.

This subpackage models the slice of Lustre that AdapTBF touches (paper §II-A
and Fig. 1): clients issue RPCs over a network to an Object Storage Server
(OSS); the Network Request Scheduler (NRS) orders them — either plain FCFS or
through the classful Token Bucket Filter (TBF) policy — and a pool of I/O
threads services dequeued RPCs against an Object Storage Target (OST) with
finite disk bandwidth.  A per-OST job-stats tracker mirrors Lustre's
``job_stats`` procfile, which is what the AdapTBF controller samples.

The model intentionally reproduces the *control-relevant* behaviours:

* tokens gate dequeue — a rule-matched RPC is only served when its queue's
  bucket holds a token (1 RPC = 1 token, as in the paper);
* queues are drained FCFS internally and earliest-deadline-first across
  queues, with rule rank breaking ties (the paper's rule hierarchy);
* unmatched RPCs fall into a fallback queue served opportunistically by idle
  threads, without token limits;
* rules can be started, stopped and re-rated at runtime without losing queued
  requests (stopping a rule drains its backlog through the fallback queue);
* the OST is a processor-sharing bandwidth server, so concurrent transfers
  split disk bandwidth exactly as a saturated SSD would in the fluid limit.
"""

from repro.lustre.bucket import TokenBucket
from repro.lustre.client import ClientProcess, IoHandle
from repro.lustre.jobstats import JobStatsSnapshot, JobStatsTracker
from repro.lustre.network import Network
from repro.lustre.nrs import FifoPolicy, NrsPolicy, TbfPolicy
from repro.lustre.oss import Oss
from repro.lustre.ost import Ost
from repro.lustre.rpc import Rpc, RpcKind
from repro.lustre.striping import StripeLayout
from repro.lustre.tbf import TbfRule, TbfScheduler

__all__ = [
    "ClientProcess",
    "FifoPolicy",
    "IoHandle",
    "JobStatsSnapshot",
    "JobStatsTracker",
    "Network",
    "NrsPolicy",
    "Oss",
    "Ost",
    "Rpc",
    "RpcKind",
    "StripeLayout",
    "TbfPolicy",
    "TbfRule",
    "TbfScheduler",
    "TokenBucket",
]
