"""Continuous-time token bucket.

This is the primitive underneath each TBF queue (paper §II-A): tokens accrue
at ``rate`` tokens/second up to ``depth`` tokens; serving one RPC consumes one
token; excess accrual beyond the depth is discarded, which is what bounds
bursts.  The bucket is *lazy O(1) accrual* — token state is materialised from
``rate × elapsed`` only when observed (at dequeue time, in practice), so it
costs nothing between events and there is no per-tick replenishment loop.
``ready_at``/``try_consume`` are called once per scheduler poll, so both
inline the accrual arithmetic instead of delegating to :meth:`tokens_at`
(same expressions, so the float results are bit-identical).

Two layouts share those semantics:

* :class:`TokenBucket` — one self-contained bucket (the default).
* :class:`BucketArray` — a struct-of-arrays *bank* of buckets
  (``array('d')`` columns for rate/depth/tokens/last).  Individual buckets
  are used through :class:`BucketView` handles that implement the exact
  :class:`TokenBucket` interface with the exact scalar expressions, while
  batch operations (:meth:`BucketArray.sync_all`,
  :meth:`BucketArray.set_rates`) accrue *every* bucket in one vectorized
  numpy pass over zero-copy views of the columns.  Scalar and vectorized
  float64 arithmetic round identically when the operation order matches —
  ``min(depth, tokens + rate * (now - last))`` elementwise — so a batch op
  is bit-identical to the equivalent scalar loop; the parity suite in
  ``tests/lustre/test_bucket_array.py`` asserts exact float equality.
  Without numpy (the ``repro[fast]`` extra) the batch ops fall back to the
  same scalar loop, results unchanged.
"""

from __future__ import annotations

import math
from array import array
from typing import Iterable, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["TokenBucket", "BucketArray", "BucketView"]

#: Minimum bank size before the batch operations pay for numpy conversion;
#: below this the scalar loop is faster and (by construction) bit-identical.
_VECTOR_MIN = 16

#: Tolerance for floating-point token arithmetic.  One part in 10^9 of a
#: token is far below anything the allocation algorithm can produce.
_EPS = 1e-9


class TokenBucket:
    """A token bucket with runtime-adjustable rate.

    Parameters
    ----------
    rate:
        Token accrual rate in tokens/second.  May be zero (bucket never
        refills — queue is blocked until the rate is raised).
    depth:
        Maximum tokens the bucket can hold.  Lustre's TBF default is 3,
        which we inherit.
    tokens:
        Initial fill; defaults to a full bucket, matching Lustre's behaviour
        of allowing an immediate small burst on rule creation.
    now:
        Creation timestamp (simulated seconds).
    """

    __slots__ = ("_rate", "depth", "_tokens", "_last")

    def __init__(
        self,
        rate: float,
        depth: float = 3.0,
        tokens: float | None = None,
        now: float = 0.0,
    ) -> None:
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if depth <= 0:
            raise ValueError(f"depth must be > 0, got {depth}")
        self._rate = float(rate)
        self.depth = float(depth)
        self._tokens = self.depth if tokens is None else min(float(tokens), self.depth)
        if self._tokens < 0:
            raise ValueError(f"initial tokens must be >= 0, got {tokens}")
        self._last = float(now)

    # -- observation ---------------------------------------------------------
    @property
    def rate(self) -> float:
        """Current accrual rate (tokens/second)."""
        return self._rate

    def tokens_at(self, now: float) -> float:
        """Token level at time ``now`` without mutating state."""
        if now < self._last:
            raise ValueError(f"time went backwards: {now} < {self._last}")
        return min(self.depth, self._tokens + self._rate * (now - self._last))

    def ready_at(self, now: float, n: int = 1) -> float:
        """Earliest time ≥ ``now`` at which ``n`` tokens will be available.

        Returns ``inf`` when the rate is zero and the bucket holds fewer than
        ``n`` tokens (it can never refill).
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if n > self.depth + _EPS:
            # The bucket can never simultaneously hold this many tokens.
            return math.inf
        if now < self._last:
            raise ValueError(f"time went backwards: {now} < {self._last}")
        have = min(self.depth, self._tokens + self._rate * (now - self._last))
        if have + _EPS >= n:
            return now
        if self._rate == 0.0:
            return math.inf
        return now + (n - have) / self._rate

    # -- mutation --------------------------------------------------------------
    def _sync(self, now: float) -> None:
        self._tokens = self.tokens_at(now)
        self._last = now

    def try_consume(self, now: float, n: int = 1) -> bool:
        """Consume ``n`` tokens if available at ``now``; report success."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if now < self._last:
            raise ValueError(f"time went backwards: {now} < {self._last}")
        tokens = min(self.depth, self._tokens + self._rate * (now - self._last))
        self._last = now
        if tokens + _EPS >= n:
            self._tokens = max(0.0, tokens - n)
            return True
        self._tokens = tokens
        return False

    def set_rate(self, now: float, rate: float) -> None:
        """Change the accrual rate, settling accrued tokens first.

        Tokens already in the bucket are kept (the paper's rule *changes* do
        not reset buckets); only the future accrual slope changes.
        """
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self._sync(now)
        self._rate = float(rate)

    def drain(self, now: float) -> float:
        """Empty the bucket and return how many tokens were discarded."""
        self._sync(now)
        dropped, self._tokens = self._tokens, 0.0
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TokenBucket(rate={self._rate}, depth={self.depth}, "
            f"tokens={self._tokens:.3f}@{self._last:.6f})"
        )


class BucketView:
    """One bucket of a :class:`BucketArray`, with the :class:`TokenBucket` API.

    The view holds direct references to the bank's columns, so scalar access
    costs one index operation over the :class:`TokenBucket` slot load — and
    every expression below is copied verbatim from :class:`TokenBucket`, so
    per-op float results are bit-identical to a standalone bucket fed the
    same call sequence.
    """

    __slots__ = ("_rates", "_depths", "_tokens", "_lasts", "index")

    def __init__(self, bank: "BucketArray", index: int) -> None:
        self._rates = bank._rates
        self._depths = bank._depths
        self._tokens = bank._tokens
        self._lasts = bank._lasts
        self.index = index

    # -- observation ---------------------------------------------------------
    @property
    def rate(self) -> float:
        """Current accrual rate (tokens/second)."""
        return self._rates[self.index]

    @property
    def depth(self) -> float:
        """Maximum tokens this bucket can hold."""
        return self._depths[self.index]

    def tokens_at(self, now: float) -> float:
        """Token level at time ``now`` without mutating state."""
        i = self.index
        last = self._lasts[i]
        if now < last:
            raise ValueError(f"time went backwards: {now} < {last}")
        return min(self._depths[i], self._tokens[i] + self._rates[i] * (now - last))

    def ready_at(self, now: float, n: int = 1) -> float:
        """Earliest time ≥ ``now`` at which ``n`` tokens will be available."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        i = self.index
        depth = self._depths[i]
        if n > depth + _EPS:
            # The bucket can never simultaneously hold this many tokens.
            return math.inf
        last = self._lasts[i]
        if now < last:
            raise ValueError(f"time went backwards: {now} < {last}")
        rate = self._rates[i]
        have = min(depth, self._tokens[i] + rate * (now - last))
        if have + _EPS >= n:
            return now
        if rate == 0.0:
            return math.inf
        return now + (n - have) / rate

    # -- mutation ------------------------------------------------------------
    def _sync(self, now: float) -> None:
        i = self.index
        self._tokens[i] = self.tokens_at(now)
        self._lasts[i] = now

    def try_consume(self, now: float, n: int = 1) -> bool:
        """Consume ``n`` tokens if available at ``now``; report success."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        i = self.index
        last = self._lasts[i]
        if now < last:
            raise ValueError(f"time went backwards: {now} < {last}")
        tokens = min(
            self._depths[i], self._tokens[i] + self._rates[i] * (now - last)
        )
        self._lasts[i] = now
        if tokens + _EPS >= n:
            self._tokens[i] = max(0.0, tokens - n)
            return True
        self._tokens[i] = tokens
        return False

    def set_rate(self, now: float, rate: float) -> None:
        """Change the accrual rate, settling accrued tokens first."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self._sync(now)
        self._rates[self.index] = float(rate)

    def drain(self, now: float) -> float:
        """Empty the bucket and return how many tokens were discarded."""
        self._sync(now)
        i = self.index
        dropped = self._tokens[i]
        self._tokens[i] = 0.0
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        i = self.index
        return (
            f"BucketView[{i}](rate={self._rates[i]}, depth={self._depths[i]}, "
            f"tokens={self._tokens[i]:.3f}@{self._lasts[i]:.6f})"
        )


class BucketArray:
    """A struct-of-arrays bank of token buckets.

    Columns are ``array('d')`` (C doubles): scalar access through
    :class:`BucketView` handles is as cheap as attribute access on a
    standalone bucket, while the batch operations reinterpret the columns
    as numpy float64 arrays via ``np.frombuffer`` — zero-copy, writes land
    directly in the bank — and accrue every bucket in one vector pass.

    The bank is append-only: :meth:`add` allocates the next slot and
    returns its view.  Retired buckets (a TBF rule being stopped) simply
    stop being called; their slots keep accruing in batch syncs, which is
    semantically inert (sync never changes observable behavior) and keeps
    slot indices stable for live views.
    """

    __slots__ = ("_rates", "_depths", "_tokens", "_lasts")

    def __init__(self) -> None:
        self._rates = array("d")
        self._depths = array("d")
        self._tokens = array("d")
        self._lasts = array("d")

    def __len__(self) -> int:
        return len(self._rates)

    # -- allocation ----------------------------------------------------------
    def add(
        self,
        rate: float,
        depth: float = 3.0,
        tokens: float | None = None,
        now: float = 0.0,
    ) -> BucketView:
        """Allocate a bucket slot (same validation and defaults as
        :class:`TokenBucket`) and return its view."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if depth <= 0:
            raise ValueError(f"depth must be > 0, got {depth}")
        depth = float(depth)
        initial = depth if tokens is None else min(float(tokens), depth)
        if initial < 0:
            raise ValueError(f"initial tokens must be >= 0, got {tokens}")
        self._rates.append(float(rate))
        self._depths.append(depth)
        self._tokens.append(initial)
        self._lasts.append(float(now))
        return BucketView(self, len(self._rates) - 1)

    def view(self, index: int) -> BucketView:
        """View of slot ``index`` (negative indices follow list semantics)."""
        n = len(self._rates)
        if not -n <= index < n:
            raise IndexError(f"bucket index {index} out of range (bank size {n})")
        return BucketView(self, index % n if n else 0)

    # -- batch operations ----------------------------------------------------
    def _columns(self):
        """Zero-copy numpy float64 views of the four columns.

        Recomputed per batch call: ``array('d').append`` may reallocate the
        underlying buffer, so cached views could go stale.
        """
        return (
            _np.frombuffer(self._rates, dtype=_np.float64),
            _np.frombuffer(self._depths, dtype=_np.float64),
            _np.frombuffer(self._tokens, dtype=_np.float64),
            _np.frombuffer(self._lasts, dtype=_np.float64),
        )

    def sync_all(self, now: float) -> None:
        """Settle accrued tokens on *every* bucket at ``now`` in one pass.

        Bit-identical to ``for each bucket: bucket._sync(now)`` — the
        elementwise operation order matches the scalar expression
        ``min(depth, tokens + rate * (now - last))`` exactly.  Note the
        equivalence is to a scalar loop syncing *at the same instant*:
        settling introduces a rounding point, so callers on the
        trace-pinned path must only sync where the scalar code path would
        (e.g. a controller wave applying ``set_rate`` to every rule).
        """
        n = len(self._rates)
        if _np is not None and n >= _VECTOR_MIN:
            rates, depths, tokens, lasts = self._columns()
            if n and float(lasts.max()) > now:
                raise ValueError(
                    f"time went backwards: {now} < {float(lasts.max())}"
                )
            _np.minimum(depths, tokens + rates * (now - lasts), out=tokens)
            lasts[:] = now
            return
        rates, depths = self._rates, self._depths
        tokens, lasts = self._tokens, self._lasts
        for i in range(n):
            last = lasts[i]
            if now < last:
                raise ValueError(f"time went backwards: {now} < {last}")
            tokens[i] = min(depths[i], tokens[i] + rates[i] * (now - last))
            lasts[i] = now

    def set_rates(
        self, now: float, updates: Iterable[Tuple[int, float]]
    ) -> None:
        """Apply ``(index, rate)`` updates, settling each target first.

        Bit-identical to ``for i, r in updates: view(i).set_rate(now, r)``;
        with numpy and a large enough batch the settle runs as one gathered
        vector op over just the targeted slots.
        """
        pairs = list(updates)
        for _index, rate in pairs:
            if rate < 0:
                raise ValueError(f"rate must be >= 0, got {rate}")
        n = len(self._rates)
        for index, _rate in pairs:
            if not 0 <= index < n:
                raise IndexError(
                    f"bucket index {index} out of range (bank size {n})"
                )
        if _np is not None and len(pairs) >= _VECTOR_MIN:
            idx = _np.fromiter(
                (i for i, _ in pairs), dtype=_np.intp, count=len(pairs)
            )
            new_rates = _np.fromiter(
                (r for _, r in pairs), dtype=_np.float64, count=len(pairs)
            )
            rates, depths, tokens, lasts = self._columns()
            last_sub = lasts[idx]
            if last_sub.size and float(last_sub.max()) > now:
                raise ValueError(
                    f"time went backwards: {now} < {float(last_sub.max())}"
                )
            tokens[idx] = _np.minimum(
                depths[idx], tokens[idx] + rates[idx] * (now - last_sub)
            )
            lasts[idx] = now
            rates[idx] = new_rates
            return
        for index, rate in pairs:
            last = self._lasts[index]
            if now < last:
                raise ValueError(f"time went backwards: {now} < {last}")
            self._tokens[index] = min(
                self._depths[index],
                self._tokens[index] + self._rates[index] * (now - last),
            )
            self._lasts[index] = now
            self._rates[index] = float(rate)

    def tokens_all(self, now: float) -> List[float]:
        """Token level of every bucket at ``now`` without mutating state."""
        n = len(self._rates)
        if _np is not None and n >= _VECTOR_MIN:
            rates, depths, tokens, lasts = self._columns()
            if n and float(lasts.max()) > now:
                raise ValueError(
                    f"time went backwards: {now} < {float(lasts.max())}"
                )
            return _np.minimum(depths, tokens + rates * (now - lasts)).tolist()
        out: List[float] = []
        for i in range(n):
            last = self._lasts[i]
            if now < last:
                raise ValueError(f"time went backwards: {now} < {last}")
            out.append(
                min(
                    self._depths[i],
                    self._tokens[i] + self._rates[i] * (now - last),
                )
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BucketArray size={len(self._rates)}>"
