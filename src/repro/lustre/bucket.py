"""Continuous-time token bucket.

This is the primitive underneath each TBF queue (paper §II-A): tokens accrue
at ``rate`` tokens/second up to ``depth`` tokens; serving one RPC consumes one
token; excess accrual beyond the depth is discarded, which is what bounds
bursts.  The bucket is *lazy O(1) accrual* — token state is materialised from
``rate × elapsed`` only when observed (at dequeue time, in practice), so it
costs nothing between events and there is no per-tick replenishment loop.
``ready_at``/``try_consume`` are called once per scheduler poll, so both
inline the accrual arithmetic instead of delegating to :meth:`tokens_at`
(same expressions, so the float results are bit-identical).
"""

from __future__ import annotations

import math

__all__ = ["TokenBucket"]

#: Tolerance for floating-point token arithmetic.  One part in 10^9 of a
#: token is far below anything the allocation algorithm can produce.
_EPS = 1e-9


class TokenBucket:
    """A token bucket with runtime-adjustable rate.

    Parameters
    ----------
    rate:
        Token accrual rate in tokens/second.  May be zero (bucket never
        refills — queue is blocked until the rate is raised).
    depth:
        Maximum tokens the bucket can hold.  Lustre's TBF default is 3,
        which we inherit.
    tokens:
        Initial fill; defaults to a full bucket, matching Lustre's behaviour
        of allowing an immediate small burst on rule creation.
    now:
        Creation timestamp (simulated seconds).
    """

    __slots__ = ("_rate", "depth", "_tokens", "_last")

    def __init__(
        self,
        rate: float,
        depth: float = 3.0,
        tokens: float | None = None,
        now: float = 0.0,
    ) -> None:
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if depth <= 0:
            raise ValueError(f"depth must be > 0, got {depth}")
        self._rate = float(rate)
        self.depth = float(depth)
        self._tokens = self.depth if tokens is None else min(float(tokens), self.depth)
        if self._tokens < 0:
            raise ValueError(f"initial tokens must be >= 0, got {tokens}")
        self._last = float(now)

    # -- observation ---------------------------------------------------------
    @property
    def rate(self) -> float:
        """Current accrual rate (tokens/second)."""
        return self._rate

    def tokens_at(self, now: float) -> float:
        """Token level at time ``now`` without mutating state."""
        if now < self._last:
            raise ValueError(f"time went backwards: {now} < {self._last}")
        return min(self.depth, self._tokens + self._rate * (now - self._last))

    def ready_at(self, now: float, n: int = 1) -> float:
        """Earliest time ≥ ``now`` at which ``n`` tokens will be available.

        Returns ``inf`` when the rate is zero and the bucket holds fewer than
        ``n`` tokens (it can never refill).
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if n > self.depth + _EPS:
            # The bucket can never simultaneously hold this many tokens.
            return math.inf
        if now < self._last:
            raise ValueError(f"time went backwards: {now} < {self._last}")
        have = min(self.depth, self._tokens + self._rate * (now - self._last))
        if have + _EPS >= n:
            return now
        if self._rate == 0.0:
            return math.inf
        return now + (n - have) / self._rate

    # -- mutation --------------------------------------------------------------
    def _sync(self, now: float) -> None:
        self._tokens = self.tokens_at(now)
        self._last = now

    def try_consume(self, now: float, n: int = 1) -> bool:
        """Consume ``n`` tokens if available at ``now``; report success."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if now < self._last:
            raise ValueError(f"time went backwards: {now} < {self._last}")
        tokens = min(self.depth, self._tokens + self._rate * (now - self._last))
        self._last = now
        if tokens + _EPS >= n:
            self._tokens = max(0.0, tokens - n)
            return True
        self._tokens = tokens
        return False

    def set_rate(self, now: float, rate: float) -> None:
        """Change the accrual rate, settling accrued tokens first.

        Tokens already in the bucket are kept (the paper's rule *changes* do
        not reset buckets); only the future accrual slope changes.
        """
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self._sync(now)
        self._rate = float(rate)

    def drain(self, now: float) -> float:
        """Empty the bucket and return how many tokens were discarded."""
        self._sync(now)
        dropped, self._tokens = self._tokens, 0.0
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TokenBucket(rate={self._rate}, depth={self.depth}, "
            f"tokens={self._tokens:.3f}@{self._last:.6f})"
        )
