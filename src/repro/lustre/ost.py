"""Object Storage Target: a processor-sharing bandwidth server.

Models the OST disk as a fluid-flow resource: ``capacity_bps`` bytes/second
split evenly across all in-flight transfers.  This is the standard fluid
approximation for a saturated storage device and preserves the property the
experiments depend on — aggregate service rate equals ``capacity_bps``
whenever any work is queued, regardless of concurrency.

The implementation is event-driven: transfer completions are pre-computed and
re-computed whenever the set of active transfers changes.  Each
re-computation lazily cancels the previous completion-check timer
(:meth:`~repro.sim.events.Event.cancel`), so superseded checks are skipped by
the engine instead of dispatching as no-ops.
"""

from __future__ import annotations

import itertools
import math
from typing import TYPE_CHECKING, Dict, Optional

from repro.sim.events import Event, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["Ost", "OstUnavailable"]

_EPS_BYTES = 1e-6


class OstUnavailable(Exception):
    """Raised into waiters of in-flight transfers when their OST crashes.

    Carries the OST name; the OSS I/O threads catch it and requeue the
    aborted RPC, so a crash never propagates past the server boundary.
    """


class Ost:
    """One Object Storage Target with finite disk bandwidth.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Identifier (e.g. ``"OST0000"``), used in stats and diagnostics.
    capacity_bps:
        Disk bandwidth in bytes/second, shared by concurrent transfers.

    Notes
    -----
    The maximum token rate ``T_i`` the paper assigns an OST (Table I) maps to
    ``capacity_bps / rpc_size``: with 1 MiB RPCs, a 1 GiB/s OST supports
    1024 tokens/s of sustained service.
    """

    __slots__ = (
        "env",
        "name",
        "capacity_bps",
        "_remaining",
        "_sizes",
        "_done_events",
        "_ids",
        "_last",
        "_check_timer",
        "_on_check_cb",
        "_bytes_served",
    )

    def __init__(self, env: "Environment", name: str, capacity_bps: float) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        self.env = env
        self.name = name
        self.capacity_bps = float(capacity_bps)
        self._remaining: Dict[int, float] = {}  # transfer id -> bytes left
        self._sizes: Dict[int, float] = {}  # transfer id -> original bytes
        self._done_events: Dict[int, Event] = {}
        self._ids = itertools.count()
        self._last = env.now
        self._check_timer: Optional[Timeout] = None
        self._on_check_cb = self._on_check  # cache the bound method
        self._bytes_served = 0.0

    # -- public API ---------------------------------------------------------
    def transfer(self, nbytes: float) -> Event:
        """Begin a transfer of ``nbytes``; returns its completion event."""
        if nbytes <= 0:
            raise ValueError(f"transfer size must be positive, got {nbytes}")
        self._advance(self.env.now)
        tid = next(self._ids)
        self._remaining[tid] = float(nbytes)
        self._sizes[tid] = float(nbytes)
        done = Event(self.env)
        self._done_events[tid] = done
        self._reschedule()
        return done

    def set_capacity(self, capacity_bps: float) -> None:
        """Change the disk bandwidth at runtime.

        Models degraded media / RAID rebuild / contention from scrubbing:
        in-flight transfers finish at the new rate from this instant.  The
        AdapTBF controller does not observe capacity directly — it keeps
        allocating ``T_i`` tokens — so this is the failure-injection hook
        for testing behaviour when tokens outrun the disk.
        """
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        self._advance(self.env.now)
        self.capacity_bps = float(capacity_bps)
        self._reschedule()

    def fail_inflight(self, exc: Optional[BaseException] = None) -> int:
        """Abort every in-flight transfer: fail its completion event.

        The crash path of the fault axis.  Partially-served bytes are
        discarded (they never reach ``bytes_served`` — the work is lost,
        as on a real device that drops its write-back cache), the pending
        completion-check timer is lazily cancelled, and each transfer's
        done event *fails* with ``exc`` in transfer-id order, so waiters
        observe the crash at deterministic heap positions.  Returns the
        number of transfers aborted.
        """
        if exc is None:
            exc = OstUnavailable(self.name)
        self._advance(self.env.now)
        aborted = list(self._done_events.values())
        self._remaining.clear()
        self._sizes.clear()
        self._done_events.clear()
        for done in aborted:
            done.fail(exc)
        self._reschedule()
        return len(aborted)

    @property
    def active_transfers(self) -> int:
        """Number of in-flight transfers."""
        return len(self._remaining)

    @property
    def bytes_served(self) -> float:
        """Total bytes completed so far (for utilization accounting)."""
        return self._bytes_served

    def utilization(self, since: float, until: Optional[float] = None) -> float:
        """Fraction of capacity used over ``[since, until]``.

        A convenience for experiment summaries; relies on
        :attr:`bytes_served` having been sampled at ``since`` by the caller.
        """
        until = self.env.now if until is None else until
        span = until - since
        if span <= 0:
            return 0.0
        return self._bytes_served / (self.capacity_bps * span)

    # -- fluid-flow mechanics ---------------------------------------------------
    def _advance(self, now: float) -> None:
        """Drain work proportionally over the elapsed interval."""
        elapsed = now - self._last
        self._last = now
        if elapsed <= 0 or not self._remaining:
            return
        share = self.capacity_bps * elapsed / len(self._remaining)
        for tid in self._remaining:
            self._remaining[tid] -= share

    def _reschedule(self) -> None:
        """Schedule a completion check for the next transfer to finish.

        The previous pending check (if any) is lazily cancelled: the engine
        skips it when its heap entry surfaces, so superseded checks cost
        nothing to dispatch.
        """
        stale = self._check_timer
        if stale is not None and stale.callbacks is not None:
            stale.cancel()
        if not self._remaining:
            self._check_timer = None
            return
        min_left = min(self._remaining.values())
        per_flow = self.capacity_bps / len(self._remaining)
        delay = max(0.0, min_left) / per_flow
        timer = self.env.timeout(delay)
        timer.callbacks.append(self._on_check_cb)
        self._check_timer = timer

    def _on_check(self, _event: Event) -> None:
        now = self.env.now
        self._advance(now)
        finished = [
            tid for tid, left in self._remaining.items() if left <= _EPS_BYTES
        ]
        # Floating-point guard: the scheduled check targets the minimum, so
        # at least one transfer must be complete.
        if not finished:
            nearest = min(self._remaining.values())
            assert nearest <= 1e-3, f"completion check fired early ({nearest} B left)"
            finished = [
                tid
                for tid, left in self._remaining.items()
                if math.isclose(left, nearest, abs_tol=1e-3)
            ]
        for tid in finished:
            self._remaining.pop(tid)
            self._bytes_served += self._sizes.pop(tid)
            done = self._done_events.pop(tid)
            done.succeed(now)
        self._reschedule()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Ost {self.name} cap={self.capacity_bps:.0f}B/s "
            f"active={len(self._remaining)}>"
        )
