"""Experiment E4 — §IV-H token allocation frequency sweep (paper Fig. 9).

Reruns the §IV-F workload under AdapTBF with observation periods from
100 ms up to 2 s (scaled with the scenario's time scale so the ratio of
control period to burst cadence matches the paper's).  Expected shape:
aggregate I/O throughput is (weakly) decreasing in the allocation period —
finer control adapts to bursts faster — which is why the paper selects
100 ms.

Since PR 2 the sweep itself runs through the campaign engine: ``run``
builds the registered ``freq-sweep`` campaign (one cell per allocation
period) and executes it via :func:`repro.campaigns.run_campaign` — pass
``jobs=N`` to fan the periods out across worker processes.  At the default
capacity the aggregates are identical to the pre-campaign hand-rolled
loop; a non-default ``capacity_mib_s`` now also sizes the continuous jobs
(the registered scenario's semantics, DESIGN.md §2) instead of leaving
their volume pinned to the scenario config's separate 1024 MiB/s hint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import bench_scale
from repro.metrics.tables import format_table
from repro.workloads.scenarios import ScenarioConfig

__all__ = ["run", "report", "check_shapes", "PAPER_INTERVALS_S"]

#: The paper sweeps the allocation period starting at its 100 ms choice.
PAPER_INTERVALS_S = (0.1, 0.25, 0.5, 1.0, 2.0)


@dataclass
class FrequencySweep:
    """Aggregate throughput per allocation interval."""

    intervals_s: List[float]
    aggregates: Dict[float, float]

    def aggregate(self, interval_s: float) -> float:
        return self.aggregates[interval_s]


@dataclass
class ShapeCheck:
    claim: str
    passed: bool
    detail: str


def run(
    scenario_cfg: Optional[ScenarioConfig] = None,
    intervals_s: Sequence[float] = PAPER_INTERVALS_S,
    capacity_mib_s: float = 1024.0,
    jobs: int = 1,
) -> FrequencySweep:
    """Sweep the AdapTBF observation period over the §IV-F workload."""
    # Function-level import: repro.campaigns.builtin imports this module
    # for PAPER_INTERVALS_S, so the campaign engine must load lazily.
    from repro.campaigns import CAMPAIGNS, run_campaign

    cfg = scenario_cfg or bench_scale()
    scaled = [interval * cfg.time_scale for interval in intervals_s]
    campaign = CAMPAIGNS.build(
        "freq-sweep",
        # str() round-trips floats exactly, so each cell's interval_s is
        # bit-identical to the scaled value computed here.
        intervals=",".join(str(interval) for interval in scaled),
        data_scale=cfg.data_scale,
        time_scale=cfg.time_scale,
        heavy_procs=cfg.heavy_procs,
        window=cfg.window,
        capacity_mib_s=capacity_mib_s,
    )
    result = run_campaign(campaign, jobs=jobs)
    aggregates = {
        outcome.params["interval_s"]: outcome.row.aggregate_mib_s
        for outcome in result.outcomes
    }
    return FrequencySweep(intervals_s=scaled, aggregates=aggregates)


def check_shapes(sweep: FrequencySweep) -> List[ShapeCheck]:
    aggregates = [sweep.aggregate(i) for i in sweep.intervals_s]
    finest, coarsest = aggregates[0], aggregates[-1]
    return [
        ShapeCheck(
            claim="finest allocation period yields the highest aggregate "
            "throughput",
            passed=finest >= max(aggregates) * 0.98,
            detail=f"aggregates={[round(a, 1) for a in aggregates]}",
        ),
        ShapeCheck(
            claim="throughput degrades from finest to coarsest period",
            passed=finest > coarsest,
            detail=(
                f"{sweep.intervals_s[0]*1e3:.0f}ms: {finest:.1f} vs "
                f"{sweep.intervals_s[-1]*1e3:.0f}ms: {coarsest:.1f} MiB/s"
            ),
        ),
    ]


def report(sweep: FrequencySweep) -> str:
    rows = [
        [f"{interval * 1e3:.0f} ms", sweep.aggregate(interval)]
        for interval in sweep.intervals_s
    ]
    parts = [
        "=" * 72,
        "E4 / Fig. 9: aggregate throughput vs token allocation frequency",
        "=" * 72,
        format_table(
            ["allocation period", "aggregate MiB/s"],
            rows,
            title="Fig 9: I/O throughput for varying allocation frequency",
        ),
        "",
        "Shape checks:",
    ]
    for check in check_shapes(sweep):
        status = "PASS" if check.passed else "FAIL"
        parts.append(f"  [{status}] {check.claim}")
        parts.append(f"         {check.detail}")
    return "\n".join(parts)
