"""Experiment E4 — §IV-H token allocation frequency sweep (paper Fig. 9).

Reruns the §IV-F workload under AdapTBF with observation periods from
100 ms up to 2 s (scaled with the scenario's time scale so the ratio of
control period to burst cadence matches the paper's).  Expected shape:
aggregate I/O throughput is (weakly) decreasing in the allocation period —
finer control adapts to bursts faster — which is why the paper selects
100 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import as_spec, bench_scale
from repro.metrics.tables import format_table
from repro.scenarios.runner import RunResult, run_scenario
from repro.workloads.scenarios import ScenarioConfig, scenario_recompensation

__all__ = ["run", "report", "check_shapes", "PAPER_INTERVALS_S"]

#: The paper sweeps the allocation period starting at its 100 ms choice.
PAPER_INTERVALS_S = (0.1, 0.25, 0.5, 1.0, 2.0)


@dataclass
class FrequencySweep:
    """Aggregate throughput per allocation interval."""

    intervals_s: List[float]
    results: Dict[float, RunResult]

    def aggregate(self, interval_s: float) -> float:
        return self.results[interval_s].summary.aggregate_mib_s


@dataclass
class ShapeCheck:
    claim: str
    passed: bool
    detail: str


def run(
    scenario_cfg: Optional[ScenarioConfig] = None,
    intervals_s: Sequence[float] = PAPER_INTERVALS_S,
    capacity_mib_s: float = 1024.0,
) -> FrequencySweep:
    """Sweep the AdapTBF observation period over the §IV-F workload."""
    cfg = scenario_cfg or bench_scale()
    results: Dict[float, RunResult] = {}
    scaled: List[float] = []
    for paper_interval in intervals_s:
        interval = paper_interval * cfg.time_scale
        scaled.append(interval)
        spec = as_spec(
            scenario_recompensation(cfg),
            interval_s=interval,
            capacity_mib_s=capacity_mib_s,
        )
        results[interval] = run_scenario(spec)
    return FrequencySweep(intervals_s=scaled, results=results)


def check_shapes(sweep: FrequencySweep) -> List[ShapeCheck]:
    aggregates = [sweep.aggregate(i) for i in sweep.intervals_s]
    finest, coarsest = aggregates[0], aggregates[-1]
    return [
        ShapeCheck(
            claim="finest allocation period yields the highest aggregate "
            "throughput",
            passed=finest >= max(aggregates) * 0.98,
            detail=f"aggregates={[round(a, 1) for a in aggregates]}",
        ),
        ShapeCheck(
            claim="throughput degrades from finest to coarsest period",
            passed=finest > coarsest,
            detail=(
                f"{sweep.intervals_s[0]*1e3:.0f}ms: {finest:.1f} vs "
                f"{sweep.intervals_s[-1]*1e3:.0f}ms: {coarsest:.1f} MiB/s"
            ),
        ),
    ]


def report(sweep: FrequencySweep) -> str:
    rows = [
        [f"{interval * 1e3:.0f} ms", sweep.aggregate(interval)]
        for interval in sweep.intervals_s
    ]
    parts = [
        "=" * 72,
        "E4 / Fig. 9: aggregate throughput vs token allocation frequency",
        "=" * 72,
        format_table(
            ["allocation period", "aggregate MiB/s"],
            rows,
            title="Fig 9: I/O throughput for varying allocation frequency",
        ),
        "",
        "Shape checks:",
    ]
    for check in check_shapes(sweep):
        status = "PASS" if check.passed else "FAIL"
        parts.append(f"  [{status}] {check.claim}")
        parts.append(f"         {check.detail}")
    return "\n".join(parts)
