"""Experiment E1 — §IV-D token allocation (paper Fig. 3 and Fig. 4).

Four identical sequential-write jobs with priorities 10/10/30/50 % run to
completion under each mechanism.  The paper's observations, which
:func:`check_shapes` verifies programmatically:

* AdapTBF allocates bandwidth proportionally to priority (Fig. 3c), unlike
  No BW (Fig. 3a);
* AdapTBF re-allocates as jobs finish, unlike Static BW (Fig. 3b);
* AdapTBF attains the highest overall throughput while favouring the
  high-priority jobs 3 and 4 (Fig. 4a);
* versus No BW, jobs 3/4 gain significantly while jobs 1/2 lose only
  mildly (Fig. 4b).

The workload is the registered ``allocation`` scenario; this module is the
thin plotting adapter running it under all three mechanisms through the
declarative pipeline (``python -m repro.experiments run fig3``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import (
    MechanismComparison,
    bench_scale,
    compare_mechanisms,
)
from repro.metrics.summary import gains_versus
from repro.workloads.scenarios import ScenarioConfig, scenario_allocation

__all__ = ["run", "report", "check_shapes"]


@dataclass
class ShapeCheck:
    """One verified qualitative claim."""

    claim: str
    passed: bool
    detail: str


def run(
    scenario_cfg: Optional[ScenarioConfig] = None,
    interval_s: float = 0.1,
    capacity_mib_s: float = 1024.0,
) -> MechanismComparison:
    """Run the §IV-D experiment under all three mechanisms."""
    cfg = scenario_cfg or bench_scale()
    return compare_mechanisms(
        scenario_allocation(cfg),
        interval_s=interval_s,
        capacity_mib_s=capacity_mib_s,
    )


def check_shapes(cmp: MechanismComparison) -> List[ShapeCheck]:
    """Verify the paper's qualitative claims for Fig. 3/4."""
    checks: List[ShapeCheck] = []
    adap = cmp.adaptbf.summary

    # 1. Priority ordering of achieved bandwidth under AdapTBF.
    ordered = (
        adap.job("job4") > adap.job("job3") > max(adap.job("job1"), adap.job("job2"))
    )
    checks.append(
        ShapeCheck(
            claim="AdapTBF bandwidth ordered by priority (job4 > job3 > job1/2)",
            passed=bool(ordered),
            detail=f"{ {j: round(adap.job(j), 1) for j in cmp.job_ids} }",
        )
    )

    # 2. AdapTBF aggregate beats Static BW (work conservation).
    checks.append(
        ShapeCheck(
            claim="AdapTBF aggregate > Static BW aggregate",
            passed=adap.aggregate_mib_s > cmp.static.summary.aggregate_mib_s,
            detail=(
                f"adaptbf={adap.aggregate_mib_s:.1f} "
                f"static={cmp.static.summary.aggregate_mib_s:.1f} MiB/s"
            ),
        )
    )

    # 3. Under AdapTBF high-priority jobs finish earlier.
    completions = cmp.adaptbf.job_completion_s
    finish_order_ok = (
        completions.get("job4", float("inf"))
        <= completions.get("job3", float("inf"))
        <= max(
            completions.get("job1", float("inf")),
            completions.get("job2", float("inf")),
        )
    )
    checks.append(
        ShapeCheck(
            claim="higher-priority jobs complete earlier under AdapTBF",
            passed=bool(finish_order_ok),
            detail=f"{ {j: round(t, 2) for j, t in sorted(completions.items())} }",
        )
    )

    # 4. Gains vs No BW: job3/job4 gain, job1/job2 lose only mildly.
    gains = gains_versus(adap, cmp.none.summary)
    checks.append(
        ShapeCheck(
            claim="jobs 3-4 gain vs No BW; jobs 1-2 lose less than they gain",
            passed=(
                gains["job4"] > 0
                and gains["job3"] > 0
                and gains["job1"] > -60.0
                and gains["job2"] > -60.0
            ),
            detail=f"{ {j: round(g, 1) for j, g in gains.items()} }",
        )
    )
    return checks


def report(cmp: MechanismComparison) -> str:
    """Text reproduction of Fig. 3 (series) and Fig. 4 (tables)."""
    parts = [
        "=" * 72,
        "E1 / Fig. 3-4: token allocation (4 jobs, priorities 10/10/30/50%)",
        "=" * 72,
        cmp.bandwidth_table("Fig 4(a): achieved bandwidth (MiB/s)"),
        "",
        cmp.gains_table(
            "none", "Fig 4(b): AdapTBF gain/loss vs No BW (%)"
        ),
        "",
    ]
    for mechanism in ("none", "static", "adaptbf"):
        parts.append(cmp.timeline_report(mechanism))
        parts.append("")
    parts.append("Shape checks:")
    for check in check_shapes(cmp):
        status = "PASS" if check.passed else "FAIL"
        parts.append(f"  [{status}] {check.claim}")
        parts.append(f"         {check.detail}")
    return "\n".join(parts)
