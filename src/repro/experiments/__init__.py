"""Per-figure experiment harnesses.

One module per artefact of the paper's evaluation section; every benchmark
in ``benchmarks/`` and most examples call into these, so the exact workload
and reporting logic lives in one place:

==============================  ==============================================
Module                          Paper artefact
==============================  ==============================================
:mod:`repro.experiments.fig3_fig4`   §IV-D token allocation (Fig. 3 timelines,
                                     Fig. 4 bandwidth/gains)
:mod:`repro.experiments.fig5_fig6`   §IV-E token redistribution (Fig. 5, Fig. 6)
:mod:`repro.experiments.fig7_fig8`   §IV-F token re-compensation (Fig. 7 records,
                                     Fig. 8 bandwidth/gains)
:mod:`repro.experiments.fig9`        §IV-H allocation-frequency sweep
:mod:`repro.experiments.overhead`    §IV-G framework overhead analysis
==============================  ==============================================

Every adapter is a thin layer over the declarative scenario pipeline
(:mod:`repro.scenarios`): the workload is lifted into a ``ScenarioSpec``
and executed once per mechanism via ``run_mechanisms``.  The unified CLI —
``python -m repro.experiments run <scenario|figN> / list / describe`` —
reaches both the figure adapters and every registered scenario.

Scale: by default experiments run a reduced configuration (≈1/16 data,
≈1/10 time) that finishes in seconds and preserves every qualitative shape;
set ``REPRO_FULL=1`` (or pass ``--full``) to run the paper's full-size
configuration.
"""

from repro.experiments.common import (
    MechanismComparison,
    bench_scale,
    compare_mechanisms,
)

__all__ = [
    "MechanismComparison",
    "bench_scale",
    "compare_mechanisms",
]
