"""Experiment E3 — §IV-F token re-compensation (paper Fig. 7 and Fig. 8).

Four equal-priority jobs.  Jobs 1–3 issue small periodic bursts and are
otherwise idle until their continuous stream switches on at 20/50/80 s;
job 4 drives continuous I/O from t=0.  Early on, jobs 1–3 lend their unused
tokens to job 4 (positive records); when their streams start, AdapTBF
reclaims those tokens (records return toward zero).

Outputs:

* Fig. 7 — per-job *record* and *demand* time series from the controller
  history;
* Fig. 8(a) — achieved bandwidth per mechanism; AdapTBF ≈ No BW aggregate,
  Static BW significantly degraded;
* Fig. 8(b) — AdapTBF gains for jobs 1–3 vs both baselines, minimal loss
  for job 4 vs No BW.

The workload is the registered ``recompensation`` scenario; this module is
the thin plotting adapter running it under all three mechanisms through
the declarative pipeline (``python -m repro.experiments run fig7``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.experiments.common import (
    MechanismComparison,
    bench_scale,
    compare_mechanisms,
)
from repro.metrics.summary import gains_versus
from repro.metrics.tables import format_table
from repro.workloads.scenarios import ScenarioConfig, scenario_recompensation

__all__ = ["run", "report", "check_shapes", "record_summary"]


@dataclass
class ShapeCheck:
    claim: str
    passed: bool
    detail: str


def run(
    scenario_cfg: Optional[ScenarioConfig] = None,
    interval_s: float = 0.1,
    capacity_mib_s: float = 1024.0,
) -> MechanismComparison:
    """Run the §IV-F experiment under all three mechanisms."""
    cfg = scenario_cfg or bench_scale()
    return compare_mechanisms(
        scenario_recompensation(cfg),
        interval_s=interval_s,
        capacity_mib_s=capacity_mib_s,
    )


def record_summary(cmp: MechanismComparison, job_id: str) -> dict:
    """Fig. 7 statistics for one job's record series under AdapTBF."""
    series = cmp.adaptbf.record_series(job_id)
    if not series:
        return {"peak": 0, "final": 0, "peak_time": 0.0}
    values = np.array([v for _, v in series], dtype=float)
    times = np.array([t for t, _ in series])
    peak_idx = int(np.argmax(values))
    return {
        "peak": float(values[peak_idx]),
        "peak_time": float(times[peak_idx]),
        "final": float(values[-1]),
    }


def check_shapes(cmp: MechanismComparison) -> List[ShapeCheck]:
    checks: List[ShapeCheck] = []
    gains_none = gains_versus(cmp.adaptbf.summary, cmp.none.summary)
    gains_static = gains_versus(cmp.adaptbf.summary, cmp.static.summary)

    # 1. Jobs 1-3 lend early: records go positive before their streams start.
    lent = {}
    for job in ("job1", "job2", "job3"):
        stats = record_summary(cmp, job)
        lent[job] = stats["peak"]
    checks.append(
        ShapeCheck(
            claim="jobs 1-3 accumulate positive (lending) records",
            passed=all(peak > 0 for peak in lent.values()),
            detail=f"peak records: { {j: round(p) for j, p in lent.items()} }",
        )
    )

    # 2. Job 4 borrows: its record goes negative.
    series4 = [v for _, v in cmp.adaptbf.record_series("job4")]
    checks.append(
        ShapeCheck(
            claim="job 4 accumulates a negative (borrowing) record",
            passed=bool(series4) and min(series4) < 0,
            detail=f"job4 record min: {min(series4) if series4 else 'n/a'}",
        )
    )

    # 3. Re-compensation: job3's record declines from its peak once its
    #    continuous stream starts (the Fig. 7 arc).
    stats3 = record_summary(cmp, "job3")
    checks.append(
        ShapeCheck(
            claim="job3 is re-compensated after its stream starts "
            "(record falls from peak)",
            passed=stats3["final"] < stats3["peak"],
            detail=(
                f"peak {stats3['peak']:.0f} @ {stats3['peak_time']:.1f}s -> "
                f"final {stats3['final']:.0f}"
            ),
        )
    )

    # 4. AdapTBF aggregate on par with No BW; Static significantly lower.
    agg_adap = cmp.adaptbf.summary.aggregate_mib_s
    agg_none = cmp.none.summary.aggregate_mib_s
    agg_static = cmp.static.summary.aggregate_mib_s
    checks.append(
        ShapeCheck(
            claim="AdapTBF aggregate ≈ No BW (>= 80%); Static much lower",
            passed=agg_adap >= 0.8 * agg_none and agg_static < 0.8 * agg_adap,
            detail=(
                f"none={agg_none:.0f} adaptbf={agg_adap:.0f} "
                f"static={agg_static:.0f} MiB/s"
            ),
        )
    )

    # 5. Gains for jobs 1-3 vs both baselines (Fig. 8b).
    checks.append(
        ShapeCheck(
            claim="jobs 1-3 gain vs both baselines",
            passed=(
                all(gains_none[j] > 0 for j in ("job1", "job2", "job3"))
                and all(gains_static[j] > 0 for j in ("job1", "job2", "job3"))
            ),
            detail=(
                f"vs none { {j: round(gains_none[j], 1) for j in gains_none} } "
                f"vs static { {j: round(gains_static[j], 1) for j in gains_static} }"
            ),
        )
    )

    # 6. Job 4's loss vs No BW is the fairness correction, not starvation:
    #    it must still beat its static share (borrowing keeps it above 25%).
    #    The paper reports a smaller loss because its No BW baseline gives
    #    the hog a less extreme share than our per-RPC FIFO does (see
    #    EXPERIMENTS.md); the structural claim is bounded loss + static win.
    checks.append(
        ShapeCheck(
            claim="job4 bounded loss vs No BW and clear gain vs Static BW",
            passed=gains_none["job4"] > -75.0 and gains_static["job4"] > 0,
            detail=(
                f"job4: vs none {gains_none['job4']:.1f}%, "
                f"vs static {gains_static['job4']:.1f}%"
            ),
        )
    )
    return checks


def report(cmp: MechanismComparison) -> str:
    parts = [
        "=" * 72,
        "E3 / Fig. 7-8: token re-compensation (equal priorities, delayed "
        "streams)",
        "=" * 72,
        cmp.bandwidth_table("Fig 8(a): achieved bandwidth (MiB/s)"),
        "",
        cmp.gains_table("none", "Fig 8(b): AdapTBF gain/loss vs No BW (%)"),
        "",
        cmp.gains_table("static", "Fig 8(b): AdapTBF gain/loss vs Static BW (%)"),
        "",
        "Fig 7: lending/borrowing records (AdapTBF):",
    ]
    rows = []
    for job in cmp.job_ids:
        stats = record_summary(cmp, job)
        rows.append([job, stats["peak"], stats["peak_time"], stats["final"]])
    parts.append(
        format_table(
            ["job", "peak_record", "peak_time_s", "final_record"], rows
        )
    )
    parts.append("")
    parts.append("Fig 7: record trajectory samples (tokens lent>0 / borrowed<0):")
    for job in cmp.job_ids:
        series = cmp.adaptbf.record_series(job)
        if not series:
            continue
        step = max(1, len(series) // 12)
        samples = ", ".join(
            f"{t:.1f}s:{v:+d}" for t, v in series[::step]
        )
        parts.append(f"  {job}: {samples}")
    parts.append("")
    parts.append("Shape checks:")
    for check in check_shapes(cmp):
        status = "PASS" if check.passed else "FAIL"
        parts.append(f"  [{status}] {check.claim}")
        parts.append(f"         {check.detail}")
    return "\n".join(parts)
