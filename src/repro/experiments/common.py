"""Shared plumbing for the per-figure experiment modules.

Every figure adapter runs through the declarative pipeline: the workload
(a registered scenario or a legacy job mix) is lifted into a
:class:`~repro.scenarios.spec.ScenarioSpec` and executed once per
mechanism via :func:`repro.scenarios.runner.run_mechanisms`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.metrics.summary import BandwidthSummary, gains_versus
from repro.metrics.tables import format_gains, format_series, format_table
from repro.scenarios.runner import PAPER_MECHANISMS, RunResult, run_mechanisms
from repro.scenarios.spec import (
    PolicySpec,
    RunSpec,
    ScenarioSpec,
    TopologySpec,
    from_scenario,
)
from repro.workloads.scenarios import BENCH_SCALE, Scenario, ScenarioConfig

__all__ = [
    "bench_scale",
    "full_scale",
    "as_spec",
    "MechanismComparison",
    "compare_mechanisms",
]

#: The three mechanism names of §IV-C, in presentation order.
MECHANISMS = PAPER_MECHANISMS


def full_scale() -> ScenarioConfig:
    """The paper's configuration: 1 GiB files, 20/50/80 s delays."""
    return ScenarioConfig(data_scale=1.0, time_scale=1.0)


def bench_scale() -> ScenarioConfig:
    """Reduced configuration for benches/tests (set ``REPRO_FULL=1`` to
    run the paper-size configuration instead).

    Scaling data and time by the same 1/10 keeps every burst's size
    relative to its period — and hence the demand-to-capacity regime —
    unchanged, while a full three-mechanism comparison runs in a few
    wall-clock seconds.
    """
    if os.environ.get("REPRO_FULL"):
        return full_scale()
    return ScenarioConfig(data_scale=BENCH_SCALE, time_scale=BENCH_SCALE)


def as_spec(
    scenario: Union[Scenario, ScenarioSpec],
    interval_s: float = 0.1,
    capacity_mib_s: float = 1024.0,
    overhead_s: float = 0.0,
    variant: str = "full",
    bin_s: Optional[float] = None,
) -> ScenarioSpec:
    """Lift a workload into a spec with the figure-standard knob set.

    A :class:`ScenarioSpec` passes through unchanged (its own topology,
    policy and run settings win); a legacy :class:`Scenario` job mix gets
    the single-OST topology and the given policy knobs.
    """
    if isinstance(scenario, ScenarioSpec):
        return scenario
    return from_scenario(
        scenario,
        topology=TopologySpec(capacity_mib_s=capacity_mib_s),
        policy=PolicySpec(
            interval_s=interval_s, overhead_s=overhead_s, variant=variant
        ),
        run=RunSpec(duration_s=scenario.duration_s, bin_s=bin_s),
    )


@dataclass
class MechanismComparison:
    """Results of one scenario run under several mechanisms."""

    scenario: Union[Scenario, ScenarioSpec]
    results: Dict[str, RunResult]  # keyed by registered mechanism name

    @property
    def none(self) -> RunResult:
        return self.results["none"]

    @property
    def static(self) -> RunResult:
        return self.results["static"]

    @property
    def adaptbf(self) -> RunResult:
        return self.results["adaptbf"]

    @property
    def job_ids(self) -> List[str]:
        return [job.job_id for job in self.scenario.jobs]

    # -- reporting -----------------------------------------------------------
    def bandwidth_table(self, title: str) -> str:
        """Fig. 4(a)/6(a)/8(a): achieved bandwidth per job and overall."""
        headers = ["mechanism"] + self.job_ids + ["overall"]
        rows = []
        for mech, result in self.results.items():
            summary: BandwidthSummary = result.summary
            rows.append(
                [mech]
                + [summary.job(j) for j in self.job_ids]
                + [summary.aggregate_mib_s]
            )
        return format_table(headers, rows, title=title)

    def gains_table(self, versus: str, title: str) -> str:
        """Fig. 4(b)/6(b)/8(b): AdapTBF gain/loss vs a baseline, percent."""
        gains = gains_versus(self.adaptbf.summary, self.results[versus].summary)
        return format_gains(gains, title=title)

    def timeline_report(self, mechanism: str, resample_s: float = 1.0) -> str:
        """Fig. 3/5-style per-job throughput series for one mechanism."""
        result = self.results[mechanism]
        blocks = [f"--- {mechanism}: per-job throughput timeline ---"]
        horizon = result.duration_s
        for job in self.job_ids:
            times, values = result.timeline.series(job, until=horizon)
            blocks.append(
                format_series(f"{job}", times, values, resample_s=resample_s)
            )
        return "\n".join(blocks)


def compare_mechanisms(
    scenario: Union[Scenario, ScenarioSpec],
    interval_s: float = 0.1,
    capacity_mib_s: float = 1024.0,
    overhead_s: float = 0.0,
    variant: str = "full",
    mechanisms=MECHANISMS,
    bin_s: Optional[float] = None,
) -> MechanismComparison:
    """Run ``scenario`` under each mechanism with otherwise equal hardware."""
    spec = as_spec(
        scenario,
        interval_s=interval_s,
        capacity_mib_s=capacity_mib_s,
        overhead_s=overhead_s,
        variant=variant,
        bin_s=bin_s,
    )
    return MechanismComparison(
        scenario=scenario, results=run_mechanisms(spec, mechanisms)
    )
