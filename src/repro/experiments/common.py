"""Shared plumbing for the per-figure experiment modules."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.builder import ClusterConfig, Mechanism
from repro.cluster.experiment import ExperimentResult, run_scenario
from repro.metrics.summary import BandwidthSummary, gains_versus
from repro.metrics.tables import format_gains, format_series, format_table
from repro.workloads.scenarios import Scenario, ScenarioConfig

__all__ = [
    "bench_scale",
    "full_scale",
    "MechanismComparison",
    "compare_mechanisms",
]

#: The three mechanisms of §IV-C, in presentation order.
MECHANISMS = (Mechanism.NONE, Mechanism.STATIC, Mechanism.ADAPTBF)


def full_scale() -> ScenarioConfig:
    """The paper's configuration: 1 GiB files, 20/50/80 s delays."""
    return ScenarioConfig(data_scale=1.0, time_scale=1.0)


def bench_scale() -> ScenarioConfig:
    """Reduced configuration for benches/tests (set ``REPRO_FULL=1`` to
    run the paper-size configuration instead).

    Scaling data and time by the same 1/10 keeps every burst's size
    relative to its period — and hence the demand-to-capacity regime —
    unchanged, while a full three-mechanism comparison runs in a few
    wall-clock seconds.
    """
    if os.environ.get("REPRO_FULL"):
        return full_scale()
    return ScenarioConfig(data_scale=1 / 10, time_scale=1 / 10)


@dataclass
class MechanismComparison:
    """Results of one scenario run under all three mechanisms."""

    scenario: Scenario
    results: Dict[str, ExperimentResult]  # keyed by Mechanism.value

    @property
    def none(self) -> ExperimentResult:
        return self.results[Mechanism.NONE.value]

    @property
    def static(self) -> ExperimentResult:
        return self.results[Mechanism.STATIC.value]

    @property
    def adaptbf(self) -> ExperimentResult:
        return self.results[Mechanism.ADAPTBF.value]

    @property
    def job_ids(self) -> List[str]:
        return [job.job_id for job in self.scenario.jobs]

    # -- reporting -----------------------------------------------------------
    def bandwidth_table(self, title: str) -> str:
        """Fig. 4(a)/6(a)/8(a): achieved bandwidth per job and overall."""
        headers = ["mechanism"] + self.job_ids + ["overall"]
        rows = []
        for mech, result in self.results.items():
            summary: BandwidthSummary = result.summary
            rows.append(
                [mech]
                + [summary.job(j) for j in self.job_ids]
                + [summary.aggregate_mib_s]
            )
        return format_table(headers, rows, title=title)

    def gains_table(self, versus: str, title: str) -> str:
        """Fig. 4(b)/6(b)/8(b): AdapTBF gain/loss vs a baseline, percent."""
        gains = gains_versus(self.adaptbf.summary, self.results[versus].summary)
        return format_gains(gains, title=title)

    def timeline_report(self, mechanism: str, resample_s: float = 1.0) -> str:
        """Fig. 3/5-style per-job throughput series for one mechanism."""
        result = self.results[mechanism]
        blocks = [f"--- {mechanism}: per-job throughput timeline ---"]
        horizon = result.duration_s
        for job in self.job_ids:
            times, values = result.timeline.series(job, until=horizon)
            blocks.append(
                format_series(f"{job}", times, values, resample_s=resample_s)
            )
        return "\n".join(blocks)


def compare_mechanisms(
    scenario: Scenario,
    interval_s: float = 0.1,
    capacity_mib_s: float = 1024.0,
    overhead_s: float = 0.0,
    variant: str = "full",
    mechanisms=MECHANISMS,
    bin_s: Optional[float] = None,
) -> MechanismComparison:
    """Run ``scenario`` under each mechanism with otherwise equal hardware."""
    results: Dict[str, ExperimentResult] = {}
    for mechanism in mechanisms:
        config = ClusterConfig(
            mechanism=mechanism,
            capacity_mib_s=capacity_mib_s,
            interval_s=interval_s,
            overhead_s=overhead_s,
            variant=variant,
        )
        results[mechanism.value] = run_scenario(
            scenario, config, bin_s=bin_s if bin_s is not None else interval_s
        )
    return MechanismComparison(scenario=scenario, results=results)
