"""Command-line experiment runner.

Usage::

    python -m repro.experiments fig3            # E1 (Fig. 3-4) report
    python -m repro.experiments fig5 --full     # E2 at paper scale
    python -m repro.experiments fig7 --csv out/ # E3 + CSV export
    python -m repro.experiments fig9
    python -m repro.experiments overhead
    python -m repro.experiments all             # everything, in order

Exit status is non-zero if any shape check fails, so the runner doubles as
a reproduction gate in CI.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import fig3_fig4, fig5_fig6, fig7_fig8, fig9, overhead
from repro.experiments.common import bench_scale, full_scale
from repro.metrics.export import export_all

FIGURE_EXPERIMENTS = {
    "fig3": fig3_fig4,
    "fig4": fig3_fig4,
    "fig5": fig5_fig6,
    "fig6": fig5_fig6,
    "fig7": fig7_fig8,
    "fig8": fig7_fig8,
}


def _run_figure(module, name: str, scale, csv_dir) -> bool:
    comparison = module.run(scale)
    print(module.report(comparison))
    if csv_dir:
        written = export_all(comparison.results, csv_dir, prefix=name)
        print(f"\nCSV written: {', '.join(str(p) for p in written.values())}")
    return all(check.passed for check in module.check_shapes(comparison))


def _run_fig9(scale, csv_dir) -> bool:
    sweep = fig9.run(scale)
    print(fig9.report(sweep))
    return all(check.passed for check in fig9.check_shapes(sweep))


def _run_overhead() -> bool:
    result = overhead.run()
    print(overhead.report(result))
    return all(check.passed for check in overhead.check_shapes(result))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the AdapTBF paper's evaluation artefacts.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(set(FIGURE_EXPERIMENTS) | {"fig9", "overhead", "all"}),
        help="which paper artefact to regenerate",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper-size configuration (default: 1/10 scale)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="export the underlying data as CSV into DIR",
    )
    args = parser.parse_args(argv)
    scale = full_scale() if args.full else bench_scale()

    ok = True
    if args.experiment == "all":
        seen = []
        for name, module in FIGURE_EXPERIMENTS.items():
            if module in seen:
                continue
            seen.append(module)
            ok &= _run_figure(module, name, scale, args.csv)
            print()
        ok &= _run_fig9(scale, args.csv)
        print()
        ok &= _run_overhead()
    elif args.experiment == "fig9":
        ok = _run_fig9(scale, args.csv)
    elif args.experiment == "overhead":
        ok = _run_overhead()
    else:
        module = FIGURE_EXPERIMENTS[args.experiment]
        ok = _run_figure(module, args.experiment, scale, args.csv)

    if not ok:
        print("\nSOME SHAPE CHECKS FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
