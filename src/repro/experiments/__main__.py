"""Unified experiment CLI over the scenario registry.

Usage::

    python -m repro.experiments list                    # everything runnable
    python -m repro.experiments describe burst-storm    # spec + parameters
    python -m repro.experiments run quickstart --duration 2
    python -m repro.experiments run burst-storm --param n_jobs=10 --param seed=7
    python -m repro.experiments run fig3                # E1 (Fig. 3-4) report
    python -m repro.experiments run fig5 --full         # E2 at paper scale
    python -m repro.experiments run fig7 --csv out/     # E3 + CSV export
    python -m repro.experiments run all                 # every figure, in order
    python -m repro.experiments campaign list           # registered sweeps
    python -m repro.experiments campaign run freq-sweep --jobs 4 --out out/
    python -m repro.experiments campaign run burst-grid --jobs 4 \\
        --store sweeps/burst --progress            # durable, per-cell commits
    python -m repro.experiments campaign status sweeps/burst   # durable state
    python -m repro.experiments campaign resume sweeps/burst --jobs 4 \\
        --out out/                                 # finish a killed campaign
    python -m repro.experiments mechanism list          # registered mechanisms
    python -m repro.experiments mechanism describe pid  # knobs + behaviour
    python -m repro.experiments run quickstart --mechanism pid \\
        --mechanism-param kp=0.8                        # any registered mech
    python -m repro.experiments campaign run mechanism-shootout --jobs 2
    python -m repro.experiments workload list           # registered patterns
    python -m repro.experiments workload describe poisson
    python -m repro.experiments run quickstart --workload poisson \\
        --workload-param rate_per_s=20                  # any registered load
    python -m repro.experiments run trace-replay        # bundled trace replay
    python -m repro.experiments campaign run workload-shootout --jobs 2
    python -m repro.experiments run quickstart --backend array  # kernel backend
    python -m repro.experiments fault list              # registered faults
    python -m repro.experiments fault describe ost-crash
    python -m repro.experiments run quickstart --fault ost-crash \\
        --fault-param start_s=0.4                       # any registered fault
    python -m repro.experiments campaign run chaos-shootout --jobs 2

Figure names (``fig3`` … ``fig9``, ``overhead``, ``all``) invoke the paper's
reproduction adapters — the three-mechanism comparison, report and shape
checks for that figure; the bare legacy form
``python -m repro.experiments fig3`` still works.  Any other name is looked
up in the scenario registry, built with ``--param k=v`` overrides, and run
through the declarative pipeline.

Exit status is non-zero if any figure shape check fails, so the runner
doubles as a reproduction gate in CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.analysis.cli import add_lint_subparser
from repro.campaigns import (
    CAMPAIGNS,
    CampaignExecutionError,
    CampaignSpec,
    SpecHashMismatchError,
    StoreError,
    StoreNotEmptyError,
    open_store,
    queue_status,
    run_campaign,
    write_artifacts,
)
from repro.core.mechanism import MECHANISMS
from repro.experiments import fig3_fig4, fig5_fig6, fig7_fig8, fig9, overhead
from repro.experiments.common import bench_scale, full_scale
from repro.faults import FAULTS
from repro.metrics.export import export_all
from repro.metrics.report import (
    format_campaign_report,
    format_chaos_table,
    format_decentralization_table,
    format_mechanism_table,
    format_run_report,
)
from repro.scenarios import REGISTRY, run_scenario
from repro.workloads.registry import WORKLOADS
from repro.workloads.scenarios import ScenarioConfig

#: Figure name → (adapter module, registered scenario the workload comes from).
FIGURE_ADAPTERS = {
    "fig3": (fig3_fig4, "allocation"),
    "fig4": (fig3_fig4, "allocation"),
    "fig5": (fig5_fig6, "redistribution"),
    "fig6": (fig5_fig6, "redistribution"),
    "fig7": (fig7_fig8, "recompensation"),
    "fig8": (fig7_fig8, "recompensation"),
    "fig9": (fig9, "recompensation"),
}

#: ScenarioConfig fields figure adapters accept via --param.
FIGURE_SCALE_PARAMS = ("data_scale", "time_scale", "heavy_procs", "window")

LEGACY_COMMANDS = set(FIGURE_ADAPTERS) | {"overhead", "all"}


def _split_params(pairs: Optional[List[str]]) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--param expects k=v, got {pair!r}")
        key, value = pair.split("=", 1)
        params[key.strip()] = value.strip()
    return params


def _figure_scale(args, params: Dict[str, str]) -> ScenarioConfig:
    base = full_scale() if args.full else bench_scale()
    overrides = {}
    for key in FIGURE_SCALE_PARAMS:
        if key in params:
            default = getattr(base, key)
            raw = params.pop(key)
            try:
                overrides[key] = type(default)(raw)
            except ValueError:
                raise SystemExit(
                    f"parameter {key!r}: expected {type(default).__name__}, "
                    f"got {raw!r}"
                ) from None
    if params:
        raise SystemExit(
            f"figure adapters accept only {FIGURE_SCALE_PARAMS} as --param; "
            f"got {sorted(params)}"
        )
    if not overrides:
        return base
    import dataclasses

    return dataclasses.replace(base, **overrides)


def _run_figure(name: str, module, scale, csv_dir) -> bool:
    comparison = module.run(scale)
    print(module.report(comparison))
    if csv_dir:
        written = export_all(comparison.results, csv_dir, prefix=name)
        print(f"\nCSV written: {', '.join(str(p) for p in written.values())}")
    return all(check.passed for check in module.check_shapes(comparison))


def _run_fig9(scale, csv_dir) -> bool:
    sweep = fig9.run(scale)
    print(fig9.report(sweep))
    return all(check.passed for check in fig9.check_shapes(sweep))


def _run_overhead() -> bool:
    result = overhead.run()
    print(overhead.report(result))
    return all(check.passed for check in overhead.check_shapes(result))


def _run_figures(name: str, args, params: Dict[str, str]) -> bool:
    if (
        args.duration is not None
        or args.backend is not None
        or args.mechanism is not None
        or args.mechanism_param
        or args.workload is not None
        or args.workload_param
        or args.fault is not None
        or args.fault_param
    ):
        raise SystemExit(
            "--duration/--backend/--mechanism/--mechanism-param/--workload/"
            "--workload-param/--fault/--fault-param apply to registered "
            "scenarios; figure adapters always run their paper-defined "
            "workload and duration under all three mechanisms (scale them "
            "with --param time_scale=...)"
        )
    if name == "overhead" and (args.full or params):
        raise SystemExit(
            "overhead times the allocation algorithm directly and takes "
            "no --full or --param options"
        )
    scale = _figure_scale(args, params)
    if name == "all":
        ok = True
        seen = []
        for fig_name, (module, _) in FIGURE_ADAPTERS.items():
            if module is fig9 or module in seen:
                continue
            seen.append(module)
            ok &= _run_figure(fig_name, module, scale, args.csv)
            print()
        ok &= _run_fig9(scale, args.csv)
        print()
        ok &= _run_overhead()
        return ok
    if name == "fig9":
        return _run_fig9(scale, args.csv)
    if name == "overhead":
        return _run_overhead()
    module, _ = FIGURE_ADAPTERS[name]
    return _run_figure(name, module, scale, args.csv)


def _run_registered(name: str, args, params: Dict[str, str]) -> bool:
    try:
        spec = REGISTRY.build(name, **REGISTRY.coerce(name, params))
        if args.duration is not None:
            spec = spec.with_run(duration_s=args.duration)
        if args.backend is not None:
            spec = spec.with_run(backend=args.backend)
        mech_params = _split_params(getattr(args, "mechanism_param", None))
        # One with_policy call: params are coerced against the mechanism
        # actually taking effect, never a stale one.
        policy_changes = {}
        if args.mechanism is not None:
            policy_changes["mechanism"] = args.mechanism
        if mech_params:
            target = (
                args.mechanism
                if args.mechanism is not None
                else spec.policy.mechanism
            )
            policy_changes["mechanism_params"] = MECHANISMS.coerce(
                target, mech_params
            )
        if policy_changes:
            spec = spec.with_policy(**policy_changes)
            # Factories validate parameter *values* (latencies, factors)
            # at build time; resolve once now so a bad value is a
            # one-line exit here, not a traceback mid-build.
            MECHANISMS.build(
                spec.policy.mechanism, **dict(spec.policy.mechanism_params)
            )
        wl_params = _split_params(getattr(args, "workload_param", None))
        if args.workload is not None:
            spec = spec.with_workload(
                args.workload, WORKLOADS.coerce(args.workload, wl_params)
            )
        elif wl_params:
            raise SystemExit(
                "--workload-param requires --workload NAME (see "
                "`workload list`)"
            )
        fault_params = _split_params(getattr(args, "fault_param", None))
        if args.fault is not None:
            spec = spec.with_fault(
                args.fault, FAULTS.coerce(args.fault, fault_params)
            )
        elif fault_params:
            raise SystemExit(
                "--fault-param requires --fault NAME (see `fault list`)"
            )
    except (KeyError, ValueError) as exc:
        # KeyError's str() wraps the message in repr quotes; unwrap it.
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    result = run_scenario(spec)
    print(format_run_report(result))
    if args.csv:
        written = export_all(
            {result.mechanism: result}, args.csv, prefix=spec.name
        )
        print(f"\nCSV written: {', '.join(str(p) for p in written.values())}")
    return True


def _cmd_run(args) -> int:
    name = args.scenario.lower().replace("_", "-")
    params = _split_params(args.param)
    if name.replace("-", "") in LEGACY_COMMANDS:
        ok = _run_figures(name.replace("-", ""), args, params)
    else:
        if args.full:
            raise SystemExit(
                "--full applies to figure adapters; use "
                "--param data_scale=1 --param time_scale=1 instead"
            )
        ok = _run_registered(name, args, params)
    if not ok:
        print("\nSOME SHAPE CHECKS FAILED", file=sys.stderr)
        return 1
    return 0


def _campaign_progress(outcome, total, counter) -> None:
    counter[0] += 1
    pairs = " ".join(f"{k}={v!r}" for k, v in sorted(outcome.params.items()))
    print(
        f"  [{counter[0]}/{total}] cell {outcome.index}: {pairs} -> "
        f"{outcome.row.aggregate_mib_s:.1f} MiB/s "
        f"({outcome.wall_s:.2f}s)"
    )


def _report_campaign(campaign, result, args) -> None:
    print()
    print(format_campaign_report(result))
    axis_params = {axis.param for axis in campaign.axes}
    if "mechanism" in axis_params:
        print()
        print(format_mechanism_table(result))
    if "mechanism" in axis_params and "mechanism_params" in axis_params:
        print()
        print(format_decentralization_table(result))
    has_fault = campaign.base_params.get("fault") or any(
        axis.param == "fault" for axis in campaign.axes
    )
    if has_fault and result.outcomes:
        print()
        print(format_chaos_table(result))
    if args.out:
        written = write_artifacts(result, args.out)
        print(
            "\nartifacts written: "
            + ", ".join(str(written[k]) for k in sorted(written))
        )


def _drive_campaign(campaign, args, store, resume: bool) -> int:
    """Shared engine behind ``campaign run`` and ``campaign resume``."""
    print(
        f"campaign {campaign.name!r}: {campaign.n_cells} cell(s) over "
        f"scenario {campaign.scenario!r}, jobs={args.jobs}, "
        f"spec hash {campaign.spec_hash()}"
        + (f", store {store.kind} at {store.location}" if store else "")
    )
    counter = [0]
    progress = (
        (lambda outcome, total: _campaign_progress(outcome, total, counter))
        if args.progress
        else None
    )
    kwargs = {}
    if getattr(args, "lease_ttl", None):
        kwargs["lease_ttl"] = args.lease_ttl
    try:
        result = run_campaign(
            campaign,
            jobs=args.jobs,
            progress=progress,
            store=store,
            resume=resume,
            max_cells=getattr(args, "max_cells", None),
            **kwargs,
        )
    except (SpecHashMismatchError, StoreNotEmptyError, StoreError) as exc:
        raise SystemExit(str(exc)) from None
    except CampaignExecutionError as exc:
        # Partial progress is durable; report what committed, then fail.
        _report_campaign(campaign, exc.result, args)
        print(f"\nERROR: {exc}", file=sys.stderr)
        return 1
    _report_campaign(campaign, result, args)
    if not result.complete:
        remaining = campaign.n_cells - len(result.outcomes)
        print(
            f"\ncampaign incomplete: {remaining} cell(s) still pending "
            "(resume with `campaign resume "
            + (store.location if store else "--store ...")
            + "`)"
        )
    return 0


def _cmd_campaign_run(args) -> int:
    name = args.campaign.lower().replace("_", "-")
    params = _split_params(args.param)
    try:
        campaign = CAMPAIGNS.build(name, **CAMPAIGNS.coerce(name, params))
    except (KeyError, ValueError) as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    if args.resume and not args.store:
        raise SystemExit("--resume requires --store PATH")
    store = None
    if args.store:
        try:
            store = open_store(args.store)
        except StoreError as exc:
            raise SystemExit(str(exc)) from None
    try:
        return _drive_campaign(campaign, args, store, resume=args.resume)
    finally:
        if store is not None:
            store.close()


def _cmd_campaign_status(args) -> int:
    try:
        store = open_store(args.store)
    except StoreError as exc:
        raise SystemExit(str(exc)) from None
    try:
        status = queue_status(store)
    except StoreError as exc:
        raise SystemExit(str(exc)) from None
    finally:
        store.close()
    print(status.describe())
    return 0


def _cmd_campaign_resume(args) -> int:
    try:
        store = open_store(args.store)
    except StoreError as exc:
        raise SystemExit(str(exc)) from None
    try:
        identity = store.campaign()
        if identity is None:
            raise SystemExit(
                f"store at {store.location} holds no campaign yet; start "
                "one with `campaign run <name> --store ...`"
            )
        campaign = CampaignSpec.from_json_dict(identity[1])
        return _drive_campaign(campaign, args, store, resume=True)
    finally:
        store.close()


def _cmd_campaign_list(_args) -> int:
    print("registered campaigns (parameter sweeps through the engine):")
    for name in CAMPAIGNS.names():
        entry = CAMPAIGNS.get(name)
        campaign = entry.build()
        print(
            f"  {name:18s} {entry.description} "
            f"[{campaign.n_cells} cells over {campaign.scenario!r}]"
        )
    print()
    print(
        "run with: python -m repro.experiments campaign run <name> "
        "--jobs N [--param k=v ...] [--out DIR]"
    )
    return 0


def _cmd_campaign_describe(args) -> int:
    name = args.campaign.lower().replace("_", "-")
    try:
        print(CAMPAIGNS.describe(name))
    except (KeyError, ValueError) as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    return 0


def _cmd_mechanism_list(_args) -> int:
    print("registered bandwidth mechanisms (select with --mechanism):")
    for name in MECHANISMS.names():
        entry = MECHANISMS.get(name)
        print(f"  {name:18s} {entry.description}")
    print()
    print(
        "run with:   python -m repro.experiments run <scenario> "
        "--mechanism <name> [--mechanism-param k=v ...]\n"
        "sweep with: python -m repro.experiments campaign run "
        "mechanism-shootout [--param mechanisms=a,b ...]"
    )
    return 0


def _cmd_mechanism_describe(args) -> int:
    try:
        # The registry normalizes names itself (repro.registry.normalize_name).
        print(MECHANISMS.describe(args.mechanism))
    except (KeyError, ValueError) as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    return 0


def _cmd_workload_list(_args) -> int:
    print("registered workload patterns (select with --workload):")
    for name in WORKLOADS.names():
        entry = WORKLOADS.get(name)
        print(f"  {name:18s} {entry.description}")
    print()
    print(
        "run with:   python -m repro.experiments run <scenario> "
        "--workload <name> [--workload-param k=v ...]\n"
        "sweep with: python -m repro.experiments campaign run "
        "workload-shootout [--param workloads=a,b ...]"
    )
    return 0


def _cmd_workload_describe(args) -> int:
    try:
        print(WORKLOADS.describe(args.workload))
    except (KeyError, ValueError) as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    return 0


def _cmd_fault_list(_args) -> int:
    print("registered fault injectors (select with --fault):")
    for name in FAULTS.names():
        entry = FAULTS.get(name)
        print(f"  {name:18s} {entry.description}")
    print()
    print(
        "run with:   python -m repro.experiments run <scenario> "
        "--fault <name> [--fault-param k=v ...]\n"
        "sweep with: python -m repro.experiments campaign run "
        "chaos-shootout [--param fault=<name> ...]"
    )
    return 0


def _cmd_fault_describe(args) -> int:
    try:
        print(FAULTS.describe(args.fault))
    except (KeyError, ValueError) as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    return 0


def _cmd_list(_args) -> int:
    print("figure adapters (paper reproduction, 3-mechanism comparison):")
    seen = {}
    for name, (module, scenario) in FIGURE_ADAPTERS.items():
        seen.setdefault(module, []).append((name, scenario))
    for module, names in seen.items():
        joined = "/".join(n for n, _ in names)
        doc = (module.__doc__ or "").strip().split("\n")[0]
        print(f"  {joined:18s} {doc}")
    print(f"  {'overhead':18s} §IV-G allocation-overhead timing (no cluster)")
    print(f"  {'all':18s} every figure adapter in order")
    print()
    print("registered scenarios (single run through the pipeline):")
    for name in REGISTRY.names():
        entry = REGISTRY.get(name)
        print(f"  {name:18s} {entry.description}")
    print()
    print("registered campaigns (see `campaign list`):")
    for name in CAMPAIGNS.names():
        entry = CAMPAIGNS.get(name)
        print(f"  {name:18s} {entry.description}")
    print()
    print("registered mechanisms (see `mechanism list`):")
    for name in MECHANISMS.names():
        entry = MECHANISMS.get(name)
        print(f"  {name:18s} {entry.description}")
    print()
    print("registered workload patterns (see `workload list`):")
    for name in WORKLOADS.names():
        entry = WORKLOADS.get(name)
        print(f"  {name:18s} {entry.description}")
    print()
    print("registered fault injectors (see `fault list`):")
    for name in FAULTS.names():
        entry = FAULTS.get(name)
        print(f"  {name:18s} {entry.description}")
    print()
    print(
        "run with: python -m repro.experiments run <name> [--param k=v ...]"
    )
    return 0


def _cmd_describe(args) -> int:
    name = args.scenario.lower().replace("_", "-")
    fig_key = name.replace("-", "")
    if fig_key in FIGURE_ADAPTERS:
        module, scenario = FIGURE_ADAPTERS[fig_key]
        doc = (module.__doc__ or "").strip().split("\n")[0]
        print(f"{fig_key}: {doc}")
        print(
            f"Runs the registered scenario {scenario!r} under all three "
            "mechanisms (none/static/adaptbf) and verifies the paper's "
            "shape claims.\n"
            "As a figure adapter it accepts only "
            f"--param {'/'.join(FIGURE_SCALE_PARAMS)} (plus --full); the "
            "parameters listed below apply to `run "
            f"{scenario}` only.\n"
        )
        name = scenario
    elif fig_key == "overhead":
        print((overhead.__doc__ or "").strip())
        return 0
    try:
        print(REGISTRY.describe(name))
    except (KeyError, ValueError) as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Pre-pipeline invocation style: `python -m repro.experiments fig3 --full`.
    if argv and argv[0] in LEGACY_COMMANDS:
        argv = ["run"] + argv

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run AdapTBF scenarios and regenerate the paper's "
        "evaluation artefacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a scenario or figure experiment")
    run_p.add_argument("scenario", help="registered scenario or figN/overhead/all")
    run_p.add_argument(
        "--param",
        action="append",
        metavar="K=V",
        help="override a scenario parameter (repeatable; see `describe`)",
    )
    run_p.add_argument(
        "--duration",
        type=float,
        default=None,
        help="cap simulated duration in seconds (registered scenarios)",
    )
    run_p.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="kernel backend for the simulation engine (heap/array; "
        "results are identical, only wall-clock cost differs)",
    )
    run_p.add_argument(
        "--mechanism",
        default=None,
        metavar="NAME",
        help="override the bandwidth-control mechanism with any registered "
        "name (see `mechanism list`)",
    )
    run_p.add_argument(
        "--mechanism-param",
        action="append",
        metavar="K=V",
        help="override a mechanism factory parameter (repeatable; see "
        "`mechanism describe <name>`)",
    )
    run_p.add_argument(
        "--workload",
        default=None,
        metavar="NAME",
        help="rebuild every process's pattern from a registered workload "
        "(see `workload list`); job structure and priorities stay as the "
        "scenario defines them",
    )
    run_p.add_argument(
        "--workload-param",
        action="append",
        metavar="K=V",
        help="override a workload factory parameter (repeatable; see "
        "`workload describe <name>`)",
    )
    run_p.add_argument(
        "--fault",
        default=None,
        metavar="NAME",
        help="attach a registered fault injector to the run (see "
        "`fault list`); the disturbance fires at its scheduled window "
        "and the engine's determinism contract still holds",
    )
    run_p.add_argument(
        "--fault-param",
        action="append",
        metavar="K=V",
        help="override a fault factory parameter (repeatable; see "
        "`fault describe <name>`)",
    )
    run_p.add_argument(
        "--full",
        action="store_true",
        help="figure adapters: run the paper-size configuration "
        "(default: 1/10 scale)",
    )
    run_p.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="export the underlying data as CSV into DIR",
    )
    run_p.set_defaults(handler=_cmd_run)

    list_p = sub.add_parser("list", help="list runnable scenarios")
    list_p.set_defaults(handler=_cmd_list)

    desc_p = sub.add_parser("describe", help="show a scenario's spec and params")
    desc_p.add_argument("scenario")
    desc_p.set_defaults(handler=_cmd_describe)

    camp_p = sub.add_parser(
        "campaign", help="declarative parameter sweeps (campaign engine)"
    )
    camp_sub = camp_p.add_subparsers(dest="campaign_command", required=True)

    crun_p = camp_sub.add_parser("run", help="run a registered campaign")
    crun_p.add_argument("campaign", help="registered campaign name")
    crun_p.add_argument(
        "--param",
        action="append",
        metavar="K=V",
        help="override a campaign parameter (repeatable; see `describe`)",
    )
    crun_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes to fan cells out across (default: 1, serial)",
    )
    crun_p.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write manifest/rows/timing artifacts (JSON + CSV) into DIR",
    )
    crun_p.add_argument(
        "--store",
        metavar="DIR|DB",
        default=None,
        help="durable result store: a directory (JSON-lines) or a "
        ".db/.sqlite path (SQLite); every finished cell commits "
        "immediately, so a killed run is resumable",
    )
    crun_p.add_argument(
        "--resume",
        action="store_true",
        help="allow --store to already hold committed cells of this "
        "campaign; they are skipped and only pending cells execute",
    )
    crun_p.add_argument(
        "--progress",
        action="store_true",
        help="print a per-cell completion line (index, params, wall s) as "
        "each cell finishes",
    )
    crun_p.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="execute at most N cells this invocation, then stop "
        "(incremental grinding of a large sweep; combine with --store)",
    )
    crun_p.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="S",
        help="seconds a worker's claim on a cell stays valid without a "
        "commit; expired leases (dead workers) are reclaimed on resume",
    )
    crun_p.set_defaults(handler=_cmd_campaign_run)

    cstat_p = camp_sub.add_parser(
        "status", help="inspect a durable campaign store's progress"
    )
    cstat_p.add_argument(
        "store", metavar="DIR|DB", help="store passed to `campaign run --store`"
    )
    cstat_p.set_defaults(handler=_cmd_campaign_status)

    cres_p = camp_sub.add_parser(
        "resume",
        help="finish a half-run campaign from its store (skips committed "
        "cells; rows are byte-identical to an uninterrupted run)",
    )
    cres_p.add_argument(
        "store", metavar="DIR|DB", help="store passed to `campaign run --store`"
    )
    cres_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes to fan pending cells across (default: 1)",
    )
    cres_p.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write manifest/rows/timing artifacts (JSON + CSV) into DIR",
    )
    cres_p.add_argument(
        "--progress",
        action="store_true",
        help="print a per-cell completion line as each cell finishes",
    )
    cres_p.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="execute at most N pending cells this invocation",
    )
    cres_p.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="S",
        help="seconds a worker's claim on a cell stays valid without a commit",
    )
    cres_p.set_defaults(handler=_cmd_campaign_resume)

    clist_p = camp_sub.add_parser("list", help="list registered campaigns")
    clist_p.set_defaults(handler=_cmd_campaign_list)

    cdesc_p = camp_sub.add_parser(
        "describe", help="show a campaign's axes, parameters and cells"
    )
    cdesc_p.add_argument("campaign")
    cdesc_p.set_defaults(handler=_cmd_campaign_describe)

    mech_p = sub.add_parser(
        "mechanism", help="pluggable bandwidth-control mechanisms"
    )
    mech_sub = mech_p.add_subparsers(dest="mechanism_command", required=True)

    mlist_p = mech_sub.add_parser("list", help="list registered mechanisms")
    mlist_p.set_defaults(handler=_cmd_mechanism_list)

    mdesc_p = mech_sub.add_parser(
        "describe", help="show a mechanism's parameters and behaviour"
    )
    mdesc_p.add_argument("mechanism")
    mdesc_p.set_defaults(handler=_cmd_mechanism_describe)

    wl_p = sub.add_parser(
        "workload", help="pluggable workload patterns (the demand axis)"
    )
    wl_sub = wl_p.add_subparsers(dest="workload_command", required=True)

    wlist_p = wl_sub.add_parser("list", help="list registered workloads")
    wlist_p.set_defaults(handler=_cmd_workload_list)

    wdesc_p = wl_sub.add_parser(
        "describe", help="show a workload's parameters and behaviour"
    )
    wdesc_p.add_argument("workload")
    wdesc_p.set_defaults(handler=_cmd_workload_describe)

    fault_p = sub.add_parser(
        "fault", help="pluggable fault injectors (the disturbance axis)"
    )
    fault_sub = fault_p.add_subparsers(dest="fault_command", required=True)

    flist_p = fault_sub.add_parser("list", help="list registered faults")
    flist_p.set_defaults(handler=_cmd_fault_list)

    fdesc_p = fault_sub.add_parser(
        "describe", help="show a fault's parameters and behaviour"
    )
    fdesc_p.add_argument("fault")
    fdesc_p.set_defaults(handler=_cmd_fault_describe)

    add_lint_subparser(sub)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
