"""Experiment E2 — §IV-E token redistribution (paper Fig. 5 and Fig. 6).

Three high-priority (30 %) jobs issue interleaved periodic bursts while a
low-priority (10 %) 16-process job drives continuous I/O.  The paper's
observations, verified by :func:`check_shapes`:

* under No BW the hog starves the high-priority bursts;
* under Static BW bursts are served at fixed shares but the OST idles
  between bursts (low utilization);
* AdapTBF lends idle tokens to the hog *and* serves bursts promptly, so
  jobs 1–3 gain versus both baselines while job 4 is limited by its low
  priority (Fig. 6b).

The workload is the registered ``redistribution`` scenario; this module is
the thin plotting adapter running it under all three mechanisms through
the declarative pipeline (``python -m repro.experiments run fig5``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import (
    MechanismComparison,
    bench_scale,
    compare_mechanisms,
)
from repro.metrics.summary import gains_versus
from repro.workloads.scenarios import ScenarioConfig, scenario_redistribution

__all__ = ["run", "report", "check_shapes"]


@dataclass
class ShapeCheck:
    claim: str
    passed: bool
    detail: str


def run(
    scenario_cfg: Optional[ScenarioConfig] = None,
    interval_s: float = 0.1,
    capacity_mib_s: float = 1024.0,
) -> MechanismComparison:
    """Run the §IV-E experiment under all three mechanisms."""
    cfg = scenario_cfg or bench_scale()
    return compare_mechanisms(
        scenario_redistribution(cfg),
        interval_s=interval_s,
        capacity_mib_s=capacity_mib_s,
    )


def check_shapes(cmp: MechanismComparison) -> List[ShapeCheck]:
    checks: List[ShapeCheck] = []
    burst_jobs = ["job1", "job2", "job3"]
    gains_none = gains_versus(cmp.adaptbf.summary, cmp.none.summary)
    gains_static = gains_versus(cmp.adaptbf.summary, cmp.static.summary)

    # 1. High-priority bursty jobs gain vs No BW (they were starved there).
    checks.append(
        ShapeCheck(
            claim="bursty high-priority jobs gain vs No BW",
            passed=all(gains_none[j] > 0 for j in burst_jobs),
            detail=f"{ {j: round(gains_none[j], 1) for j in burst_jobs} }",
        )
    )

    # 2. ... and stay on par with Static BW, which already shields bursts
    #    behind reserved 30% shares.  (The paper reports outright gains vs
    #    Static too; those need bursts large enough to saturate the static
    #    rate for several intervals — visible at full scale, a tie at the
    #    reduced bench scale.  See EXPERIMENTS.md.)
    checks.append(
        ShapeCheck(
            claim="bursty high-priority jobs on par or better vs Static BW",
            passed=all(gains_static[j] > -6.0 for j in burst_jobs),
            detail=f"{ {j: round(gains_static[j], 1) for j in burst_jobs} }",
        )
    )

    # 3. The hog is limited by AdapTBF relative to free-for-all No BW.
    checks.append(
        ShapeCheck(
            claim="low-priority hog (job4) limited vs No BW",
            passed=gains_none["job4"] < 0,
            detail=f"job4 gain vs none: {gains_none['job4']:.1f}%",
        )
    )

    # 4. AdapTBF utilizes the OST better than Static BW.
    checks.append(
        ShapeCheck(
            claim="AdapTBF OST utilization > Static BW",
            passed=cmp.adaptbf.ost_utilization > cmp.static.ost_utilization,
            detail=(
                f"adaptbf={cmp.adaptbf.ost_utilization:.2f} "
                f"static={cmp.static.ost_utilization:.2f}"
            ),
        )
    )

    # 5. AdapTBF hog throughput exceeds its static 10% share (borrowing).
    static_share = cmp.static.summary.job("job4")
    checks.append(
        ShapeCheck(
            claim="hog exceeds its static share under AdapTBF (work conservation)",
            passed=cmp.adaptbf.summary.job("job4") > static_share,
            detail=(
                f"adaptbf hog={cmp.adaptbf.summary.job('job4'):.1f} "
                f"static hog={static_share:.1f} MiB/s"
            ),
        )
    )
    return checks


def report(cmp: MechanismComparison) -> str:
    parts = [
        "=" * 72,
        "E2 / Fig. 5-6: token redistribution (3 bursty 30% jobs vs 10% hog)",
        "=" * 72,
        cmp.bandwidth_table("Fig 6(a): achieved bandwidth (MiB/s)"),
        "",
        cmp.gains_table("none", "Fig 6(b): AdapTBF gain/loss vs No BW (%)"),
        "",
        cmp.gains_table("static", "Fig 6(b): AdapTBF gain/loss vs Static BW (%)"),
        "",
    ]
    for mechanism in ("none", "static", "adaptbf"):
        parts.append(cmp.timeline_report(mechanism))
        parts.append("")
    parts.append("Shape checks:")
    for check in check_shapes(cmp):
        status = "PASS" if check.passed else "FAIL"
        parts.append(f"  [{status}] {check.claim}")
        parts.append(f"         {check.detail}")
    return "\n".join(parts)
