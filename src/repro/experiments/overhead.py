"""Experiment E5 — §IV-G framework overhead analysis.

The paper reports:

* token allocation time **< 30 µs per job**, scaling **linearly** (O(n))
  with the number of active jobs (1000 jobs ⇒ < 30 ms);
* a fixed ~25 ms per round for stats collection and rule management,
  independent of job count;
* memory footprint limited to ``{job id → record}``.

This module times our actual allocator on synthetic job populations and
verifies the linear scaling.  Absolute µs/job depends on the host and on
Python-vs-C, so :func:`check_shapes` verifies *scaling*, not the absolute
constant (the measured constant is reported for EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.allocation import TokenAllocationAlgorithm
from repro.sim.rng import RngStreams
from repro.core.types import AllocationInput
from repro.metrics.tables import format_table

__all__ = ["run", "report", "check_shapes", "PAPER_JOB_COUNTS", "time_allocation"]

PAPER_JOB_COUNTS = (4, 16, 64, 256, 1000)


@dataclass
class OverheadResult:
    """Per-population timing of the allocation algorithm."""

    job_counts: List[int]
    #: mean seconds per allocation round, keyed by job count
    seconds_per_round: Dict[int, float]
    #: mean microseconds per job, keyed by job count
    us_per_job: Dict[int, float]


@dataclass
class ShapeCheck:
    claim: str
    passed: bool
    detail: str


def _synthetic_inputs(n_jobs: int, rounds: int) -> List[AllocationInput]:
    """Deterministic demand histories exercising all three steps."""
    rng = RngStreams(seed=n_jobs).get("overhead.demands")
    nodes = {f"job{i}": int(rng.integers(1, 32)) for i in range(n_jobs)}
    inputs = []
    for _ in range(rounds):
        demands = {
            job: int(rng.integers(1, 500)) for job in nodes
        }
        inputs.append(
            AllocationInput(
                interval_s=0.1,
                max_token_rate=100_000.0,
                demands=demands,
                nodes=nodes,
            )
        )
    return inputs


def time_allocation(n_jobs: int, rounds: int = 20) -> float:
    """Mean wall-clock seconds per allocation round for ``n_jobs``."""
    inputs = _synthetic_inputs(n_jobs, rounds)
    algo = TokenAllocationAlgorithm()
    algo.allocate(inputs[0])  # warm up (first round has no history)
    start = time.perf_counter()  # repro: allow[no-wallclock] reason=timing the allocator is this experiment's purpose (paper SIV-G)
    for inp in inputs:
        algo.allocate(inp)
    return (time.perf_counter() - start) / rounds  # repro: allow[no-wallclock] reason=wall time is the measured quantity, quarantined to the report


def run(
    job_counts: Sequence[int] = PAPER_JOB_COUNTS, rounds: int = 20
) -> OverheadResult:
    seconds: Dict[int, float] = {}
    us_per_job: Dict[int, float] = {}
    for n in job_counts:
        per_round = time_allocation(n, rounds=rounds)
        seconds[n] = per_round
        us_per_job[n] = per_round / n * 1e6
    return OverheadResult(
        job_counts=list(job_counts),
        seconds_per_round=seconds,
        us_per_job=us_per_job,
    )


def check_shapes(result: OverheadResult) -> List[ShapeCheck]:
    counts = np.array(result.job_counts, dtype=float)
    times = np.array(
        [result.seconds_per_round[n] for n in result.job_counts]
    )
    # Fit t = a*n + b; linear scaling means the fit explains the data and
    # super-linear growth is absent (quadratic term negligible).
    a, b = np.polyfit(counts, times, 1)
    predicted = a * counts + b
    residual = np.abs(predicted - times) / times.max()
    # Per-job cost should be flat-ish: the largest population's per-job cost
    # must not exceed a small multiple of the smallest population's.
    per_job = np.array([result.us_per_job[n] for n in result.job_counts])
    growth = per_job[-1] / per_job[0]
    return [
        ShapeCheck(
            claim="allocation time scales linearly with active jobs (O(n))",
            # Wall-clock timing at small n is jittery; 25% of the largest
            # sample is tight enough to reject quadratic growth.
            passed=bool(np.all(residual < 0.25)),
            detail=f"linear-fit residuals: {np.round(residual, 3).tolist()}",
        ),
        ShapeCheck(
            claim="per-job cost roughly constant across populations",
            passed=bool(growth < 3.0),
            detail=(
                f"us/job: { {n: round(result.us_per_job[n], 1) for n in result.job_counts} }"
            ),
        ),
    ]


def report(result: OverheadResult) -> str:
    rows = [
        [
            n,
            result.seconds_per_round[n] * 1e3,
            result.us_per_job[n],
        ]
        for n in result.job_counts
    ]
    parts = [
        "=" * 72,
        "E5 / §IV-G: token allocation overhead",
        "=" * 72,
        format_table(
            ["active jobs", "ms per round", "us per job"],
            rows,
            title="Allocation algorithm timing (pure-Python implementation)",
        ),
        "",
        "Paper reference: < 30 us/job in the C/Lustre prototype; the shape "
        "claim is O(n).",
        "Shape checks:",
    ]
    for check in check_shapes(result):
        status = "PASS" if check.passed else "FAIL"
        parts.append(f"  [{status}] {check.claim}")
        parts.append(f"         {check.detail}")
    return "\n".join(parts)
