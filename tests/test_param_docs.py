"""The shared registry's docstring-schema parser (parse_param_docs)."""

from repro.registry import FactoryRegistry, parse_param_docs


class TestParseParamDocs:
    def test_numpy_style_section(self):
        doc = (
            "Summary line.\n"
            "\n"
            "Parameters\n"
            "----------\n"
            "alpha:\n"
            "    Smoothing factor in (0, 1].\n"
            "count:\n"
            "    Total ops issued,\n"
            "    across all phases.\n"
        )
        docs = parse_param_docs(doc)
        assert docs == {
            "alpha": "Smoothing factor in (0, 1].",
            "count": "Total ops issued, across all phases.",
        }

    def test_stops_at_next_section(self):
        doc = (
            "Summary.\n\n"
            "Parameters\n"
            "----------\n"
            "x:\n"
            "    A knob.\n"
            "\n"
            "Returns\n"
            "-------\n"
            "Nothing of note.\n"
        )
        docs = parse_param_docs(doc)
        assert docs == {"x": "A knob."}

    def test_name_colon_type_form(self):
        doc = "Parameters\n----------\nx : float\n    A knob.\n"
        assert parse_param_docs(doc) == {"x": "A knob."}

    def test_no_section(self):
        assert parse_param_docs("Just a summary.") == {}
        assert parse_param_docs(None) == {}
        assert parse_param_docs("") == {}

    def test_registration_captures_docs(self):
        registry = FactoryRegistry()

        @registry.register("documented")
        def _factory(gain: float = 0.5):
            """A documented factory.

            Parameters
            ----------
            gain:
                Loop gain of the thing.
            """
            return gain

        entry = registry.get("documented")
        assert entry.param_docs == {"gain": "Loop gain of the thing."}
        assert "Loop gain of the thing." in registry.describe("documented")

    def test_undocumented_params_describe_cleanly(self):
        registry = FactoryRegistry()

        @registry.register("bare", description="no docstring at all")
        def _factory(x: int = 1):
            return x

        assert registry.get("bare").param_docs == {}
        assert "x = 1" in registry.describe("bare")
