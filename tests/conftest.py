"""Shared stack-building fixtures (promoted from per-module helpers).

Several test modules used to carry copy-pasted ``build()``/``seq()``
helpers wiring up Ost → NRS policy → Oss → Network.  They live here once
now, as a fixture family:

* ``make_stack``            — single-OST stack under any NRS policy;
* ``make_controlled_stack`` — single-OST stack plus an AdapTbf loop;
* ``make_multi_ost_stack``  — N independent per-OST stacks sharing one
  network (striping / decentralization tests);
* ``make_mechanism_cluster``— full spec→cluster pipeline for any
  *registered* mechanism name (the per-mechanism test modules build
  through this instead of hand-wiring specs);
* ``seq``                   — sequential-write client program factory.

All are *factories* taking the test's own ``Environment``, so a test can
build several stacks (or stacks at different capacities) while the
timing-sensitive defaults (io_threads=8, zero latency) stay in one place.
The raw ``build_stack`` function lives in ``tests/simstack.py`` (and is
re-exported here) so modules needing a picklable module-level helper can
import it without depending on the ambiguous ``conftest`` module name.
"""

import collections

import pytest
from simstack import MB, Stack, build_stack

from repro.core import AdapTbf
from repro.lustre import Network, Oss, Ost
from repro.workloads.patterns import SequentialWritePattern

__all__ = ["MB", "Stack", "build_stack"]

ControlledStack = collections.namedtuple(
    "ControlledStack", "ost policy oss net frame"
)
MultiOstStack = collections.namedtuple("MultiOstStack", "osts osses net")


@pytest.fixture
def make_stack():
    return build_stack


@pytest.fixture
def make_controlled_stack():
    """Single-OST stack with an AdapTbf control loop already attached."""

    def _make(
        env,
        capacity_mbps=100,
        nodes=None,
        interval_s=0.1,
        io_threads=8,
        overhead_s=0.0,
    ):
        stack = build_stack(
            env, capacity_mbps=capacity_mbps, io_threads=io_threads
        )
        frame = AdapTbf(
            env,
            stack.oss,
            nodes=nodes or {},
            max_token_rate=capacity_mbps,
            interval_s=interval_s,
            overhead_s=overhead_s,
        )
        return ControlledStack(*stack, frame)

    return _make


@pytest.fixture
def make_multi_ost_stack():
    """N independent per-OST stacks (own policy each) on one network."""

    def _make(
        env,
        n_osts=2,
        policy_cls=None,
        capacity_mbps=100,
        io_threads=8,
        latency_s=0.0,
    ):
        if policy_cls is None:
            from repro.lustre import FifoPolicy as policy_cls
        osts = [
            Ost(env, f"ost{i}", capacity_bps=capacity_mbps * MB)
            for i in range(n_osts)
        ]
        osses = [
            Oss(env, ost, policy_cls(env), io_threads=io_threads)
            for ost in osts
        ]
        net = Network(env, latency_s=latency_s)
        return MultiOstStack(osts, osses, net)

    return _make


@pytest.fixture
def make_mechanism_cluster():
    """``(mechanism, **overrides)`` → a built cluster running that mechanism.

    Runs the full ``ScenarioSpec`` → :func:`repro.cluster.builder.build`
    pipeline for any registered mechanism name, so per-mechanism test
    modules stop rebuilding clusters by hand: two sequential-write jobs
    (``j0`` with 1 node, ``j1`` with 2, …) on ``n_osts`` default-capacity
    OSTs, optionally under a fault and on either kernel backend.
    """

    def _make(
        mechanism,
        mechanism_params=None,
        n_jobs=2,
        volume=8 * MB,
        n_osts=1,
        duration_s=None,
        backend="heap",
        fault=None,
        fault_params=None,
        **policy_overrides,
    ):
        from repro.cluster.builder import build
        from repro.scenarios.spec import (
            PolicySpec,
            RunSpec,
            ScenarioSpec,
            TopologySpec,
        )
        from repro.workloads.spec import JobSpec, ProcessSpec

        volumes = (
            tuple(volume)
            if isinstance(volume, (tuple, list))
            else (int(volume),) * n_jobs
        )
        jobs = tuple(
            JobSpec(
                job_id=f"j{i}",
                nodes=i + 1,
                processes=(
                    ProcessSpec(SequentialWritePattern(int(volumes[i]))),
                ),
            )
            for i in range(n_jobs)
        )
        spec = ScenarioSpec(
            name="fixture",
            jobs=jobs,
            topology=TopologySpec(n_osts=n_osts),
            policy=PolicySpec(
                mechanism=mechanism,
                mechanism_params=mechanism_params or {},
                **policy_overrides,
            ),
            run=RunSpec(duration_s=duration_s, backend=backend),
        )
        if fault is not None:
            spec = spec.with_fault(fault, fault_params or {})
        return build(spec)

    return _make


@pytest.fixture
def seq():
    """``seq(total_bytes)`` → a client program writing that volume."""

    def _program(total_bytes):
        return SequentialWritePattern(total_bytes).program

    return _program
