"""Shared stack-building fixtures (promoted from per-module helpers).

Several test modules used to carry copy-pasted ``build()``/``seq()``
helpers wiring up Ost → NRS policy → Oss → Network.  They live here once
now, as a fixture family:

* ``make_stack``            — single-OST stack under any NRS policy;
* ``make_controlled_stack`` — single-OST stack plus an AdapTbf loop;
* ``make_multi_ost_stack``  — N independent per-OST stacks sharing one
  network (striping / decentralization tests);
* ``seq``                   — sequential-write client program factory.

All are *factories* taking the test's own ``Environment``, so a test can
build several stacks (or stacks at different capacities) while the
timing-sensitive defaults (io_threads=8, zero latency) stay in one place.
"""

import collections

import pytest

from repro.core import AdapTbf
from repro.lustre import Network, Oss, Ost, TbfPolicy
from repro.workloads.patterns import SequentialWritePattern

MB = 1 << 20

Stack = collections.namedtuple("Stack", "ost policy oss net")
ControlledStack = collections.namedtuple(
    "ControlledStack", "ost policy oss net frame"
)
MultiOstStack = collections.namedtuple("MultiOstStack", "osts osses net")


def build_stack(
    env,
    policy_cls=TbfPolicy,
    capacity_mbps=100,
    io_threads=8,
    latency_s=0.0,
):
    """One OST behind one OSS under ``policy_cls``, zero-latency network."""
    ost = Ost(env, "ost0", capacity_bps=capacity_mbps * MB)
    policy = policy_cls(env)
    oss = Oss(env, ost, policy, io_threads=io_threads)
    net = Network(env, latency_s=latency_s)
    return Stack(ost, policy, oss, net)


@pytest.fixture
def make_stack():
    return build_stack


@pytest.fixture
def make_controlled_stack():
    """Single-OST stack with an AdapTbf control loop already attached."""

    def _make(
        env,
        capacity_mbps=100,
        nodes=None,
        interval_s=0.1,
        io_threads=8,
        overhead_s=0.0,
    ):
        stack = build_stack(
            env, capacity_mbps=capacity_mbps, io_threads=io_threads
        )
        frame = AdapTbf(
            env,
            stack.oss,
            nodes=nodes or {},
            max_token_rate=capacity_mbps,
            interval_s=interval_s,
            overhead_s=overhead_s,
        )
        return ControlledStack(*stack, frame)

    return _make


@pytest.fixture
def make_multi_ost_stack():
    """N independent per-OST stacks (own policy each) on one network."""

    def _make(
        env,
        n_osts=2,
        policy_cls=None,
        capacity_mbps=100,
        io_threads=8,
        latency_s=0.0,
    ):
        if policy_cls is None:
            from repro.lustre import FifoPolicy as policy_cls
        osts = [
            Ost(env, f"ost{i}", capacity_bps=capacity_mbps * MB)
            for i in range(n_osts)
        ]
        osses = [
            Oss(env, ost, policy_cls(env), io_threads=io_threads)
            for ost in osts
        ]
        net = Network(env, latency_s=latency_s)
        return MultiOstStack(osts, osses, net)

    return _make


@pytest.fixture
def seq():
    """``seq(total_bytes)`` → a client program writing that volume."""

    def _program(total_bytes):
        return SequentialWritePattern(total_bytes).program

    return _program
