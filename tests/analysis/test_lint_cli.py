"""CLI surface: exit codes, formats, artifacts, and both entry points.

``repro lint run`` must exit 0 on a clean tree and 2 (EXIT_VIOLATIONS) on
a dirty one — distinct from argparse's 1 — because CI tells "findings"
from "bad invocation" by exit status.  The same subcommand is mounted on
the unified experiments CLI and standalone ``python -m repro.analysis``.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import EXIT_VIOLATIONS, main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD = "import random\nx = random.random()\n"


@pytest.fixture
def dirty_tree(tmp_path):
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "bad.py").write_text(BAD)
    return tmp_path


@pytest.fixture
def clean_tree(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "ok.py").write_text("x = 1\n")
    return tmp_path


class TestExitCodes:
    def test_clean_exits_zero(self, clean_tree, capsys):
        assert main(["lint", "run", "--root", str(clean_tree)]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_violations_exit_two(self, dirty_tree, capsys):
        code = main(["lint", "run", "--root", str(dirty_tree)])
        assert code == EXIT_VIOLATIONS
        out = capsys.readouterr().out
        assert "src/repro/bad.py:2:5: [no-raw-random]" in out

    def test_missing_target_is_usage_error(self, clean_tree):
        with pytest.raises(SystemExit):
            main(["lint", "run", "nope/", "--root", str(clean_tree)])

    def test_unknown_rule_in_describe(self):
        with pytest.raises(SystemExit):
            main(["lint", "describe", "no-such-rule"])


class TestFormats:
    def test_json_output_parses(self, dirty_tree, capsys):
        main(["lint", "run", "--format", "json", "--root", str(dirty_tree)])
        data = json.loads(capsys.readouterr().out)
        assert data["version"] == 1 and data["ok"] is False
        assert data["violations"][0]["rule"] == "no-raw-random"

    def test_out_writes_artifact(self, dirty_tree, tmp_path, capsys):
        artifact = tmp_path / "lint.json"
        code = main(
            [
                "lint",
                "run",
                "--format",
                "json",
                "--out",
                str(artifact),
                "--root",
                str(dirty_tree),
            ]
        )
        assert code == EXIT_VIOLATIONS  # writing a report never masks findings
        data = json.loads(artifact.read_text())
        assert data["ok"] is False

    def test_out_text_echoes_violations_to_stderr(self, dirty_tree, tmp_path, capsys):
        artifact = tmp_path / "lint.txt"
        main(["lint", "run", "--out", str(artifact), "--root", str(dirty_tree)])
        captured = capsys.readouterr()
        assert "no-raw-random" in captured.err

    def test_rule_filter(self, dirty_tree, capsys):
        code = main(
            [
                "lint",
                "run",
                "--rule",
                "no-wallclock",
                "--root",
                str(dirty_tree),
            ]
        )
        assert code == 0  # the only violation is a no-raw-random one


class TestListAndDescribe:
    def test_list_names_every_rule(self, capsys):
        from repro.analysis import RULES

        assert main(["lint", "list"]) == 0
        out = capsys.readouterr().out
        for name in RULES.names():
            assert name in out

    def test_describe_shows_contract(self, capsys):
        assert main(["lint", "describe", "no-raw-random"]) == 0
        out = capsys.readouterr().out
        assert "RngStreams" in out
        assert "Example" in out


class TestEntryPoints:
    """Both console entry points mount the same subcommand tree."""

    @pytest.mark.parametrize(
        "module", ["repro.analysis", "repro.experiments"]
    )
    def test_module_invocation(self, module, dirty_tree):
        proc = subprocess.run(
            [sys.executable, "-m", module, "lint", "run", "--root", str(dirty_tree)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == EXIT_VIOLATIONS
        assert "no-raw-random" in proc.stdout
