"""Suppression-pragma semantics: scoping, bookkeeping and validation.

The pragma grammar is deliberately rigid — ``# repro: allow[rule-id]
reason=<why>`` — because a suppression that *looks* accepted but is
silently ignored would be worse than no suppression at all.  These tests
pin the whole lifecycle: a pragma must match a real violation (else it is
an ``unused-suppression`` violation itself), must carry a reason, must
name a known, non-meta rule, and file-scope pragmas must cover the whole
module while line pragmas cover one line only.
"""

from repro.analysis import lint_source
from repro.analysis.model import META_RULES, parse_pragmas

BAD_DRAW = "import random\nx = random.random()\n"
REL = "src/repro/core/demo.py"


def rules_of(violations):
    return sorted(v.rule for v in violations)


class TestLinePragmas:
    def test_suppresses_same_line(self):
        src = (
            "import random\n"
            "x = random.random()"
            "  # repro: allow[no-raw-random] reason=test fixture\n"
        )
        assert lint_source(src, rel=REL) == []

    def test_does_not_leak_to_other_lines(self):
        src = (
            "import random\n"
            "x = random.random()"
            "  # repro: allow[no-raw-random] reason=this line only\n"
            "y = random.random()\n"
        )
        (v,) = lint_source(src, rel=REL)
        assert (v.rule, v.line) == ("no-raw-random", 3)

    def test_wrong_rule_does_not_suppress(self):
        src = (
            "import random\n"
            "x = random.random()"
            "  # repro: allow[no-wallclock] reason=names the wrong rule\n"
        )
        # The mismatched pragma suppresses nothing, so both the original
        # violation and the unused suppression are reported.
        assert rules_of(lint_source(src, rel=REL)) == [
            "no-raw-random",
            "unused-suppression",
        ]


class TestFilePragmas:
    def test_covers_whole_module(self):
        src = (
            "# repro: allow-file[no-raw-random] reason=test fixture\n"
            "import random\n"
            "x = random.random()\n"
            "y = random.random()\n"
        )
        assert lint_source(src, rel=REL) == []

    def test_only_named_rule(self):
        src = (
            "# repro: allow-file[no-raw-random] reason=random only\n"
            "import random\n"
            "import time\n"
            "x = random.random()\n"
            "t = time.time()\n"
        )
        assert rules_of(lint_source(src, rel=REL)) == ["no-wallclock"]


class TestUnusedSuppressions:
    def test_stale_line_pragma_is_a_violation(self):
        src = "x = 1  # repro: allow[no-raw-random] reason=fixed long ago\n"
        (v,) = lint_source(src, rel=REL)
        assert (v.rule, v.line) == ("unused-suppression", 1)
        assert "no-raw-random" in v.message

    def test_stale_file_pragma_is_a_violation(self):
        src = "# repro: allow-file[no-wallclock] reason=stale\nx = 1\n"
        (v,) = lint_source(src, rel=REL)
        assert v.rule == "unused-suppression"

    def test_used_pragma_is_not_flagged(self):
        src = (
            "import random\n"
            "x = random.random()"
            "  # repro: allow[no-raw-random] reason=used\n"
        )
        assert lint_source(src, rel=REL) == []


class TestPragmaSyntax:
    def test_missing_reason(self):
        src = "import random\nx = random.random()  # repro: allow[no-raw-random]\n"
        assert rules_of(lint_source(src, rel=REL)) == [
            "no-raw-random",
            "pragma-syntax",
        ]

    def test_unknown_rule_id(self):
        src = "x = 1  # repro: allow[not-a-rule] reason=typo\n"
        (v,) = lint_source(src, rel=REL)
        assert v.rule == "pragma-syntax"
        assert "not-a-rule" in v.message

    def test_garbled_directive(self):
        src = "x = 1  # repro: alow[no-raw-random] reason=typo\n"
        (v,) = lint_source(src, rel=REL)
        assert v.rule == "pragma-syntax"

    def test_meta_rules_cannot_be_suppressed(self):
        for meta in META_RULES:
            src = f"x = 1  # repro: allow[{meta}] reason=nope\n"
            violations = lint_source(src, rel=REL)
            assert any(v.rule == "pragma-syntax" for v in violations), meta

    def test_plain_comments_are_ignored(self):
        src = "x = 1  # an ordinary comment mentioning repro stuff\n"
        assert lint_source(src, rel=REL) == []


class TestParsePragmas:
    def test_parse_extracts_scope_rule_reason(self):
        src = (
            "# repro: allow-file[no-wallclock] reason=whole file\n"
            "x = 1  # repro: allow[no-raw-random] reason=one line\n"
        )
        pragmas, errors = parse_pragmas(
            src, known_rules={"no-wallclock", "no-raw-random"}
        )
        assert errors == []
        by_scope = {p.scope: p for p in pragmas}
        assert by_scope["file"].rule == "no-wallclock"
        assert by_scope["line"].line == 2
        assert by_scope["line"].reason == "one line"
