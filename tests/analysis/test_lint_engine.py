"""Engine behaviour: discovery, reports, rule selection, and the repo gate.

The last test class is the PR's point: the real tree lints clean, every
suppression in it carries a ``reason=``, and the linter's own output is
deterministic — sorted, stable, byte-identical across runs.
"""

from pathlib import Path

from repro.analysis import (
    DEFAULT_TARGETS,
    RULES,
    lint_paths,
    lint_source,
)
from repro.analysis.engine import discover_files

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestDiscovery:
    def test_skips_cache_dirs(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        pycache = tmp_path / "pkg" / "__pycache__"
        pycache.mkdir()
        (pycache / "mod.cpython-311.py").write_text("x = 1\n")
        files = discover_files([Path("pkg")], tmp_path)
        assert [rel for _, rel in files] == ["pkg/mod.py"]

    def test_deterministic_order(self, tmp_path):
        for name in ("b.py", "a.py", "c.py"):
            (tmp_path / name).write_text("x = 1\n")
        files = discover_files([Path(".")], tmp_path)
        assert [rel for _, rel in files] == ["a.py", "b.py", "c.py"]

    def test_explicit_missing_target_raises(self, tmp_path):
        try:
            lint_paths(paths=["no/such/dir"], root=tmp_path)
        except FileNotFoundError as exc:
            assert "no/such/dir" in str(exc)
        else:
            raise AssertionError("expected FileNotFoundError")

    def test_missing_default_targets_skipped(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "ok.py").write_text("x = 1\n")
        report = lint_paths(root=tmp_path)  # no benchmarks/, no examples/
        assert report.ok and report.files_checked == 1


class TestReport:
    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "broken.py").write_text("def f(:\n")
        report = lint_paths(root=tmp_path)
        (v,) = report.violations
        assert v.rule == "pragma-syntax"
        assert "does not parse" in v.message

    def test_json_schema(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "bad.py").write_text(
            "import random\nx = random.random()\n"
        )
        report = lint_paths(root=tmp_path)
        data = report.to_json_dict()
        assert data["version"] == 1
        assert data["ok"] is False
        assert data["files_checked"] == 1
        assert set(RULES.names()) == set(data["rules"])
        (vio,) = data["violations"]
        assert vio["rule"] == "no-raw-random"
        assert vio["path"] == "src/repro/bad.py"
        assert isinstance(vio["line"], int) and isinstance(vio["col"], int)

    def test_text_summary_line(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "ok.py").write_text("x = 1\n")
        report = lint_paths(root=tmp_path)
        assert report.format_text().endswith(
            "0 violation(s) in 1 file(s) checked (0 suppressed by pragma)"
        )

    def test_violations_sorted(self):
        src = "import time\nimport random\nx = random.random()\nt = time.time()\n"
        violations = lint_source(src, rel="src/repro/core/multi.py")
        keys = [(v.path, v.line, v.col, v.rule) for v in violations]
        assert keys == sorted(keys)


class TestRuleSelection:
    SRC = "import time\nimport random\nx = random.random()\nt = time.time()\n"

    def test_single_rule_subset(self):
        violations = lint_source(
            self.SRC, rel="src/repro/core/multi.py", rules=["no-wallclock"]
        )
        assert [v.rule for v in violations] == ["no-wallclock"]

    def test_other_rules_pragmas_stay_legal_under_subset(self):
        src = (
            "import random\n"
            "x = random.random()"
            "  # repro: allow[no-raw-random] reason=other rule's business\n"
        )
        # Linting only no-wallclock must not flag the (unexercised)
        # no-raw-random pragma as unknown or unused.
        violations = lint_source(
            src, rel="src/repro/core/x.py", rules=["no-wallclock"]
        )
        assert violations == []


class TestRepoGate:
    """The real tree holds its own contracts."""

    def test_repo_lints_clean(self):
        report = lint_paths(root=REPO_ROOT)
        assert report.ok, "\n" + report.format_text()
        assert report.files_checked > 50

    def test_default_targets_exist_here(self):
        assert (REPO_ROOT / DEFAULT_TARGETS[0]).is_dir()

    def test_every_repo_pragma_has_a_reason(self):
        from repro.analysis.model import parse_pragmas

        known = set(RULES.names())
        offenders = []
        for path in sorted((REPO_ROOT / "src").rglob("*.py")):
            pragmas, errors = parse_pragmas(
                path.read_text(encoding="utf-8"), known_rules=known
            )
            offenders.extend(f"{path}:{line}" for line, _, _ in errors)
            offenders.extend(
                f"{path}:{p.line}" for p in pragmas if not p.reason
            )
        assert offenders == []

    def test_report_is_deterministic(self):
        a = lint_paths(root=REPO_ROOT).to_json()
        b = lint_paths(root=REPO_ROOT).to_json()
        assert a == b
