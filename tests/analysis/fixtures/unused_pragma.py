"""Fixture: one unused-suppression violation (nothing left to excuse)."""

ANSWER = 42  # repro: allow[no-raw-random] reason=the violation was fixed but the pragma stayed
