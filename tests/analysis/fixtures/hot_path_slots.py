"""Fixture: one hot-path-slots violation (dict-carrying class)."""


class Cursor:
    def __init__(self) -> None:
        self.pos = 0
