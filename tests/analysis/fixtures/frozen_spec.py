"""Fixture: one frozen-spec-integrity violation (mutable spec dataclass)."""

from dataclasses import dataclass


@dataclass
class RetrySpec:
    limit: int = 3
