"""Fixture: a module every rule accepts.

Randomness comes from a named substream, iteration over sets is sorted,
the spec is frozen and slotted, the hot-path class declares __slots__.
"""

from dataclasses import dataclass

from repro.sim.rng import RngStreams


@dataclass(frozen=True, slots=True)
class ShapeSpec:
    nodes: int = 1


class Walker:
    __slots__ = ("pos",)

    def __init__(self) -> None:
        self.pos = 0


def shapes(seed: int, job_ids) -> list:
    rng = RngStreams(seed=seed).get_stdlib("fixture.shapes")
    return [ShapeSpec(nodes=rng.randint(1, 8)) for _ in sorted(set(job_ids))]
