"""Fixture: one registry-factory-contract violation (documented typo)."""

from repro.scenarios.registry import REGISTRY


@REGISTRY.register("fixture-demo")
def make(n_jobs: int = 2):
    """Demo factory.

    Parameters
    ----------
    n_josb:
        Typo: the signature only has ``n_jobs``.
    """
    return n_jobs
