"""Fixture: one no-raw-random violation (the uniform draw below)."""

import random


def burst_gap() -> float:
    return random.uniform(2.0, 6.0)
