"""Fixture: one no-dict-order-leak violation (set feeding a list)."""


def job_ids(rows):
    return list({row.job_id for row in rows})
