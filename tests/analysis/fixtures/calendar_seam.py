"""Fixture: one calendar-seam-only violation (heappush past the seam)."""

import heapq


def sneak(calendar, entry) -> None:
    heapq.heappush(calendar, entry)
