"""Fixture: pragma-syntax violation (mandatory reason= omitted)."""

import time

NOW = time.time()  # repro: allow[no-wallclock]
