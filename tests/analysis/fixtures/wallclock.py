"""Fixture: one no-wallclock violation (the perf_counter read below)."""

from time import perf_counter


def stamp() -> float:
    return perf_counter()
