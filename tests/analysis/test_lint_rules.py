"""Per-rule fixture tests: exact rule-id / line / column expectations.

Each fixture module under ``fixtures/`` carries exactly one deliberate
violation (see its README); linting it under a pretend ``src/repro/...``
path must report that violation at the exact position, and the clean
fixture must report nothing.  Positions are 1-based (line and column),
matching the ``path:line:col`` report format editors understand.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> (pretend repo path, expected (rule, line, col) tuples)
EXPECTATIONS = {
    "raw_random.py": (
        "src/repro/workloads/raw_random.py",
        [("no-raw-random", 7, 12)],
    ),
    "wallclock.py": (
        "src/repro/core/wallclock.py",
        [("no-wallclock", 7, 12)],
    ),
    "calendar_seam.py": (
        "src/repro/lustre/calendar_seam.py",
        [("calendar-seam-only", 7, 5)],
    ),
    "dict_order.py": (
        "src/repro/metrics/dict_order.py",
        [("no-dict-order-leak", 5, 17)],
    ),
    "frozen_spec.py": (
        "src/repro/campaigns/frozen_spec.py",
        [("frozen-spec-integrity", 7, 1)],
    ),
    "registry_contract.py": (
        "src/repro/scenarios/registry_contract.py",
        [("registry-factory-contract", 7, 1)],
    ),
    "hot_path_slots.py": (
        "src/repro/lustre/hot_path_slots.py",
        [("hot-path-slots", 4, 1)],
    ),
    "unused_pragma.py": (
        "src/repro/core/unused_pragma.py",
        [("unused-suppression", 3, 1)],
    ),
    "pragma_missing_reason.py": (
        "src/repro/core/pragma_missing_reason.py",
        # The malformed pragma suppresses nothing, so the underlying
        # violation surfaces alongside the syntax finding.
        [("no-wallclock", 5, 7), ("pragma-syntax", 5, 20)],
    ),
    "clean.py": ("src/repro/lustre/clean.py", []),
}


def lint_fixture(name: str):
    rel, _ = EXPECTATIONS[name]
    return lint_source((FIXTURES / name).read_text(), rel=rel)


class TestFixtureExpectations:
    @pytest.mark.parametrize("name", sorted(EXPECTATIONS))
    def test_exact_positions(self, name):
        _, expected = EXPECTATIONS[name]
        got = [(v.rule, v.line, v.col) for v in lint_fixture(name)]
        assert got == expected

    def test_every_rule_has_a_fixture(self):
        from repro.analysis import RULES

        covered = {
            rule
            for _, expected in EXPECTATIONS.values()
            for rule, _, _ in expected
        }
        assert covered == set(RULES.names())

    def test_violation_formatting(self):
        (v,) = lint_fixture("raw_random.py")
        assert v.format() == (
            "src/repro/workloads/raw_random.py:7:12: [no-raw-random] "
            + v.message
        )
        assert "RngStreams" in v.message


class TestScoping:
    """The determinism rules guard src/repro/ only (rng.py is sanctioned)."""

    def test_tests_are_out_of_scope(self):
        bad = (FIXTURES / "raw_random.py").read_text()
        assert lint_source(bad, rel="tests/workloads/raw_random.py") == []

    def test_rng_module_is_sanctioned(self):
        bad = (FIXTURES / "raw_random.py").read_text()
        assert lint_source(bad, rel="src/repro/sim/rng.py") == []

    def test_backends_owns_the_calendar(self):
        bad = (FIXTURES / "calendar_seam.py").read_text()
        assert lint_source(bad, rel="src/repro/sim/backends.py") == []

    def test_slots_rule_scoped_to_hot_packages(self):
        bad = (FIXTURES / "hot_path_slots.py").read_text()
        assert lint_source(bad, rel="src/repro/campaigns/cursor.py") == []


class TestRuleEdgeCases:
    def test_import_alias_resolution(self):
        src = "import numpy as np\nx = np.random.default_rng(0)\n"
        (v,) = lint_source(src, rel="src/repro/core/alias.py")
        assert v.rule == "no-raw-random"
        assert "numpy.random.default_rng" in v.message

    def test_from_import_resolution(self):
        src = "from time import monotonic\nt = monotonic()\n"
        (v,) = lint_source(src, rel="src/repro/core/clock.py")
        assert v.rule == "no-wallclock"

    def test_outermost_chain_reported_once(self):
        src = "import numpy\nr = numpy.random.default_rng(1)\n"
        violations = lint_source(src, rel="src/repro/core/chain.py")
        assert len(violations) == 1

    def test_sorted_set_is_fine(self):
        src = "def f(xs):\n    return list(sorted(set(xs)))\n"
        assert lint_source(src, rel="src/repro/metrics/ok.py") == []

    def test_set_union_into_loop_flagged(self):
        src = "def f(a, b):\n    for x in set(a) | set(b):\n        print(x)\n"
        (v,) = lint_source(src, rel="src/repro/metrics/union.py")
        assert v.rule == "no-dict-order-leak"

    def test_exception_classes_exempt_from_slots(self):
        src = (
            "class BoomError(ValueError):\n"
            "    def __init__(self, msg):\n"
            "        self.msg = msg\n"
            "        super().__init__(msg)\n"
        )
        assert lint_source(src, rel="src/repro/sim/errors.py") == []

    def test_frozen_spec_lambda_default_flagged(self):
        src = (
            "from dataclasses import dataclass, field\n"
            "@dataclass(frozen=True)\n"
            "class HookSpec:\n"
            "    fn: object = field(default_factory=lambda: None)\n"
        )
        (v,) = lint_source(src, rel="src/repro/campaigns/hook.py")
        assert v.rule == "frozen-spec-integrity"
        assert "lambda" in v.message

    def test_lambda_in_spec_method_is_fine(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class SortSpec:\n"
            "    key: str = 'x'\n"
            "    def order(self, rows):\n"
            "        return sorted(rows, key=lambda r: r.t)\n"
        )
        assert lint_source(src, rel="src/repro/campaigns/sort.py") == []

    def test_registered_factory_missing_default_flagged(self):
        src = (
            "from repro.scenarios.registry import REGISTRY\n"
            "@REGISTRY.register('x')\n"
            "def make(n_jobs):\n"
            "    return n_jobs\n"
        )
        (v,) = lint_source(src, rel="src/repro/scenarios/x.py")
        assert v.rule == "registry-factory-contract"
        assert "no default" in v.message
