"""Tests for cluster assembly and the experiment runner."""

import pytest

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.cluster.experiment import run_experiment, run_scenario
from repro.lustre.nrs import FifoPolicy, TbfPolicy
from repro.sim import Environment
from repro.workloads.patterns import SequentialWritePattern
from repro.workloads.scenarios import ScenarioConfig, scenario_allocation
from repro.workloads.spec import JobSpec, ProcessSpec

MIB = 1 << 20


def tiny_jobs(n=2, volume=10 * MIB, nodes=(1, 3)):
    return [
        JobSpec(
            job_id=f"j{i}",
            nodes=nodes[i % len(nodes)],
            processes=(ProcessSpec(SequentialWritePattern(volume)),),
        )
        for i in range(n)
    ]


class TestClusterConfig:
    def test_token_rate_follows_capacity(self):
        config = ClusterConfig(capacity_mib_s=512.0, rpc_size=MIB)
        assert config.max_token_rate == pytest.approx(512.0)

    def test_half_mib_rpcs_double_token_rate(self):
        config = ClusterConfig(capacity_mib_s=512.0, rpc_size=MIB // 2)
        assert config.max_token_rate == pytest.approx(1024.0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ClusterConfig(capacity_mib_s=0)
        with pytest.raises(ValueError):
            ClusterConfig(rpc_size=0)
        with pytest.raises(ValueError):
            ClusterConfig(variant="bogus")


class TestBuildCluster:
    def test_none_uses_fifo(self):
        env = Environment()
        cluster = build_cluster(
            env, ClusterConfig(mechanism="none"), tiny_jobs()
        )
        assert isinstance(cluster.oss.policy, FifoPolicy)
        assert cluster.adaptbf is None
        assert cluster.static_rates is None

    def test_static_installs_rules(self):
        env = Environment()
        cluster = build_cluster(
            env, ClusterConfig(mechanism="static"), tiny_jobs()
        )
        assert isinstance(cluster.oss.policy, TbfPolicy)
        assert cluster.static_rates is not None
        rates = cluster.static_rates[0]  # one dict per OST
        assert set(rates) == {"j0", "j1"}
        # 1:3 node split of the token budget.
        assert rates["j1"] == pytest.approx(3 * rates["j0"])

    def test_adaptbf_attaches_framework(self):
        env = Environment()
        cluster = build_cluster(
            env, ClusterConfig(mechanism="adaptbf"), tiny_jobs()
        )
        assert cluster.adaptbf is not None
        assert cluster.adaptbf.controller.nodes == {"j0": 1, "j1": 3}

    def test_ablation_variant_injected(self):
        env = Environment()
        cluster = build_cluster(
            env,
            ClusterConfig(mechanism="adaptbf", variant="priority_only"),
            tiny_jobs(),
        )
        assert not cluster.adaptbf.algorithm.enable_redistribution

    def test_one_client_per_process(self):
        env = Environment()
        jobs = [
            JobSpec(
                job_id="j",
                nodes=1,
                processes=tuple(
                    ProcessSpec(SequentialWritePattern(MIB)) for _ in range(5)
                ),
            )
        ]
        cluster = build_cluster(env, ClusterConfig(), jobs)
        assert len(cluster.clients) == 5


class TestRunExperiment:
    def test_run_to_completion(self):
        result = run_experiment(
            ClusterConfig(mechanism="none", capacity_mib_s=100),
            tiny_jobs(volume=50 * MIB),
        )
        assert result.clients_finished
        assert result.timeline.total_bytes() == 100 * MIB
        assert set(result.job_completion_s) == {"j0", "j1"}
        assert result.summary.aggregate_mib_s > 0

    def test_duration_cap_truncates(self):
        result = run_experiment(
            ClusterConfig(mechanism="none", capacity_mib_s=10),
            tiny_jobs(volume=100 * MIB),
            duration_s=2.0,
        )
        assert not result.clients_finished
        assert result.duration_s == 2.0
        # Processor sharing: the first 16 concurrent 1-MiB RPCs all complete
        # together at ~1.6 s, so ~16 MiB lands inside the 2 s cap.
        assert 10 * MIB <= result.timeline.total_bytes() <= 25 * MIB

    def test_adaptbf_history_captured(self):
        result = run_experiment(
            ClusterConfig(mechanism="adaptbf", capacity_mib_s=100),
            tiny_jobs(volume=30 * MIB),
        )
        assert len(result.history) > 0
        assert result.record_series("j0")
        assert result.demand_series("j0")

    def test_baseline_history_empty(self):
        result = run_experiment(
            ClusterConfig(mechanism="none", capacity_mib_s=100),
            tiny_jobs(volume=10 * MIB),
        )
        assert result.history == []

    def test_utilization_reported(self):
        result = run_experiment(
            ClusterConfig(mechanism="none", capacity_mib_s=100),
            tiny_jobs(volume=50 * MIB),
        )
        # Saturating FIFO workload: utilization near 1.
        assert result.ost_utilization == pytest.approx(1.0, abs=0.1)

    def test_run_scenario_wrapper(self):
        scenario = scenario_allocation(
            ScenarioConfig(data_scale=1 / 512, heavy_procs=2)
        )
        result = run_scenario(
            scenario, ClusterConfig(mechanism="adaptbf", capacity_mib_s=256)
        )
        assert result.clients_finished
        assert set(result.job_completion_s) == {
            "job1",
            "job2",
            "job3",
            "job4",
        }
