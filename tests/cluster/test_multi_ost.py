"""Multi-OST decentralized deployment tests (paper §II-B).

The paper's argument: if bandwidth sharing on every *local* target is fair
and work-conserving, the cumulative effect over all targets is globally
fair without any cross-server coordination.  These tests run AdapTBF with
one independent controller per OST and verify exactly that.
"""

import pytest

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.cluster.experiment import run_experiment
from repro.sim import Environment
from repro.workloads.patterns import SequentialWritePattern
from repro.workloads.spec import JobSpec, ProcessSpec

MIB = 1 << 20


def jobs_16proc(volume=64 * MIB, nodes=(1, 3)):
    return [
        JobSpec(
            job_id=f"j{i}",
            nodes=n,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(volume)) for _ in range(8)
            ),
        )
        for i, n in enumerate(nodes)
    ]


class TestMultiOstBuild:
    def test_builds_independent_stacks(self):
        env = Environment()
        cluster = build_cluster(
            env,
            ClusterConfig(mechanism="adaptbf", n_osts=4),
            jobs_16proc(),
        )
        assert len(cluster.osts) == 4
        assert len(cluster.osses) == 4
        assert len(cluster.controllers) == 4
        # Controllers share no allocator state.
        algos = {id(c.algorithm) for c in cluster.controllers}
        assert len(algos) == 4

    def test_round_robin_file_placement(self):
        env = Environment()
        cluster = build_cluster(
            env, ClusterConfig(mechanism="none", n_osts=4), jobs_16proc()
        )
        # 16 files over 4 OSTs round-robin: each OST serves 4 files.
        placements = [c.io.layout.targets[0] for c in cluster.clients]
        counts = {oss.ost.name: placements.count(oss) for oss in cluster.osses}
        assert set(counts.values()) == {4}

    def test_stripe_count_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_osts=2, stripe_count=3)
        with pytest.raises(ValueError):
            ClusterConfig(n_osts=0)

    def test_static_rules_installed_per_ost(self):
        env = Environment()
        cluster = build_cluster(
            env,
            ClusterConfig(mechanism="static", n_osts=3),
            jobs_16proc(),
        )
        assert len(cluster.static_rates) == 3
        for rates in cluster.static_rates:
            assert set(rates) == {"j0", "j1"}


class TestDecentralizedFairness:
    def test_global_shares_track_priority_without_coordination(self):
        """§II-B: local fairness on each OST composes into global fairness.

        Both jobs carry enough volume to stay backlogged through the whole
        window, so the measured bandwidths reflect the steady-state shares
        (a finished job would hand its share back and compress the ratio).
        """
        result = run_experiment(
            ClusterConfig(
                mechanism="adaptbf", n_osts=4, capacity_mib_s=256
            ),
            jobs_16proc(volume=400 * MIB, nodes=(1, 3)),
            duration_s=2.0,
        )
        bw = result.summary
        assert not result.clients_finished  # both still writing at the cap
        ratio = bw.job("j1") / bw.job("j0")
        assert 2.0 < ratio < 4.5, ratio

    def test_each_ost_runs_its_own_rounds(self):
        result = run_experiment(
            ClusterConfig(
                mechanism="adaptbf", n_osts=3, capacity_mib_s=256
            ),
            jobs_16proc(volume=32 * MIB),
            duration_s=1.0,
        )
        assert len(result.per_ost_histories) == 3
        for history in result.per_ost_histories:
            assert len(history) >= 5  # ~10 rounds in 1 s at 100 ms

    def test_striped_files_reach_all_osts(self):
        result = run_experiment(
            ClusterConfig(
                mechanism="adaptbf",
                n_osts=2,
                stripe_count=2,
                capacity_mib_s=256,
            ),
            jobs_16proc(volume=32 * MIB),
            duration_s=2.0,
        )
        # Both OSTs' controllers saw both jobs.
        for history in result.per_ost_histories:
            seen = set()
            for round_ in history:
                seen.update(round_.demands)
            assert seen == {"j0", "j1"}

    def test_multi_ost_aggregate_scales(self):
        """Two OSTs deliver ~2x one OST's bandwidth for the same workload."""
        one = run_experiment(
            ClusterConfig(mechanism="none", n_osts=1, capacity_mib_s=128),
            jobs_16proc(volume=64 * MIB),
            duration_s=2.0,
        )
        two = run_experiment(
            ClusterConfig(mechanism="none", n_osts=2, capacity_mib_s=128),
            jobs_16proc(volume=64 * MIB),
            duration_s=2.0,
        )
        assert two.summary.aggregate_mib_s > 1.6 * one.summary.aggregate_mib_s
