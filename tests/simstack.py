"""Importable single-OST stack builder shared across test packages.

Lives outside ``conftest.py`` on purpose: ``tests/workloads`` imports
:func:`build_stack` as a plain module-level function (its subprocess
seeding test needs picklable module-level helpers, which fixtures are
not), and the bare module name ``conftest`` is ambiguous the moment any
test package grows its own ``conftest.py``.  The root conftest re-exports
it for the fixture family built on top.
"""

import collections

from repro.lustre import Network, Oss, Ost, TbfPolicy

MB = 1 << 20

Stack = collections.namedtuple("Stack", "ost policy oss net")


def build_stack(
    env,
    policy_cls=None,
    capacity_mbps=100,
    io_threads=8,
    latency_s=0.0,
    mechanism=None,
):
    """One OST behind one OSS, zero-latency network.

    The NRS policy comes from ``policy_cls`` when given; otherwise from
    ``mechanism`` (a registered bandwidth-mechanism name, asked for its
    own policy class so tests need not know which one each mechanism
    wants); otherwise :class:`TbfPolicy`.
    """
    ost = Ost(env, "ost0", capacity_bps=capacity_mbps * MB)
    if policy_cls is not None:
        policy = policy_cls(env)
    elif mechanism is not None:
        from repro.core.mechanism import MECHANISMS

        policy = MECHANISMS.build(mechanism).nrs_policy(env)
    else:
        policy = TbfPolicy(env)
    oss = Oss(env, ost, policy, io_threads=io_threads)
    net = Network(env, latency_s=latency_s)
    return Stack(ost, policy, oss, net)
