"""End-to-end reproduction tests: every paper figure's qualitative shape.

These are the repository's ground truth: each test runs a (reduced-scale)
paper experiment and asserts the claims the corresponding figure makes.
They are slower than unit tests (a few seconds each) but they are exactly
what "reproduces the paper" means.
"""

import pytest

from repro.experiments import fig3_fig4, fig5_fig6, fig7_fig8, fig9, overhead
from repro.workloads.scenarios import ScenarioConfig

#: Test scale: slightly smaller than the bench default to keep CI fast.
TEST_SCALE = ScenarioConfig(data_scale=1 / 16, time_scale=1 / 16)


@pytest.fixture(scope="module")
def e1():
    return fig3_fig4.run(TEST_SCALE)


@pytest.fixture(scope="module")
def e2():
    return fig5_fig6.run(TEST_SCALE)


@pytest.fixture(scope="module")
def e3():
    return fig7_fig8.run(TEST_SCALE)


class TestE1TokenAllocation:
    def test_all_shape_checks_pass(self, e1):
        for check in fig3_fig4.check_shapes(e1):
            assert check.passed, f"{check.claim}: {check.detail}"

    def test_all_mechanisms_completed_all_jobs(self, e1):
        for result in e1.results.values():
            assert result.clients_finished

    def test_static_wastes_bandwidth_after_departures(self, e1):
        # Static BW cannot reassign a finished job's share: lower aggregate.
        assert (
            e1.static.summary.aggregate_mib_s
            < 0.6 * e1.adaptbf.summary.aggregate_mib_s
        )

    def test_report_renders(self, e1):
        text = fig3_fig4.report(e1)
        assert "Fig 4(a)" in text and "Shape checks:" in text
        assert "FAIL" not in text


class TestE2TokenRedistribution:
    def test_all_shape_checks_pass(self, e2):
        for check in fig5_fig6.check_shapes(e2):
            assert check.passed, f"{check.claim}: {check.detail}"

    def test_no_bw_starves_bursty_jobs(self, e2):
        """§IV-E: the hog dominates under FCFS."""
        none = e2.none.summary
        assert none.job("job4") > 10 * max(
            none.job("job1"), none.job("job2"), none.job("job3")
        )

    def test_adaptbf_lends_idle_tokens_to_hog(self, e2):
        # Records: the bursty jobs lend (hog borrows) under AdapTBF.
        final_records = e2.adaptbf.history[-1].records
        assert final_records.get("job4", 0) < 0

    def test_report_renders(self, e2):
        text = fig5_fig6.report(e2)
        assert "Fig 6(a)" in text
        assert "FAIL" not in text


class TestE3TokenRecompensation:
    def test_all_shape_checks_pass(self, e3):
        for check in fig7_fig8.check_shapes(e3):
            assert check.passed, f"{check.claim}: {check.detail}"

    def test_lending_order_follows_delays(self, e3):
        """Jobs with later stream starts are reclaimed later (Fig. 7).

        The robust statistic is the *first significant decline* of the
        record from its running peak — i.e. when re-compensation starts —
        which tracks each job's stream-start delay.  (Peak time itself is
        not robust: a job whose stream finishes early starts lending again
        and can re-peak at the end of the window.)
        """

        def first_reclaim_time(job):
            running_peak, threshold_time = 0, None
            for t, record in e3.adaptbf.record_series(job):
                if record > running_peak:
                    running_peak = record
                elif running_peak > 0 and record < 0.8 * running_peak:
                    return t
            return float("inf")

        t1 = first_reclaim_time("job1")
        t3 = first_reclaim_time("job3")
        assert t1 < t3, (t1, t3)

    def test_report_renders(self, e3):
        text = fig7_fig8.report(e3)
        assert "Fig 7" in text and "Fig 8(a)" in text
        assert "FAIL" not in text


class TestE4FrequencySweep:
    def test_finer_interval_not_worse(self):
        sweep = fig9.run(TEST_SCALE, intervals_s=(0.1, 1.0))
        fine, coarse = sweep.intervals_s
        assert sweep.aggregate(fine) >= sweep.aggregate(coarse)

    def test_report_renders(self):
        sweep = fig9.run(TEST_SCALE, intervals_s=(0.1, 0.5))
        text = fig9.report(sweep)
        assert "Fig 9" in text


class TestE5Overhead:
    def test_linear_scaling(self):
        result = overhead.run(job_counts=(4, 32, 128), rounds=10)
        for check in overhead.check_shapes(result):
            assert check.passed, f"{check.claim}: {check.detail}"

    def test_us_per_job_reasonable(self):
        result = overhead.run(job_counts=(16,), rounds=5)
        # The paper's C prototype: <30 us/job.  Allow generous slack for
        # pure Python on arbitrary CI hardware.
        assert result.us_per_job[16] < 500.0

    def test_report_renders(self):
        result = overhead.run(job_counts=(4, 16), rounds=3)
        assert "us per job" in overhead.report(result)
