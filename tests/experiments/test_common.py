"""Tests for the shared experiment plumbing (scales, comparison helpers)."""

import pytest

from repro.experiments.common import (
    MechanismComparison,
    bench_scale,
    compare_mechanisms,
    full_scale,
)
from repro.workloads.scenarios import ScenarioConfig, scenario_allocation


def test_full_scale_is_paper_configuration():
    cfg = full_scale()
    assert cfg.data_scale == 1.0
    assert cfg.time_scale == 1.0


def test_bench_scale_reduced_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    cfg = bench_scale()
    assert cfg.data_scale < 1.0
    assert cfg.time_scale < 1.0
    assert cfg.data_scale == cfg.time_scale  # uniform scaling


def test_bench_scale_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_FULL", "1")
    cfg = bench_scale()
    assert cfg.data_scale == 1.0 and cfg.time_scale == 1.0


class TestMechanismComparison:
    @pytest.fixture(scope="class")
    def cmp(self):
        scenario = scenario_allocation(
            ScenarioConfig(data_scale=1 / 256, heavy_procs=2)
        )
        return compare_mechanisms(scenario, capacity_mib_s=256)

    def test_all_three_mechanisms_present(self, cmp):
        assert set(cmp.results) == {"none", "static", "adaptbf"}
        assert cmp.none.mechanism == "none"
        assert cmp.static.mechanism == "static"
        assert cmp.adaptbf.mechanism == "adaptbf"

    def test_job_ids_follow_scenario(self, cmp):
        assert cmp.job_ids == ["job1", "job2", "job3", "job4"]

    def test_bandwidth_table_contains_all_mechanisms(self, cmp):
        table = cmp.bandwidth_table("T")
        for mechanism in ("none", "static", "adaptbf"):
            assert mechanism in table
        assert "overall" in table

    def test_gains_table_references_baseline(self, cmp):
        table = cmp.gains_table("none", "G")
        assert "aggregate" in table

    def test_timeline_report_covers_all_jobs(self, cmp):
        report = cmp.timeline_report("adaptbf")
        for job in cmp.job_ids:
            assert job in report

    def test_isolated_mechanism_subset(self):
        scenario = scenario_allocation(
            ScenarioConfig(data_scale=1 / 256, heavy_procs=2)
        )
        cmp = compare_mechanisms(
            scenario, capacity_mib_s=256, mechanisms=("adaptbf",)
        )
        assert set(cmp.results) == {"adaptbf"}
