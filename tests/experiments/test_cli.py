"""Tests for the unified experiment CLI (run / list / describe)."""

import pytest

from repro.experiments.__main__ import main


class TestList:
    def test_lists_figures_and_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "fig9", "overhead", "quickstart", "burst-storm"):
            assert name in out


class TestDescribe:
    def test_describe_registered_scenario(self, capsys):
        assert main(["describe", "quickstart"]) == 0
        out = capsys.readouterr().out
        assert "quickstart" in out
        assert "--param" in out
        assert "topology:" in out

    def test_describe_figure_points_at_scenario(self, capsys):
        assert main(["describe", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "allocation" in out
        assert "mechanisms" in out

    def test_describe_unknown_exits(self):
        with pytest.raises(SystemExit):
            main(["describe", "nope"])


class TestRun:
    def test_run_registered_scenario_with_overrides(self, capsys):
        code = main(
            [
                "run",
                "quickstart",
                "--duration",
                "0.5",
                "--param",
                "file_mib=16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "achieved bandwidth (adaptbf)" in out
        assert "science" in out and "hog" in out

    def test_run_mechanism_override(self, capsys):
        code = main(
            [
                "run",
                "quickstart",
                "--mechanism",
                "none",
                "--param",
                "file_mib=16",
            ]
        )
        assert code == 0
        assert "achieved bandwidth (none)" in capsys.readouterr().out

    def test_run_underscore_alias(self, capsys):
        code = main(
            ["run", "burst_storm", "--param", "n_jobs=2", "--duration", "0.5"]
        )
        assert code == 0
        assert "storm1" in capsys.readouterr().out

    def test_unknown_scenario_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "not-a-scenario"])

    def test_unknown_param_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "quickstart", "--param", "bogus=1"])

    def test_csv_export(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "quickstart",
                "--param",
                "file_mib=16",
                "--csv",
                str(tmp_path),
            ]
        )
        assert code == 0
        written = list(tmp_path.glob("quickstart_*.csv"))
        assert written

    def test_legacy_invocation_rewritten(self, capsys):
        """`python -m repro.experiments fig3 ...` still parses as `run fig3`."""
        import repro.experiments.__main__ as cli

        captured = {}

        def fake_run_figures(name, args, params):
            captured["name"] = name
            captured["full"] = args.full
            return True

        original = cli._run_figures
        cli._run_figures = fake_run_figures
        try:
            assert main(["fig3", "--full"]) == 0
        finally:
            cli._run_figures = original
        assert captured == {"name": "fig3", "full": True}


class TestCampaign:
    def test_campaign_list(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("freq-sweep", "burst-grid", "scale-osts"):
            assert name in out

    def test_campaign_describe(self, capsys):
        assert main(["campaign", "describe", "freq-sweep"]) == 0
        out = capsys.readouterr().out
        assert "interval_s" in out
        assert "recompensation" in out
        assert "--param" in out
        # The spec hash is the store/resume identity key; describe must
        # surface it so a sweep can be matched to its durable store.
        assert "hash=" in out

    def test_campaign_describe_unknown_exits(self):
        with pytest.raises(SystemExit):
            main(["campaign", "describe", "nope"])

    def test_campaign_run_with_artifacts(self, tmp_path, capsys):
        code = main(
            [
                "campaign",
                "run",
                "scale-osts",
                "--param",
                "osts=1",
                "--param",
                "capacities=128",
                "--param",
                "file_mib=8",
                "--param",
                "procs=2",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign 'scale-osts'" in out
        assert "MiB/s" in out
        for artifact in ("manifest.json", "rows.json", "rows.csv", "timing.json"):
            assert (tmp_path / artifact).exists()

    def test_campaign_store_run_status_resume_cycle(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        base = [
            "campaign", "run", "scale-osts",
            "--param", "osts=1",
            "--param", "capacities=128,192",
            "--param", "file_mib=8",
            "--param", "procs=2",
            "--store", store,
        ]
        # Half the sweep, with per-cell progress lines.
        assert main(base + ["--max-cells", "1", "--progress"]) == 0
        out = capsys.readouterr().out
        assert "[1/2] cell 0:" in out
        assert "campaign incomplete" in out

        assert main(["campaign", "status", store]) == 0
        out = capsys.readouterr().out
        assert "1/2 committed" in out
        assert "campaign resume" in out

        assert main(["campaign", "resume", store]) == 0
        out = capsys.readouterr().out
        assert "skipped 1 already-committed" in out

        assert main(["campaign", "status", store]) == 0
        assert "complete" in capsys.readouterr().out

    def test_campaign_fresh_run_on_dirty_store_exits(self, tmp_path, capsys):
        base = [
            "campaign", "run", "scale-osts",
            "--param", "osts=1",
            "--param", "capacities=128,192",
            "--param", "file_mib=8",
            "--param", "procs=2",
            "--store", str(tmp_path / "s.db"),
        ]
        assert main(base + ["--max-cells", "1"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="resume"):
            main(base)
        # --resume picks the half-finished sweep back up instead.
        assert main(base + ["--resume"]) == 0

    def test_campaign_resume_requires_store(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "campaign", "run", "freq-sweep", "--resume",
                ]
            )

    def test_campaign_status_empty_store_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no campaign"):
            main(["campaign", "status", str(tmp_path / "empty")])

    def test_campaign_run_unknown_param_exits(self):
        with pytest.raises(SystemExit):
            main(["campaign", "run", "freq-sweep", "--param", "bogus=1"])

    def test_campaign_run_unknown_name_exits(self):
        with pytest.raises(SystemExit):
            main(["campaign", "run", "not-a-campaign"])

    def test_campaign_underscore_alias(self, capsys):
        assert main(["campaign", "describe", "freq_sweep"]) == 0
        assert "freq-sweep" in capsys.readouterr().out

    def test_scenario_list_mentions_campaigns(self, capsys):
        assert main(["list"]) == 0
        assert "campaign list" in capsys.readouterr().out


class TestMechanismCli:
    def test_mechanism_list(self, capsys):
        assert main(["mechanism", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("none", "static", "adaptbf", "adaptbf-ewma", "pid"):
            assert name in out
        assert "--mechanism" in out

    def test_mechanism_describe(self, capsys):
        assert main(["mechanism", "describe", "pid"]) == 0
        out = capsys.readouterr().out
        assert "kp" in out and "ki" in out
        assert "mechanism: pid" in out

    def test_mechanism_describe_unknown_exits(self):
        with pytest.raises(SystemExit):
            main(["mechanism", "describe", "nope"])

    def test_run_with_new_mechanism_and_params(self, capsys):
        code = main(
            [
                "run",
                "quickstart",
                "--mechanism",
                "pid",
                "--mechanism-param",
                "kp=0.9",
                "--param",
                "file_mib=16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "achieved bandwidth (pid)" in out
        assert "kp=0.9" in out  # spec header records the override

    def test_run_unknown_mechanism_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "quickstart", "--mechanism", "bogus"])

    def test_run_unknown_mechanism_param_exits(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "quickstart",
                    "--mechanism",
                    "pid",
                    "--mechanism-param",
                    "bogus=1",
                ]
            )

    def test_scenario_list_mentions_mechanisms(self, capsys):
        assert main(["list"]) == 0
        assert "mechanism list" in capsys.readouterr().out

    def test_shootout_reports_comparison_table(self, capsys):
        code = main(
            [
                "campaign",
                "run",
                "mechanism-shootout",
                "--param",
                "mechanisms=none,static",
                "--param",
                "scenario=quickstart",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mechanism shootout" in out
        assert "fairness" in out


class TestWorkloadCli:
    def test_workload_list(self, capsys):
        assert main(["workload", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("seq-write", "seq-read", "poisson", "trace-replay"):
            assert name in out
        assert "--workload" in out

    def test_workload_describe(self, capsys):
        assert main(["workload", "describe", "on-off"]) == 0
        out = capsys.readouterr().out
        assert "on_mib" in out
        assert "OnOffPattern" in out

    def test_workload_describe_unknown_exits(self):
        with pytest.raises(SystemExit):
            main(["workload", "describe", "nope"])

    def test_run_with_workload_override(self, capsys):
        code = main(
            [
                "run",
                "quickstart",
                "--workload",
                "seq-read",
                "--workload-param",
                "total_mib=8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "workload: seq-read" in out
        assert "achieved bandwidth (adaptbf)" in out

    def test_run_unknown_workload_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "quickstart", "--workload", "bogus"])

    def test_run_unknown_workload_param_exits(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "quickstart",
                    "--workload",
                    "poisson",
                    "--workload-param",
                    "bogus=1",
                ]
            )

    def test_workload_param_without_workload_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "quickstart", "--workload-param", "total_mib=8"])

    def test_figure_adapters_reject_workload_flags(self):
        with pytest.raises(SystemExit):
            main(["run", "fig3", "--workload", "poisson"])

    def test_run_trace_replay_scenario(self, capsys):
        code = main(
            [
                "run",
                "trace-replay",
                "--param",
                "time_scale=0.25",
                "--param",
                "data_scale=0.25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ingest" in out and "analysis" in out and "checkpoint" in out

    def test_scenario_list_mentions_workloads(self, capsys):
        assert main(["list"]) == 0
        assert "workload list" in capsys.readouterr().out
