"""Tests for Jain's fairness index, including on real experiment output."""

import pytest

from repro.experiments import fig3_fig4
from repro.metrics.summary import BandwidthSummary, jain_index
from repro.workloads.scenarios import ScenarioConfig


def summary_of(per_job):
    return BandwidthSummary(
        mechanism="x",
        duration_s=1.0,
        per_job_mib_s=per_job,
        aggregate_mib_s=sum(per_job.values()),
    )


def test_equal_shares_are_perfectly_fair():
    assert jain_index(summary_of({"a": 10.0, "b": 10.0, "c": 10.0})) == 1.0


def test_single_hog_scores_one_over_n():
    assert jain_index(
        summary_of({"a": 30.0, "b": 0.0, "c": 0.0})
    ) == pytest.approx(1 / 3)


def test_weighted_index_rewards_proportionality():
    # Bandwidth exactly proportional to weights: weighted index = 1.
    summary = summary_of({"a": 10.0, "b": 30.0})
    assert jain_index(summary, weights={"a": 1.0, "b": 3.0}) == pytest.approx(
        1.0
    )
    # Unweighted, the same split is unfair.
    assert jain_index(summary) < 1.0


def test_all_zero_is_vacuously_fair():
    assert jain_index(summary_of({"a": 0.0, "b": 0.0})) == 1.0


def test_invalid_weight_rejected():
    with pytest.raises(ValueError):
        jain_index(summary_of({"a": 1.0}), weights={"a": 0.0})


def test_adaptbf_sits_between_fcfs_and_static_on_fairness():
    """The paper's positioning, quantified with a weighted Jain index.

    Static BW is *perfectly* priority-proportional (index 1.0) but wastes
    the server; No BW is throughput-optimal but priority-blind.  AdapTBF
    must land strictly between them on weighted fairness while keeping
    near-FCFS aggregate throughput — that combination is the contribution.
    """
    cmp = fig3_fig4.run(ScenarioConfig(data_scale=1 / 32, time_scale=1 / 10))
    weights = {job.job_id: float(job.nodes) for job in cmp.scenario.jobs}
    fair = {
        m: jain_index(cmp.results[m].summary, weights=weights)
        for m in ("none", "static", "adaptbf")
    }
    assert fair["none"] < fair["adaptbf"] <= fair["static"]
    assert fair["static"] == pytest.approx(1.0, abs=1e-3)
    # ... and unlike Static, AdapTBF pays almost nothing in throughput.
    assert (
        cmp.adaptbf.summary.aggregate_mib_s
        > 2 * cmp.static.summary.aggregate_mib_s
    )
    assert (
        cmp.adaptbf.summary.aggregate_mib_s
        > 0.9 * cmp.none.summary.aggregate_mib_s
    )
