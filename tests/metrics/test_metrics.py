"""Unit tests for timelines, summaries and table rendering."""

import numpy as np
import pytest

from repro.metrics.summary import gains_versus, summarize
from repro.metrics.tables import format_gains, format_series, format_table
from repro.metrics.timeline import Timeline

MIB = 1 << 20


class TestTimeline:
    def test_bins_accumulate_bytes(self):
        tl = Timeline(bin_s=0.1)
        tl.record("j1", 0.05, 10 * MIB)
        tl.record("j1", 0.07, 10 * MIB)
        tl.record("j1", 0.15, 5 * MIB)
        times, values = tl.series("j1")
        assert values[0] == pytest.approx(200.0)  # 20 MiB in 0.1 s
        assert values[1] == pytest.approx(50.0)

    def test_series_zero_filled_to_horizon(self):
        tl = Timeline(bin_s=0.1)
        tl.record("j1", 0.95, MIB)
        times, values = tl.series("j1")
        assert len(values) == 10
        assert np.count_nonzero(values) == 1

    def test_series_for_unknown_job_is_zero(self):
        tl = Timeline(bin_s=0.1)
        tl.record("j1", 0.5, MIB)
        _, values = tl.series("ghost")
        assert values.sum() == 0.0

    def test_aggregate_sums_jobs(self):
        tl = Timeline(bin_s=0.1)
        tl.record("a", 0.05, MIB)
        tl.record("b", 0.05, 3 * MIB)
        _, agg = tl.aggregate_series()
        assert agg[0] == pytest.approx(40.0)

    def test_total_bytes_and_mean(self):
        tl = Timeline(bin_s=0.1)
        tl.record("a", 0.5, 10 * MIB)
        tl.record("b", 1.0, 10 * MIB)
        assert tl.total_bytes() == 20 * MIB
        assert tl.total_bytes("a") == 10 * MIB
        assert tl.mean_throughput(duration=2.0) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Timeline(bin_s=0)
        tl = Timeline()
        with pytest.raises(ValueError):
            tl.record("j", 0.0, -1)


class TestSummaries:
    def test_per_job_span_is_completion_time(self):
        tl = Timeline(bin_s=0.1)
        # Both jobs write 100 MiB; j1 finishes at 1 s, j2 at 4 s.
        for t in np.arange(0.05, 1.0, 0.1):
            tl.record("j1", t, 10 * MIB)
        for t in np.arange(0.05, 4.0, 0.1):
            tl.record("j2", t, 2.5 * MIB)
        summary = summarize(
            "x",
            tl,
            duration_s=4.0,
            jobs=["j1", "j2"],
            job_completion_s={"j1": 1.0, "j2": 4.0},
        )
        assert summary.job("j1") == pytest.approx(100.0)
        assert summary.job("j2") == pytest.approx(25.0)
        # Aggregate over the whole run: 200 MiB / 4 s.
        assert summary.aggregate_mib_s == pytest.approx(50.0)

    def test_unfinished_job_uses_full_duration(self):
        tl = Timeline(bin_s=0.1)
        tl.record("j1", 0.5, 10 * MIB)
        summary = summarize("x", tl, duration_s=10.0, jobs=["j1"])
        assert summary.job("j1") == pytest.approx(1.0)

    def test_gains_computation(self):
        tl = Timeline(bin_s=0.1)
        tl.record("a", 0.5, 20 * MIB)
        tl.record("b", 0.5, 10 * MIB)
        subject = summarize("s", tl, duration_s=1.0)
        tl2 = Timeline(bin_s=0.1)
        tl2.record("a", 0.5, 10 * MIB)
        tl2.record("b", 0.5, 20 * MIB)
        baseline = summarize("b", tl2, duration_s=1.0)
        gains = gains_versus(subject, baseline)
        assert gains["a"] == pytest.approx(100.0)
        assert gains["b"] == pytest.approx(-50.0)
        assert gains["aggregate"] == pytest.approx(0.0)

    def test_gain_against_zero_baseline_is_inf(self):
        tl = Timeline(bin_s=0.1)
        tl.record("a", 0.5, MIB)
        subject = summarize("s", tl, duration_s=1.0)
        empty = Timeline(bin_s=0.1)
        empty.record("b", 0.5, MIB)
        baseline = summarize("b", empty, duration_s=1.0)
        gains = gains_versus(subject, baseline)
        assert gains["a"] == float("inf")

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            summarize("x", Timeline(), duration_s=0.0)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1.234], ["bb", 10.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.2" in text and "10.0" in text

    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_format_series_shape(self):
        times = np.arange(0, 3, 0.1)
        values = np.ones(30) * 50.0
        text = format_series("job", times, values, resample_s=1.0)
        assert text.count("t=") == 3
        assert "#" in text

    def test_format_series_empty(self):
        assert "empty" in format_series("job", np.array([]), np.array([]))

    def test_format_gains_places_aggregate_last(self):
        text = format_gains({"b": 1.0, "a": 2.0, "aggregate": 3.0}, "G")
        lines = text.splitlines()
        assert lines[-1].startswith("aggregate")
