"""Tests for CSV export and the CLI runner."""

import csv

import pytest

from repro.cluster.builder import ClusterConfig
from repro.cluster.experiment import run_experiment
from repro.metrics.export import (
    export_all,
    export_records,
    export_summary,
    export_timeline,
)
from repro.metrics.timeline import Timeline
from repro.workloads.patterns import SequentialWritePattern
from repro.workloads.spec import JobSpec, ProcessSpec

MIB = 1 << 20


def small_result(mechanism="adaptbf"):
    jobs = [
        JobSpec(
            job_id=f"j{i}",
            nodes=i + 1,
            processes=(ProcessSpec(SequentialWritePattern(10 * MIB)),),
        )
        for i in range(2)
    ]
    return run_experiment(
        ClusterConfig(mechanism=mechanism, capacity_mib_s=100), jobs
    )


def read_csv(path):
    with open(path) as handle:
        return list(csv.reader(handle))


class TestExportTimeline:
    def test_header_and_rows(self, tmp_path):
        tl = Timeline(bin_s=0.1)
        tl.record("a", 0.05, MIB)
        tl.record("b", 0.15, 2 * MIB)
        path = export_timeline(tl, tmp_path / "tl.csv")
        rows = read_csv(path)
        assert rows[0] == ["time_s", "a", "b", "aggregate"]
        assert len(rows) == 3  # header + 2 bins
        assert float(rows[1][1]) == pytest.approx(10.0)  # 1 MiB / 0.1 s
        assert float(rows[2][3]) == pytest.approx(20.0)

    def test_creates_directories(self, tmp_path):
        tl = Timeline()
        tl.record("a", 0.05, MIB)
        path = export_timeline(tl, tmp_path / "deep" / "dir" / "tl.csv")
        assert path.exists()


class TestExportSummaryAndRecords:
    def test_summary_rows_per_mechanism(self, tmp_path):
        results = {
            "none": small_result("none"),
            "adaptbf": small_result("adaptbf"),
        }
        path = export_summary(
            {m: r.summary for m, r in results.items()}, tmp_path / "s.csv"
        )
        rows = read_csv(path)
        assert rows[0] == ["mechanism", "j0", "j1", "aggregate_mib_s"]
        assert {r[0] for r in rows[1:]} == {"none", "adaptbf"}

    def test_records_columns(self, tmp_path):
        result = small_result()
        path = export_records(result, tmp_path / "r.csv")
        rows = read_csv(path)
        assert rows[0][0] == "time_s"
        assert "j0_record" in rows[0] and "j1_demand" in rows[0]
        assert len(rows) == len(result.history) + 1

    def test_export_all_bundle(self, tmp_path):
        results = {
            "none": small_result("none"),
            "adaptbf": small_result("adaptbf"),
        }
        written = export_all(results, tmp_path, prefix="e1")
        assert (tmp_path / "e1_summary.csv").exists()
        assert (tmp_path / "e1_timeline_none.csv").exists()
        assert (tmp_path / "e1_records_adaptbf.csv").exists()
        # Baselines have no history => no records file.
        assert "records_none" not in written


class TestCli:
    def test_cli_overhead_runs(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "us per job" in out

    def test_cli_fig3_with_csv(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig3", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig3_summary.csv").exists()
        out = capsys.readouterr().out
        assert "Fig 4(a)" in out

    def test_cli_rejects_unknown_experiment(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["figX"])
