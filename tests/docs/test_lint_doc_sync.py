"""Every lint rule's documented Example executes verbatim.

``repro lint describe RULE`` prints the rule's docstring, whose
``Example`` block shows a minimal violating snippet and (usually) its
fixed or pragma'd twin.  Same contract as ``docs/extending.md``: if the
documented behaviour drifts from the implementation, this suite fails —
the assertions inside each block run against the real linter.
"""

import inspect
import re

import pytest

from repro.analysis import RULES

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def blocks_for(rule_id: str):
    doc = inspect.getdoc(RULES.get(rule_id).factory) or ""
    return _FENCE.findall(doc)


class TestRuleExamples:
    @pytest.mark.parametrize("rule_id", RULES.names())
    def test_every_rule_documents_an_example(self, rule_id):
        assert blocks_for(rule_id), f"rule {rule_id!r} has no ```python example"

    @pytest.mark.parametrize("rule_id", RULES.names())
    def test_examples_execute_verbatim(self, rule_id):
        for index, block in enumerate(blocks_for(rule_id)):
            try:
                exec(
                    compile(block, f"<{rule_id} example {index}>", "exec"), {}
                )
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail(
                    f"rule {rule_id!r} example {index} no longer runs: "
                    f"{type(exc).__name__}: {exc}\n---\n{block}"
                )

    @pytest.mark.parametrize("rule_id", RULES.names())
    def test_examples_assert_something(self, rule_id):
        # An example without assertions can't catch drift.
        assert any("assert" in b for b in blocks_for(rule_id))

    def test_describe_includes_the_example(self):
        text = RULES.describe("no-wallclock")
        assert "Example" in text and "lint_source" in text
