"""docs/extending.md stays runnable: every Python block executes verbatim.

The guide promises its examples work as written; this test extracts each
fenced ``python`` block in file order and executes them in one shared
namespace (the blocks build on each other), then removes the registrations
the examples made so other tests see a clean registry set.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXTENDING = REPO_ROOT / "docs" / "extending.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path):
    return _FENCE.findall(path.read_text())


@pytest.fixture
def clean_doc_registrations():
    yield
    from repro.campaigns import CAMPAIGNS
    from repro.core.mechanism import MECHANISMS
    from repro.faults import FAULTS
    from repro.scenarios import REGISTRY
    from repro.workloads.registry import WORKLOADS

    for registry in (WORKLOADS, MECHANISMS, REGISTRY, CAMPAIGNS, FAULTS):
        for name in list(registry.names()):
            if name.startswith("doc-"):
                registry.unregister(name)


class TestExtendingGuide:
    def test_has_blocks_for_every_axis(self):
        blocks = python_blocks(EXTENDING)
        assert len(blocks) >= 5
        joined = "\n".join(blocks)
        for registry in (
            "WORKLOADS",
            "MECHANISMS",
            "REGISTRY",
            "CAMPAIGNS",
            "FAULTS",
        ):
            assert f"@{registry}.register" in joined

    def test_blocks_execute_verbatim(self, clean_doc_registrations):
        namespace = {}
        for index, block in enumerate(python_blocks(EXTENDING)):
            try:
                exec(compile(block, f"{EXTENDING}:block{index}", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail(
                    f"docs/extending.md block {index} no longer runs: "
                    f"{type(exc).__name__}: {exc}\n---\n{block}"
                )
