"""Intra-repo links in README/docs/DESIGN.md must point at real files.

External (http/https/mailto) links and pure in-page anchors are skipped;
everything else is resolved relative to the file containing it and must
exist — a broken module path or renamed doc fails CI.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md"]
    + list((REPO_ROOT / "docs").glob("*.md"))
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def intra_repo_links(path: Path):
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


def test_doc_files_present():
    for path in DOC_FILES:
        assert path.exists(), f"expected doc file missing: {path}"
    assert any(p.name == "architecture.md" for p in DOC_FILES)
    assert any(p.name == "extending.md" for p in DOC_FILES)


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_intra_repo_links_resolve(doc):
    broken = []
    for target in intra_repo_links(doc):
        resolved = (doc.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken intra-repo link(s): {broken}"
