"""Property-based tests (hypothesis) for the TBF scheduler and token bucket.

Invariants pinned (DESIGN.md §6):

* **rate compliance** — a queue never serves more than ``depth + rate·T``
  RPCs over any window starting from a full bucket;
* **conservation** — every enqueued RPC is either served exactly once or
  still pending; nothing is lost or duplicated through rule churn;
* **FIFO per job** — a job's RPCs are served in arrival order regardless of
  what happens to other queues or rules;
* **bucket monotonicity** — token level never exceeds depth and never goes
  negative.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lustre.bucket import TokenBucket
from repro.lustre.rpc import Rpc
from repro.lustre.tbf import TbfRule, TbfScheduler

JOBS = ["a", "b", "c"]


def ops_strategy():
    """A random schedule of scheduler operations with increasing time."""
    op = st.one_of(
        st.tuples(st.just("enqueue"), st.sampled_from(JOBS)),
        st.tuples(st.just("dequeue"), st.none()),
        st.tuples(st.just("rerate"), st.sampled_from(JOBS)),
        st.tuples(st.just("advance"), st.floats(0.001, 0.5)),
    )
    return st.lists(op, min_size=1, max_size=80)


def build_sched(rates):
    sched = TbfScheduler()
    for job, rate in rates.items():
        sched.start_rule(0.0, TbfRule(f"r_{job}", job, rate=rate, depth=3))
    return sched


@given(
    ops=ops_strategy(),
    rates=st.fixed_dictionaries(
        {j: st.floats(min_value=1.0, max_value=100.0) for j in JOBS}
    ),
)
@settings(max_examples=120, deadline=None)
def test_conservation_and_fifo(ops, rates):
    sched = build_sched(rates)
    now = 0.0
    enqueued = {j: [] for j in JOBS}
    served = {j: [] for j in JOBS}
    for kind, arg in ops:
        if kind == "enqueue":
            rpc = Rpc(job_id=arg, client_id="c", size_bytes=1)
            enqueued[arg].append(rpc)
            sched.enqueue(now, rpc)
        elif kind == "dequeue":
            rpc = sched.dequeue(now)
            if rpc is not None:
                served[rpc.job_id].append(rpc)
        elif kind == "rerate":
            sched.change_rate(now, f"r_{arg}", rates[arg] * 2)
        else:  # advance
            now += arg

    total_pending = sched.pending
    total_enqueued = sum(len(v) for v in enqueued.values())
    total_served = sum(len(v) for v in served.values())
    # Conservation: enqueued == served + pending.
    assert total_enqueued == total_served + total_pending
    # FIFO per job: served order is a prefix-order-preserving subsequence.
    for job in JOBS:
        assert served[job] == enqueued[job][: len(served[job])]


@given(
    rate=st.floats(min_value=1.0, max_value=200.0),
    horizon=st.floats(min_value=0.1, max_value=5.0),
    step=st.floats(min_value=0.001, max_value=0.05),
)
@settings(max_examples=100, deadline=None)
def test_rate_compliance_under_constant_pressure(rate, horizon, step):
    """Served count over [0,T] <= depth + rate*T, >= rate*T - 1 (work cons.)."""
    depth = 3
    sched = TbfScheduler()
    sched.start_rule(0.0, TbfRule("r", "job", rate=rate, depth=depth))
    for _ in range(int(depth + rate * horizon) + 10):
        sched.enqueue(0.0, Rpc(job_id="job", client_id="c", size_bytes=1))
    served = 0
    t = 0.0
    while t <= horizon:
        while sched.dequeue(t) is not None:
            served += 1
        t += step
    assert served <= depth + rate * horizon + 1e-6
    # Work conservation at the sampling resolution: no token is wasted
    # while a backlog exists — except by design when the poll interval lets
    # the bucket overflow.  With a fractional residue of up to 1 token left
    # after each harvest, overflow starts once rate*step > depth - 1, so the
    # guaranteed harvest rate is min(rate, (depth-1)/step): TBF's
    # burst-bounding property, not a bug.
    effective_rate = min(rate, (depth - 1) / step)
    # Slack of 2: one token potentially in flight at the final sample plus
    # the fractional token never matured by the end of the window.
    assert served >= effective_rate * (horizon - step) - 2


@given(
    rate=st.floats(min_value=0.0, max_value=1000.0),
    depth=st.floats(min_value=0.5, max_value=64.0),
    times=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=50
    ),
)
@settings(max_examples=150, deadline=None)
def test_bucket_bounds(rate, depth, times):
    bucket = TokenBucket(rate=rate, depth=depth, tokens=0.0, now=0.0)
    for t in sorted(times):
        level = bucket.tokens_at(t)
        assert 0.0 <= level <= depth + 1e-9
        bucket.try_consume(t)  # whatever happens, bounds must hold
        assert 0.0 <= bucket.tokens_at(t) <= depth + 1e-9


@given(
    ops=ops_strategy(),
)
@settings(max_examples=80, deadline=None)
def test_rule_churn_never_loses_rpcs(ops):
    """Stopping/restarting rules mid-stream conserves every RPC."""
    sched = build_sched({j: 10.0 for j in JOBS})
    now = 0.0
    total_in = 0
    total_out = 0
    for i, (kind, arg) in enumerate(ops):
        if kind == "enqueue":
            sched.enqueue(now, Rpc(job_id=arg, client_id="c", size_bytes=1))
            total_in += 1
        elif kind == "dequeue":
            if sched.dequeue(now) is not None:
                total_out += 1
        elif kind == "rerate":
            # Every third rerate becomes a stop/start churn instead.
            name = f"r_{arg}"
            if i % 3 == 0 and name in sched.rule_names():
                sched.stop_rule(now, name)
                sched.start_rule(now, TbfRule(name, arg, rate=10.0, depth=3))
            elif name in sched.rule_names():
                sched.change_rate(now, name, 20.0)
        else:
            now += arg
    assert total_in == total_out + sched.pending
