"""Edge-case tests for the network and OSS layers."""

import pytest

from repro.lustre import ClientProcess, FifoPolicy, Network, Oss, Ost
from repro.lustre.rpc import Rpc, RpcKind
from repro.sim import Environment

MB = 1 << 20


class TestNetwork:
    def test_zero_latency_is_synchronous_delivery(self):
        env = Environment()
        ost = Ost(env, "ost0", capacity_bps=100 * MB)
        oss = Oss(env, ost, FifoPolicy(env))
        net = Network(env, latency_s=0.0)
        rpc = Rpc(job_id="j", client_id="c", size_bytes=MB)
        net.submit(rpc, oss)
        # Delivered before any simulation step ran.
        assert oss.jobstats.outstanding("j") == 1

    def test_rpcs_carried_counter(self):
        env = Environment()
        ost = Ost(env, "ost0", capacity_bps=100 * MB)
        oss = Oss(env, ost, FifoPolicy(env))
        net = Network(env, latency_s=0.001)
        for _ in range(5):
            net.submit(Rpc(job_id="j", client_id="c", size_bytes=MB), oss)
        assert net.rpcs_carried == 5

    def test_latency_applies_both_ways(self):
        env = Environment()
        ost = Ost(env, "ost0", capacity_bps=1000 * MB)
        oss = Oss(env, ost, FifoPolicy(env))
        net = Network(env, latency_s=0.05)
        done = []
        client_event = net.submit(
            Rpc(job_id="j", client_id="c", size_bytes=MB), oss
        )
        client_event.add_callback(lambda e: done.append(env.now))
        env.run()
        # 50 ms out + ~1 ms service + 50 ms back.
        assert done[0] == pytest.approx(0.101, abs=0.005)


class TestOssEdges:
    def test_rpc_overhead_charged_per_rpc(self):
        env = Environment()
        ost = Ost(env, "ost0", capacity_bps=1000 * MB)
        oss = Oss(
            env, ost, FifoPolicy(env), io_threads=1, rpc_overhead_s=0.01
        )
        net = Network(env, latency_s=0.0)

        def program(io):
            yield from io.write(5 * MB)

        ClientProcess(env, net, oss, "j", "c", program, window=1)
        env.run()
        # 5 RPCs x (10 ms overhead + 1 ms transfer) = ~55 ms.
        assert env.now == pytest.approx(0.055, abs=0.01)

    def test_invalid_oss_parameters(self):
        env = Environment()
        ost = Ost(env, "ost0", capacity_bps=MB)
        with pytest.raises(ValueError):
            Oss(env, ost, FifoPolicy(env), io_threads=0)
        with pytest.raises(ValueError):
            Oss(env, ost, FifoPolicy(env), rpc_overhead_s=-1)

    def test_read_rpcs_flow_through(self):
        env = Environment()
        ost = Ost(env, "ost0", capacity_bps=100 * MB)
        oss = Oss(env, ost, FifoPolicy(env))
        net = Network(env, latency_s=0.0)
        kinds = []
        oss.on_complete(lambda rpc: kinds.append(rpc.kind))

        def program(io):
            yield io.submit(MB, kind=RpcKind.READ)
            yield io.submit(MB, kind=RpcKind.WRITE)

        ClientProcess(env, net, oss, "j", "c", program)
        env.run()
        assert kinds == [RpcKind.READ, RpcKind.WRITE]

    def test_rpc_lifecycle_timestamps_ordered(self):
        env = Environment()
        ost = Ost(env, "ost0", capacity_bps=100 * MB)
        oss = Oss(env, ost, FifoPolicy(env))
        net = Network(env, latency_s=0.001)
        rpcs = []
        oss.on_complete(rpcs.append)

        def program(io):
            yield from io.write(3 * MB)

        ClientProcess(env, net, oss, "j", "c", program)
        env.run()
        for rpc in rpcs:
            assert (
                rpc.submitted
                <= rpc.arrived
                <= rpc.dequeued
                <= rpc.completed
            )
            assert rpc.queue_wait is not None and rpc.queue_wait >= 0
            assert rpc.service_time is not None and rpc.service_time > 0

    def test_many_threads_few_rpcs(self):
        """More threads than work: no deadlock, no double service."""
        env = Environment()
        ost = Ost(env, "ost0", capacity_bps=100 * MB)
        oss = Oss(env, ost, FifoPolicy(env), io_threads=64)
        net = Network(env, latency_s=0.0)

        def program(io):
            yield from io.write(2 * MB)

        client = ClientProcess(env, net, oss, "j", "c", program)
        env.run()
        assert client.finished
        assert oss.completed_rpcs == 2
