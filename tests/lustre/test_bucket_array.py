"""BucketArray/BucketView parity with TokenBucket — *exact* float equality.

The bank's whole claim is that switching a TBF scheduler from standalone
:class:`TokenBucket` objects to one struct-of-arrays bank changes nothing
observable: every view operation uses the verbatim scalar expressions, and
every batch operation orders its float64 arithmetic identically to the
scalar loop.  So these tests compare with ``==`` on floats, never
``approx`` — one ULP of drift here becomes a diverged event trace upstream.
"""

import pytest

import repro.lustre.bucket as bucket_mod
from repro.lustre.bucket import _VECTOR_MIN, BucketArray, BucketView, TokenBucket


def mixed_op_sequence():
    """A deterministic accrual/consume/set_rate/drain gauntlet.

    Yields (method, args) pairs covering every mutating and observing
    operation at awkward times (rate changes mid-accrual, consume at the
    depth cap, drain then refill from zero).
    """
    return [
        ("tokens_at", (0.0,)),
        ("try_consume", (0.1, 1)),
        ("try_consume", (0.1, 2)),
        ("ready_at", (0.15, 3)),
        ("set_rate", (0.2, 7.5)),
        ("try_consume", (0.3, 1)),
        ("tokens_at", (0.4,)),
        ("drain", (0.5,)),
        ("ready_at", (0.5, 1)),
        ("try_consume", (0.55, 1)),
        ("set_rate", (0.6, 0.0)),
        ("ready_at", (0.7, 1)),
        ("set_rate", (0.8, 123.456)),
        ("try_consume", (0.81, 3)),
        ("tokens_at", (0.9,)),
        ("drain", (1.0,)),
    ]


def run_sequence(bucket):
    return [getattr(bucket, op)(*args) for op, args in mixed_op_sequence()]


class TestViewScalarParity:
    def test_mixed_sequence_bit_identical(self):
        scalar = TokenBucket(rate=5.0, depth=3.0, now=0.0)
        view = BucketArray().add(rate=5.0, depth=3.0, now=0.0)
        assert run_sequence(view) == run_sequence(scalar)
        # Final internal state agrees exactly too.
        assert view.tokens_at(1.5) == scalar.tokens_at(1.5)
        assert view.rate == scalar.rate
        assert view.depth == scalar.depth

    def test_parity_across_heterogeneous_bank(self):
        bank = BucketArray()
        configs = [
            dict(rate=1.0, depth=3.0),
            dict(rate=977.31, depth=5.0, tokens=0.25),
            dict(rate=0.0, depth=1.0, tokens=0.0),
            dict(rate=1e6, depth=64.0),
        ]
        pairs = [
            (TokenBucket(now=0.0, **cfg), bank.add(now=0.0, **cfg))
            for cfg in configs
        ]
        for scalar, view in pairs:
            assert run_sequence(view) == run_sequence(scalar)

    def test_view_interleaving_does_not_cross_talk(self):
        bank = BucketArray()
        a, b = bank.add(rate=2.0), bank.add(rate=50.0)
        sa, sb = TokenBucket(rate=2.0), TokenBucket(rate=50.0)
        # Interleave operations on the two slots.
        for now in (0.1, 0.2, 0.3, 0.4):
            assert a.try_consume(now) == sa.try_consume(now)
            assert b.try_consume(now, 2) == sb.try_consume(now, 2)
        assert a.tokens_at(0.5) == sa.tokens_at(0.5)
        assert b.tokens_at(0.5) == sb.tokens_at(0.5)

    def test_validation_matches_token_bucket(self):
        bank = BucketArray()
        for kwargs in (
            dict(rate=-1.0),
            dict(rate=1.0, depth=0.0),
            dict(rate=1.0, tokens=-0.5),
        ):
            with pytest.raises(ValueError):
                TokenBucket(**kwargs)
            with pytest.raises(ValueError):
                bank.add(**kwargs)

    def test_error_paths_match(self):
        scalar = TokenBucket(rate=1.0, now=5.0)
        view = BucketArray().add(rate=1.0, now=5.0)
        for target in (scalar, view):
            with pytest.raises(ValueError, match="time went backwards"):
                target.tokens_at(1.0)
            with pytest.raises(ValueError, match="n must be positive"):
                target.try_consume(6.0, 0)
            with pytest.raises(ValueError, match="rate must be"):
                target.set_rate(6.0, -2.0)
        # Over-depth requests are impossible, not an error.
        assert scalar.ready_at(6.0, 99) == view.ready_at(6.0, 99)

    def test_view_accessor_and_bounds(self):
        bank = BucketArray()
        bank.add(rate=1.0)
        bank.add(rate=2.0)
        assert len(bank) == 2
        assert isinstance(bank.view(0), BucketView)
        assert bank.view(-1).rate == 2.0
        with pytest.raises(IndexError):
            bank.view(2)
        with pytest.raises(IndexError):
            bank.view(-3)


def make_parallel_banks(n, seed=7):
    """A bank of n buckets plus matching standalone TokenBuckets."""
    bank = BucketArray()
    scalars = []
    for i in range(n):
        rate = ((i * seed) % 23) * 41.5 + (i % 3)  # includes rate-0 slots
        depth = 1.0 + (i % 5)
        tokens = None if i % 2 else depth / 3.0
        scalars.append(TokenBucket(rate, depth=depth, tokens=tokens, now=0.0))
        bank.add(rate, depth=depth, tokens=tokens, now=0.0)
    return bank, scalars


# Both sides of the vector threshold: the scalar-fallback and numpy paths
# must agree with the standalone loop bit-for-bit.
@pytest.mark.parametrize("n", [_VECTOR_MIN - 1, 4 * _VECTOR_MIN])
class TestBatchOps:
    def test_sync_all_matches_scalar_loop(self, n):
        bank, scalars = make_parallel_banks(n)
        for scalar in scalars:
            scalar._sync(0.37)
        bank.sync_all(0.37)
        for i, scalar in enumerate(scalars):
            assert bank.view(i).tokens_at(0.37) == scalar.tokens_at(0.37)
            assert bank._tokens[i] == scalar._tokens
            assert bank._lasts[i] == scalar._last

    def test_set_rates_matches_scalar_loop(self, n):
        bank, scalars = make_parallel_banks(n)
        updates = [(i, (i % 7) * 13.25) for i in range(n)]
        for i, rate in updates:
            scalars[i].set_rate(0.21, rate)
        bank.set_rates(0.21, updates)
        for i, scalar in enumerate(scalars):
            view = bank.view(i)
            assert view.rate == scalar.rate
            assert view.tokens_at(0.5) == scalar.tokens_at(0.5)

    def test_tokens_all_matches_scalar(self, n):
        bank, scalars = make_parallel_banks(n)
        assert bank.tokens_all(0.42) == [
            scalar.tokens_at(0.42) for scalar in scalars
        ]
        # Non-mutating: a second read at the same instant is unchanged.
        assert bank.tokens_all(0.42) == bank.tokens_all(0.42)

    def test_batch_time_backwards_rejected(self, n):
        bank, _ = make_parallel_banks(n)
        bank.sync_all(1.0)
        for call in (
            lambda: bank.sync_all(0.5),
            lambda: bank.set_rates(0.5, [(0, 1.0)]),
            lambda: bank.tokens_all(0.5),
        ):
            with pytest.raises(ValueError, match="time went backwards"):
                call()

    def test_set_rates_validates_before_mutating(self, n):
        bank, scalars = make_parallel_banks(n)
        before = list(bank._rates)
        with pytest.raises(ValueError, match="rate must be"):
            bank.set_rates(0.1, [(0, 1.0), (1, -5.0)])
        with pytest.raises(IndexError):
            bank.set_rates(0.1, [(0, 1.0), (n + 3, 1.0)])
        assert list(bank._rates) == before  # nothing partially applied


class TestNumpyFallback:
    """The batch ops must produce identical results with numpy absent."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(bucket_mod, "_np", None)

    def test_sync_all_scalar_fallback(self, no_numpy):
        n = 4 * _VECTOR_MIN
        bank, scalars = make_parallel_banks(n)
        bank.sync_all(0.37)
        for i, scalar in enumerate(scalars):
            scalar._sync(0.37)
            assert bank._tokens[i] == scalar._tokens

    def test_set_rates_scalar_fallback(self, no_numpy):
        n = 4 * _VECTOR_MIN
        bank, scalars = make_parallel_banks(n)
        updates = [(i, float(i)) for i in range(n)]
        bank.set_rates(0.3, updates)
        for i, scalar in enumerate(scalars):
            scalar.set_rate(0.3, float(i))
            assert bank.view(i).tokens_at(0.6) == scalar.tokens_at(0.6)

    def test_tokens_all_scalar_fallback(self, no_numpy):
        n = 4 * _VECTOR_MIN
        bank, scalars = make_parallel_banks(n)
        assert bank.tokens_all(0.42) == [
            scalar.tokens_at(0.42) for scalar in scalars
        ]


class TestSchedulerIntegration:
    """The bank plugs into TbfScheduler without changing its behaviour."""

    def test_tbf_scheduler_accepts_bank(self):
        from repro.lustre.tbf import TbfRule, TbfScheduler

        banked = TbfScheduler(bucket_bank=BucketArray())
        plain = TbfScheduler()
        banked.start_rule(0.0, TbfRule(name="r0", job_id="job", rate=100.0))
        plain.start_rule(0.0, TbfRule(name="r0", job_id="job", rate=100.0))
        banked_bucket = banked._by_job["job"].bucket
        plain_bucket = plain._by_job["job"].bucket
        assert isinstance(banked_bucket, BucketView)
        assert isinstance(plain_bucket, TokenBucket)
        for now in (0.01, 0.02, 0.5):
            assert banked_bucket.try_consume(now) == plain_bucket.try_consume(
                now
            )

    def test_array_backend_policy_gets_bank(self):
        from repro.lustre.nrs import TbfPolicy
        from repro.sim.engine import Environment

        assert TbfPolicy(Environment(backend="array")).scheduler._bank is not None
        assert TbfPolicy(Environment(backend="heap")).scheduler._bank is None
