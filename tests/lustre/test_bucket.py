"""Unit tests for the continuous-time token bucket."""

import math

import pytest

from repro.lustre.bucket import TokenBucket


def test_starts_full_by_default():
    b = TokenBucket(rate=10.0, depth=3.0, now=0.0)
    assert b.tokens_at(0.0) == 3.0


def test_initial_tokens_clamped_to_depth():
    b = TokenBucket(rate=10.0, depth=3.0, tokens=100.0)
    assert b.tokens_at(0.0) == 3.0


def test_accrual_is_linear_until_depth():
    b = TokenBucket(rate=2.0, depth=10.0, tokens=0.0, now=0.0)
    assert b.tokens_at(1.0) == pytest.approx(2.0)
    assert b.tokens_at(4.0) == pytest.approx(8.0)
    assert b.tokens_at(100.0) == 10.0  # capped at depth


def test_consume_success_and_failure():
    b = TokenBucket(rate=1.0, depth=3.0, tokens=1.0, now=0.0)
    assert b.try_consume(0.0)
    assert not b.try_consume(0.0)
    assert b.try_consume(1.0)  # one token re-accrued


def test_consume_multiple_tokens():
    b = TokenBucket(rate=0.0, depth=5.0, tokens=5.0, now=0.0)
    assert b.try_consume(0.0, n=3)
    assert b.tokens_at(0.0) == pytest.approx(2.0)
    assert not b.try_consume(0.0, n=3)


def test_ready_at_now_when_token_available():
    b = TokenBucket(rate=1.0, depth=3.0, tokens=2.0, now=0.0)
    assert b.ready_at(5.0) == 5.0


def test_ready_at_future_when_token_pending():
    b = TokenBucket(rate=2.0, depth=3.0, tokens=0.0, now=0.0)
    assert b.ready_at(0.0) == pytest.approx(0.5)


def test_ready_at_inf_when_rate_zero_and_empty():
    b = TokenBucket(rate=0.0, depth=3.0, tokens=0.0, now=0.0)
    assert b.ready_at(0.0) == math.inf


def test_ready_at_inf_when_n_exceeds_depth():
    b = TokenBucket(rate=10.0, depth=3.0)
    assert b.ready_at(0.0, n=4) == math.inf


def test_set_rate_preserves_accrued_tokens():
    b = TokenBucket(rate=2.0, depth=10.0, tokens=0.0, now=0.0)
    b.set_rate(2.0, 100.0)  # had accrued 4 tokens by t=2
    assert b.tokens_at(2.0) == pytest.approx(4.0)
    assert b.tokens_at(2.01) == pytest.approx(5.0)


def test_rate_zero_freezes_bucket():
    b = TokenBucket(rate=2.0, depth=10.0, tokens=0.0, now=0.0)
    b.set_rate(1.0, 0.0)
    assert b.tokens_at(100.0) == pytest.approx(2.0)


def test_drain_empties_and_reports():
    b = TokenBucket(rate=1.0, depth=3.0, tokens=2.5, now=0.0)
    assert b.drain(0.0) == pytest.approx(2.5)
    assert b.tokens_at(0.0) == 0.0


def test_time_going_backwards_rejected():
    b = TokenBucket(rate=1.0, depth=3.0, now=10.0)
    with pytest.raises(ValueError):
        b.tokens_at(5.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"rate": -1.0},
        {"rate": 1.0, "depth": 0.0},
        {"rate": 1.0, "depth": -2.0},
        {"rate": 1.0, "tokens": -1.0},
    ],
)
def test_invalid_construction(kwargs):
    with pytest.raises(ValueError):
        TokenBucket(**kwargs)


def test_invalid_consume_count():
    b = TokenBucket(rate=1.0, depth=3.0)
    with pytest.raises(ValueError):
        b.try_consume(0.0, n=0)
    with pytest.raises(ValueError):
        b.ready_at(0.0, n=0)


def test_rate_compliance_over_window():
    """Served tokens over [0, T] can never exceed depth + rate*T."""
    b = TokenBucket(rate=5.0, depth=3.0, now=0.0)
    served = 0
    t = 0.0
    while t <= 10.0:
        if b.try_consume(t):
            served += 1
        t += 0.01
    assert served <= 3 + 5 * 10.0 + 1e-6
    # And the bucket is work-conserving down to quantisation: it should have
    # served nearly the full budget given constant pressure.
    assert served >= 5 * 10.0 - 1
