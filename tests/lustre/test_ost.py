"""Unit tests for the processor-sharing OST bandwidth server."""

import pytest

from repro.lustre.ost import Ost
from repro.sim import Environment


def test_single_transfer_takes_size_over_capacity():
    env = Environment()
    ost = Ost(env, "ost0", capacity_bps=100.0)
    done = ost.transfer(250.0)
    times = []
    done.add_callback(lambda e: times.append(env.now))
    env.run()
    assert times == [pytest.approx(2.5)]


def test_two_equal_transfers_share_bandwidth():
    env = Environment()
    ost = Ost(env, "ost0", capacity_bps=100.0)
    times = {}
    for tag in ("a", "b"):
        ost.transfer(100.0).add_callback(lambda e, t=tag: times.setdefault(t, env.now))
    env.run()
    # Each gets 50 B/s => both complete at t=2 (not t=1).
    assert times["a"] == pytest.approx(2.0)
    assert times["b"] == pytest.approx(2.0)


def test_short_transfer_finishes_first_then_long_speeds_up():
    env = Environment()
    ost = Ost(env, "ost0", capacity_bps=100.0)
    times = {}
    ost.transfer(50.0).add_callback(lambda e: times.setdefault("short", env.now))
    ost.transfer(150.0).add_callback(lambda e: times.setdefault("long", env.now))
    env.run()
    # Shared 50/50 until short finishes at t=1 (50B at 50B/s); long then has
    # 100B left at full 100B/s => completes at t=2.
    assert times["short"] == pytest.approx(1.0)
    assert times["long"] == pytest.approx(2.0)


def test_late_arrival_slows_existing_transfer():
    env = Environment()
    ost = Ost(env, "ost0", capacity_bps=100.0)
    times = {}

    def starter(env):
        ost.transfer(100.0).add_callback(lambda e: times.setdefault("first", env.now))
        yield env.timeout(0.5)
        ost.transfer(200.0).add_callback(lambda e: times.setdefault("second", env.now))

    env.process(starter(env))
    env.run()
    # First: 50B done by t=0.5, then 50B at 50B/s => t=1.5.
    assert times["first"] == pytest.approx(1.5)
    # Second: 50B by t=1.5 (shared), 150B at 100B/s => t=3.0.
    assert times["second"] == pytest.approx(3.0)


def test_aggregate_rate_equals_capacity_under_load():
    env = Environment()
    ost = Ost(env, "ost0", capacity_bps=1000.0)
    for _ in range(10):
        ost.transfer(500.0)
    env.run()
    # 5000 bytes at 1000 B/s => all done at t=5 regardless of concurrency.
    assert env.now == pytest.approx(5.0)
    assert ost.bytes_served == pytest.approx(5000.0)


def test_active_transfers_counter():
    env = Environment()
    ost = Ost(env, "ost0", capacity_bps=100.0)
    ost.transfer(100.0)
    ost.transfer(100.0)
    assert ost.active_transfers == 2
    env.run()
    assert ost.active_transfers == 0


def test_utilization_accounting():
    env = Environment()
    ost = Ost(env, "ost0", capacity_bps=100.0)
    ost.transfer(100.0)
    env.run()
    env.timeout(1.0)
    env.run()  # idle second
    assert ost.utilization(since=0.0, until=2.0) == pytest.approx(0.5)


def test_invalid_parameters():
    env = Environment()
    with pytest.raises(ValueError):
        Ost(env, "bad", capacity_bps=0.0)
    ost = Ost(env, "ost0", capacity_bps=1.0)
    with pytest.raises(ValueError):
        ost.transfer(0.0)


def test_many_staggered_transfers_conserve_work():
    env = Environment()
    ost = Ost(env, "ost0", capacity_bps=100.0)
    completions = []

    def feeder(env):
        for i in range(20):
            ost.transfer(25.0).add_callback(lambda e: completions.append(env.now))
            yield env.timeout(0.05)

    env.process(feeder(env))
    env.run()
    assert len(completions) == 20
    # Total work 500 B at 100 B/s with continuous backlog: finish >= 5 s.
    assert env.now == pytest.approx(5.0, abs=0.2)
    assert ost.bytes_served == pytest.approx(500.0)
